"""Static FREQ/TIME/VAR interval bounds (Definition 3, §4, §5).

The paper derives TIME and VAR from FREQ; when no profile has been
ingested, FREQ itself can still be *bounded* statically:

* a branch label executes between 0 and 1 times per execution of its
  node (Definition 3 normalizes by node executions) — and exactly
  0 or 1 when SCCP proves the branch forced;
* a DO loop whose trip count the value-range analysis bounds to
  ``[lo, hi]`` executes its header between ``lo + 1`` and ``hi + 1``
  times per entry, provided nothing can leave the loop early (the
  upper bound alone needs no such caveat: the hidden trip counter
  decrements monotonically);
* everything else propagates through the FCDG exactly like the
  frequency pass of Section 3, with interval arithmetic replacing
  point values.

``TIME ∈ [Σ COST·FREQ_lo, Σ COST·FREQ_hi]`` then brackets the
profiled TIME of Section 4 for every run that completes (the same
conditional-soundness contract as constant folding: a run that halts
inside a callee or dies on a runtime error may fall below the lower
bound), and Popoviciu's inequality turns the TIME interval into a
variance envelope ``VAR ≤ ((hi − lo) / 2)²`` for Section 5.

Endpoints are exact :class:`fractions.Fraction` values internally
(``math.inf`` marks *unbounded*); the final conversion to float nudges
outward so the reference float pipeline's accumulated rounding cannot
fall outside the reported bracket.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction

from repro.callgraph import build_call_graph
from repro.cdg import build_fcdg
from repro.cfg.graph import StmtKind, is_pseudo_label
from repro.costs.estimate import CostEstimator
from repro.dataflow.analyses import (
    _FULL,
    _hull,
    ProcDataflow,
    RangeEvaluator,
    ValueRanges,
    analyze_procedure,
)
from repro.dataflow.framework import solve
from repro.dataflow.usedef import _is_user_call, param_summaries
from repro.ecfg import build_ecfg
from repro.lang import ast

_INF = math.inf

#: Exact nonnegative interval endpoints: Fraction, or math.inf.
Bound = tuple  # (lo, hi)

_ZERO: Bound = (Fraction(0), Fraction(0))
_ONE: Bound = (Fraction(1), Fraction(1))
_UNIT: Bound = (Fraction(0), Fraction(1))
_NONNEG: Bound = (Fraction(0), _INF)


def _is_inf(x) -> bool:
    return isinstance(x, float) and math.isinf(x)


def _point_add(x, y):
    if _is_inf(x) or _is_inf(y):
        return _INF
    return x + y


def _point_mul(x, y):
    if x == 0 or y == 0:
        return Fraction(0)  # a never-executed region costs nothing
    if _is_inf(x) or _is_inf(y):
        return _INF
    return x * y


def badd(a: Bound, b: Bound) -> Bound:
    return (_point_add(a[0], b[0]), _point_add(a[1], b[1]))


def bmul(a: Bound, b: Bound) -> Bound:
    # All quantities here (frequencies, costs, times) are nonnegative,
    # so endpoint-wise products are exact.
    return (_point_mul(a[0], b[0]), _point_mul(a[1], b[1]))


def _fraction(x) -> Fraction:
    return x if isinstance(x, Fraction) else Fraction(x)


def _nudge_out(lo: float, hi: float) -> tuple[float, float]:
    """Widen a float bracket so reference-pipeline rounding stays inside.

    The reference TIME pass accumulates in float64; our exact rational
    endpoints convert with one rounding each, and the float pipeline
    drifts by a few ulps per operation.  A relative 1e-12 margin (with
    an absolute floor for values near zero) dominates both.
    """
    margin = 1e-12
    floor = 1e-9
    if not math.isinf(lo):
        lo = min(lo - floor, lo - abs(lo) * margin)
        lo = max(lo, 0.0)
    if not math.isinf(hi):
        hi = max(hi + floor, hi + abs(hi) * margin)
    return lo, hi


@dataclass
class ProcStaticBounds:
    """Static execution bounds for one procedure (per invocation)."""

    name: str
    #: [TIME_lo, TIME_hi] — math.inf marks *unbounded*.
    time: tuple[float, float]
    #: [VAR_lo, VAR_hi] — Popoviciu envelope from the TIME interval.
    var: tuple[float, float]
    #: Per-ECFG-node NODE_FREQ intervals (floats, outward-rounded).
    node_freq: dict[int, tuple[float, float]] = field(default_factory=dict)
    #: The rational bracket collapsed: control flow is statically fixed
    #: (the float ``time`` endpoints still carry the rounding margin).
    exact: bool = False

    @property
    def unbounded(self) -> bool:
        return math.isinf(self.time[1])

    def to_json(self) -> dict:
        def num(x):
            return None if math.isinf(x) else x

        return {
            "time_lo": num(self.time[0]),
            "time_hi": num(self.time[1]),
            "var_lo": num(self.var[0]),
            "var_hi": num(self.var[1]),
            "unbounded": self.unbounded,
        }


@dataclass
class StaticBoundsAnalysis:
    """Program-wide static bounds, keyed by procedure name."""

    procedures: dict[str, ProcStaticBounds] = field(default_factory=dict)
    main_name: str = ""

    @property
    def main(self) -> ProcStaticBounds:
        return self.procedures[self.main_name]

    def to_json(self) -> dict:
        return {
            name: bounds.to_json()
            for name, bounds in sorted(self.procedures.items())
        }


def format_endpoint(x: float, spec: str = "{:.1f}") -> str:
    """Render one bound endpoint; infinity prints as ``unbounded``."""
    return "unbounded" if math.isinf(x) else spec.format(x)


def _may_halt_procs(checked) -> set[str]:
    """Procedures that can STOP the whole run, transitively."""
    halts = set()
    calls: dict[str, set[str]] = {}
    for name, proc in checked.unit.procedures.items():
        callees: set[str] = set()
        for stmt in proc.walk_statements():
            if isinstance(stmt, ast.StopStmt):
                halts.add(name)
            elif isinstance(stmt, ast.CallStmt):
                callees.add(stmt.name)
        calls[name] = callees
    changed = True
    while changed:
        changed = False
        for name, callees in calls.items():
            if name not in halts and callees & halts:
                halts.add(name)
                changed = True
    return halts


def _node_exprs(node) -> list:
    """The expressions one statement-level CFG node evaluates."""
    kind = node.kind
    stmt = node.stmt
    if kind is StmtKind.ASSIGN and isinstance(stmt, ast.Assign):
        exprs = [stmt.value]
        if isinstance(stmt.target, ast.ArrayRef):
            exprs.extend(stmt.target.indices)
        return exprs
    if kind in (StmtKind.IF, StmtKind.WHILE_TEST, StmtKind.AIF, StmtKind.CGOTO):
        return [node.cond]
    if kind in (StmtKind.DO_INIT, StmtKind.DO_INCR) and isinstance(
        stmt, ast.DoLoop
    ):
        if kind is StmtKind.DO_INCR:
            return [stmt.step] if stmt.step is not None else []
        return [e for e in (stmt.start, stmt.stop, stmt.step) if e is not None]
    if kind is StmtKind.PRINT and isinstance(stmt, ast.PrintStmt):
        return list(stmt.items)
    return []


def _user_calls(checked, proc_name: str, node) -> list[tuple[str, list]]:
    """All ``(callee, args)`` invocations one CFG node performs."""
    calls: list[tuple[str, list]] = []
    if node.kind is StmtKind.CALL and isinstance(node.stmt, ast.CallStmt):
        calls.append((node.stmt.name, node.stmt.args))

    def walk(expr) -> None:
        if isinstance(expr, ast.Binary):
            walk(expr.left)
            walk(expr.right)
        elif isinstance(expr, ast.Unary):
            walk(expr.operand)
        elif isinstance(expr, ast.ArrayRef):
            for index in expr.indices:
                walk(index)
        elif isinstance(expr, ast.FuncCall):
            role = _is_user_call(checked, expr, proc_name)
            if role == "user":
                calls.append((expr.name, expr.args))
            for arg in expr.args:
                walk(arg)

    for expr in _node_exprs(node):
        walk(expr)
    return calls


def _expr_reads(expr, out: set) -> None:
    if isinstance(expr, ast.VarRef):
        out.add(expr.name)
    elif isinstance(expr, ast.Binary):
        _expr_reads(expr.left, out)
        _expr_reads(expr.right, out)
    elif isinstance(expr, ast.Unary):
        _expr_reads(expr.operand, out)
    elif isinstance(expr, (ast.ArrayRef, ast.FuncCall)):
        for sub in getattr(expr, "indices", None) or expr.args:
            _expr_reads(sub, out)


class _ProcBounds:
    """Interval mirror of :class:`repro.analysis.static_freq.StaticEstimator`."""

    def __init__(
        self,
        checked,
        proc_name: str,
        ecfg,
        fcdg,
        node_costs,
        dataflow: ProcDataflow,
        callee_times: dict[str, Bound],
        may_halt: set[str],
        ranges=None,
    ):
        self.checked = checked
        self.proc_name = proc_name
        self.ecfg = ecfg
        self.fcdg = fcdg
        self.node_costs = node_costs
        self.df = dataflow
        self.ranges = ranges if ranges is not None else dataflow.ranges
        self.callee_times = callee_times
        self.may_halt = may_halt
        self._trips = self._trip_bounds()

    # -- trip counts -----------------------------------------------------

    def _trip_bounds(self) -> dict[str, Bound]:
        """trip_var -> exact bound of the initial trip count.

        Read from the value-range solution at each DO_INIT's out state
        (the trip variable then decrements; its *initial* value is the
        iteration count).  An unreachable DO_INIT contributes nothing —
        its loop's frequency is zero anyway.
        """
        trips: dict[str, Bound] = {}
        ranges = self.ranges
        graph = self.ecfg.graph
        for node_id in sorted(ranges.out_of):
            node = graph.nodes.get(node_id)
            if node is None or node.kind is not StmtKind.DO_INIT:
                continue
            if not node.trip_var:
                continue
            out = ranges.out_of[node_id]
            if out is None:
                continue
            ivl = out.get(node.trip_var)
            if ivl is None:
                continue
            lo = Fraction(0) if _is_inf(ivl[0]) else max(
                Fraction(0), _fraction(ivl[0])
            )
            hi = _INF if _is_inf(ivl[1]) else max(Fraction(0), _fraction(ivl[1]))
            trips[node.trip_var] = (lo, hi)
        return trips

    # -- loop structure --------------------------------------------------

    def _feasible_exits(self, header: int):
        """The loop's exit edges that SCCP left feasible."""
        feasible = self.df.constants.feasible_edges
        graph_nodes = set(self.df.facts)
        exits = []
        for edge in self.ecfg.intervals.exit_edges(header):
            if edge.src in graph_nodes and (
                edge.src,
                edge.label,
            ) not in feasible:
                continue
            exits.append(edge)
        return exits

    def _loop_is_clean(self, header: int) -> bool:
        """True when the loop can only leave through its own DO_TEST.

        Then (and only then) the trip count's *lower* bound applies:
        no early GOTO/STOP exit, and no loop member calls a procedure
        that may halt the run mid-iteration.
        """
        for edge in self.ecfg.intervals.exit_edges(header):
            if edge.src != header:
                return False
        for member in self.ecfg.interval_members(header):
            facts = self.df.facts.get(member)
            if facts is None or not facts.has_call:
                continue
            node = self.ecfg.graph.nodes.get(member)
            for callee in self._callees_of(node):
                if callee in self.may_halt:
                    return False
        return True

    def _callees_of(self, node) -> list[str]:
        cost = self.node_costs.get(node.id) if node is not None else None
        return cost.calls if cost is not None else []

    def loop_factor(self, header: int) -> Bound:
        """Header executions per loop entry — FREQ(preheader, U) bounds."""
        if not self._feasible_exits(header):
            # Statically infinite (REP308): entering never returns.
            return (_INF, _INF)
        node = self.ecfg.graph.nodes[header]
        if node.kind is StmtKind.DO_TEST and node.trip_var in self._trips:
            lo, hi = self._trips[node.trip_var]
            upper = _INF if _is_inf(hi) else hi + 1
            if self._loop_is_clean(header):
                lower = Fraction(1) if _is_inf(lo) else lo + 1
            else:
                lower = Fraction(1)
            return (lower, upper)
        return (Fraction(1), _INF)

    # -- branch frequencies ----------------------------------------------

    def branch_freq(self, node_id: int, label: str) -> Bound:
        """FREQ(u, l) bounds for a multi-way branch node."""
        forced = self.df.constants.forced.get(node_id)
        if forced is not None:
            return _ONE if label == forced else _ZERO
        if (
            node_id in self.df.facts
            and (node_id, label) not in self.df.constants.feasible_edges
        ):
            return _ZERO
        node = self.ecfg.graph.nodes[node_id]
        if (
            node.kind is StmtKind.DO_TEST
            and node.trip_var in self._trips
            and self._header_is_clean(node_id)
        ):
            lo, hi = self._trips[node.trip_var]
            if label == "T":
                # n / (n + 1) is monotone increasing in n.
                t_lo = Fraction(0) if _is_inf(lo) else lo / (lo + 1)
                t_hi = Fraction(1) if _is_inf(hi) else hi / (hi + 1)
                return (t_lo, t_hi)
            if label == "F":
                f_lo = Fraction(0) if _is_inf(hi) else 1 / (hi + 1)
                f_hi = Fraction(1) if _is_inf(lo) else 1 / (lo + 1)
                return (f_lo, f_hi)
        return _UNIT

    def _header_is_clean(self, node_id: int) -> bool:
        return (
            node_id in self.ecfg.intervals.loop_headers
            and self._loop_is_clean(node_id)
        )

    # -- assembly ----------------------------------------------------------

    def compute(self) -> ProcStaticBounds:
        ecfg = self.ecfg
        graph = ecfg.graph
        executable = self.df.constants.executable
        statement_nodes = set(self.df.facts)

        node_freq: dict[int, Bound] = {n: _ZERO for n in self.fcdg.nodes}
        node_freq[ecfg.start] = _ONE
        for u in self.fcdg.topological_order():
            for label in self.fcdg.labels(u):
                if is_pseudo_label(label):
                    freq = _ZERO
                elif u == ecfg.start:
                    freq = _ONE
                elif ecfg.is_preheader(u):
                    freq = self.loop_factor(ecfg.header_of[u])
                elif len(graph.out_labels(u)) <= 1:
                    freq = _ONE
                else:
                    freq = self.branch_freq(u, label)
                for child in self.fcdg.children(u, label):
                    node_freq[child] = badd(
                        node_freq[child], bmul(node_freq[u], freq)
                    )

        # SCCP-proved-unreachable statements never execute, whatever
        # the interval propagation said on the structural graph.
        for node_id in statement_nodes - executable:
            if node_id in node_freq:
                node_freq[node_id] = _ZERO

        time: Bound = _ZERO
        for node_id, freq in node_freq.items():
            cost = self.node_costs.get(node_id)
            if cost is None:
                continue
            effective: Bound = (
                _fraction(cost.local),
                _fraction(cost.local),
            )
            for callee in cost.calls:
                effective = badd(
                    effective, self.callee_times.get(callee, _NONNEG)
                )
            time = badd(time, bmul(freq, effective))

        return self._finish(time, node_freq)

    def _finish(self, time: Bound, node_freq) -> ProcStaticBounds:
        exact = time[0] == time[1] and not _is_inf(time[0])
        lo = _INF if _is_inf(time[0]) else float(time[0])
        hi = _INF if _is_inf(time[1]) else float(time[1])
        flo, fhi = _nudge_out(lo, hi)
        if exact:
            # Deterministic control flow: the execution time is a
            # point, so its variance is exactly zero (Popoviciu on the
            # rational interval, not the float rounding margin).
            var = (0.0, 0.0)
        elif _is_inf(fhi):
            var = (0.0, _INF)
        else:
            half = (Fraction(fhi) - Fraction(flo)) / 2
            var = (0.0, float(half * half))
        freqs = {}
        for node_id, bound in node_freq.items():
            f_lo = _INF if _is_inf(bound[0]) else float(bound[0])
            f_hi = _INF if _is_inf(bound[1]) else float(bound[1])
            freqs[node_id] = (f_lo, f_hi)
        self._exact_time = time
        return ProcStaticBounds(
            name=self.proc_name,
            time=(flo, fhi),
            var=var,
            node_freq=freqs,
            exact=exact,
        )


def _seeded_ranges(checked, cfgs, call_graph, info) -> dict:
    """Top-down interprocedural seeding of the value-range analysis.

    A procedure's parameters are bound by reference to its call-site
    arguments, so their *entry* intervals are bounded by the hull of
    the argument intervals over every (feasible) call site.  Walking
    the call graph callers-first lets each caller's already-seeded
    solution feed its callees; this is what turns e.g. the Livermore
    kernels' ``DO 1 K = 1, N`` with a PARAMETER-constant actual into a
    finite trip bound.  Recursion keeps the unconstrained default, and
    an argument whose expression reads a scalar the same node may
    clobber (evaluation-order hazard) degrades to unconstrained.
    """
    recursive: set[str] = set()
    for scc in call_graph.sccs:
        if len(scc) > 1 or scc[0] in call_graph.calls.get(scc[0], {}):
            recursive.update(scc)

    sites: dict[str, list[tuple[str, int, list]]] = {}
    for caller, cfg in cfgs.items():
        for node in cfg:
            for callee, args in _user_calls(checked, caller, node):
                if callee in cfgs:
                    sites.setdefault(callee, []).append(
                        (caller, node.id, args)
                    )

    solutions: dict = {}
    order = [name for scc in reversed(call_graph.sccs) for name in scc]
    for name in order:
        if name not in info:
            continue
        cfg, _ecfg, _fcdg, df = info[name]
        proc = checked.unit.procedures[name]
        table = checked.tables[name]
        param_ranges = None
        if proc.params and name not in recursive and sites.get(name):
            eligible = {
                p
                for p in proc.params
                if (i := table.variables.get(p)) is not None
                and not i.is_array
                and i.type is not ast.Type.LOGICAL
            }
            hulls: dict[str, tuple | None] = {p: None for p in eligible}
            live_site = False
            for caller, node_id, args in sites[name]:
                caller_sol = solutions.get(caller)
                caller_df = info[caller][3] if caller in info else None
                if caller_sol is None or caller_df is None:
                    hulls = {p: _FULL for p in eligible}
                    live_site = True
                    break
                in_state = caller_sol.in_of.get(node_id)
                if in_state is None:
                    continue  # SCCP-dead call site
                live_site = True
                clobbers = caller_df.facts[node_id].clobbers
                ev = RangeEvaluator(checked, caller, in_state)
                for j, pname in enumerate(proc.params):
                    if pname not in eligible or j >= len(args):
                        continue
                    reads: set[str] = set()
                    _expr_reads(args[j], reads)
                    if reads & clobbers:
                        ivl = _FULL
                    else:
                        ivl = ev.eval(args[j])
                    prev = hulls[pname]
                    hulls[pname] = ivl if prev is None else _hull(prev, ivl)
            if live_site:
                param_ranges = {
                    p: ivl for p, ivl in hulls.items() if ivl is not None
                }
        problem = ValueRanges(
            checked,
            name,
            df.facts,
            cfg,
            feasible=df.constants.feasible_edges,
            param_ranges=param_ranges,
        )
        solutions[name] = solve(cfg, problem)
    return solutions


def compute_static_bounds(
    checked,
    cfgs,
    model,
    *,
    artifacts=None,
    dataflow: dict[str, ProcDataflow] | None = None,
) -> StaticBoundsAnalysis:
    """Static [TIME_lo, TIME_hi] and VAR envelopes for a whole program.

    Mirrors :func:`repro.analysis.interprocedural.analyze_program`
    bottom-up over call-graph SCCs; a recursive SCC gets an unbounded
    upper endpoint, with the lower endpoint refined by a few monotone
    iterations from zero (any finite prefix of that ascent is sound).
    """
    call_graph = build_call_graph(checked)
    estimator = CostEstimator(checked, model)
    may_halt = _may_halt_procs(checked)
    summaries = param_summaries(checked)

    analysis = StaticBoundsAnalysis(main_name=checked.unit.main.name)
    info: dict[str, tuple] = {}
    for name, cfg in cfgs.items():
        if artifacts is not None and name in artifacts:
            ecfg, fcdg = artifacts[name]
        else:
            ecfg = build_ecfg(cfg)
            fcdg = build_fcdg(ecfg)
        df = (
            dataflow[name]
            if dataflow is not None and name in dataflow
            else analyze_procedure(checked, name, cfg, summaries=summaries)
        )
        info[name] = (cfg, ecfg, fcdg, df)

    range_solutions = _seeded_ranges(checked, cfgs, call_graph, info)

    per_proc: dict[str, _ProcBounds] = {}
    callee_times: dict[str, Bound] = {}
    for name, (cfg, ecfg, fcdg, df) in info.items():
        per_proc[name] = _ProcBounds(
            checked,
            name,
            ecfg,
            fcdg,
            estimator.cfg_costs(cfg, name),
            df,
            callee_times,
            may_halt,
            ranges=range_solutions.get(name),
        )

    def solve(name: str) -> ProcStaticBounds:
        bounds = per_proc[name].compute()
        callee_times[name] = per_proc[name]._exact_time
        return bounds

    for scc in call_graph.sccs:
        recursive = len(scc) > 1 or scc[0] in call_graph.calls.get(
            scc[0], {}
        )
        if not recursive:
            analysis.procedures[scc[0]] = solve(scc[0])
            continue
        # Recursive: the upper endpoint is unbounded; ascend the lower
        # endpoint from zero for a few rounds (monotone, hence sound).
        for name in scc:
            callee_times[name] = (Fraction(0), _INF)
        for _ in range(3):
            for name in scc:
                bounds = solve(name)
                lo = per_proc[name]._exact_time[0]
                callee_times[name] = (lo, _INF)
                analysis.procedures[name] = bounds
        for name in scc:
            bounds = analysis.procedures[name]
            analysis.procedures[name] = ProcStaticBounds(
                name=name,
                time=(bounds.time[0], _INF),
                var=(0.0, _INF),
                node_freq=bounds.node_freq,
            )
    return analysis
