"""Worklist dataflow analyses over the statement-level CFG.

The generic solver lives in :mod:`repro.dataflow.framework`; the four
production analyses (reaching definitions, liveness, SCCP constants,
value ranges) in :mod:`repro.dataflow.analyses`; scalar use/def
extraction with interprocedural by-reference summaries in
:mod:`repro.dataflow.usedef`; static FREQ/TIME/VAR interval bounds in
:mod:`repro.dataflow.bounds`; and the codegen pruning planner in
:mod:`repro.dataflow.optimize`.  See ``docs/dataflow.md``.
"""

from repro.dataflow.framework import (
    SOLVER_CORRUPTIONS,
    DataflowProblem,
    FixpointDiverged,
    Solution,
    solve,
)
from repro.dataflow.analyses import (
    ANALYSIS_CORRUPTIONS,
    ConstantFacts,
    ConstantPropagation,
    Liveness,
    ProcDataflow,
    ReachingDefinitions,
    ValueRanges,
    analyze_procedure,
    solve_constants,
    trip_interval,
)
from repro.dataflow.bounds import (
    ProcStaticBounds,
    StaticBoundsAnalysis,
    compute_static_bounds,
    format_endpoint,
)
from repro.dataflow.optimize import (
    OptimizationPlan,
    ProcOptimizations,
    plan_optimizations,
)
from repro.dataflow.usedef import (
    NodeFacts,
    ProcSummary,
    all_node_facts,
    node_facts,
    param_summaries,
)

__all__ = [
    "ANALYSIS_CORRUPTIONS",
    "SOLVER_CORRUPTIONS",
    "ConstantFacts",
    "ConstantPropagation",
    "DataflowProblem",
    "FixpointDiverged",
    "Liveness",
    "NodeFacts",
    "OptimizationPlan",
    "ProcDataflow",
    "ProcOptimizations",
    "ProcStaticBounds",
    "ProcSummary",
    "ReachingDefinitions",
    "Solution",
    "StaticBoundsAnalysis",
    "ValueRanges",
    "all_node_facts",
    "analyze_procedure",
    "compute_static_bounds",
    "format_endpoint",
    "node_facts",
    "param_summaries",
    "plan_optimizations",
    "solve",
    "solve_constants",
    "trip_interval",
]
