"""A generic worklist dataflow solver over statement-level CFGs.

Every flow-sensitive fact this repo derives — reaching definitions,
liveness, conditional constants, value ranges — is an instance of the
same fixpoint scheme: values drawn from a lattice of finite height,
monotone transfer functions per CFG node, and a join (may = union,
must = intersection) at control-flow merges.  This module provides
that scheme once, so each analysis only describes its lattice and
transfer function and inherits termination, determinism and the
iteration bound from the solver.

Contract (see ``docs/dataflow.md``):

* a :class:`DataflowProblem` supplies ``direction`` ("forward" or
  "backward"), a ``boundary`` value for the entry (forward) or exit
  (backward) node, ``join`` over predecessor facts, and a monotone
  ``transfer``;
* the solver represents *unreachable* as ``None``: ``join`` never
  sees it, and ``transfer`` is never called with it.  A forward
  problem may refine facts per out-edge via ``transfer_edge`` (this is
  how SCCP's branch-feasibility works) and any problem may declare
  whole edges dead via ``edge_alive`` — the hook that lets reaching
  definitions and liveness run on the SCCP-feasible subgraph;
* monotonicity + the declared lattice ``height`` bound the number of
  node visits; exceeding the bound raises :class:`FixpointDiverged`
  instead of looping, so a broken transfer function is a loud failure.

``solve`` accepts a ``corruption`` name from
:data:`SOLVER_CORRUPTIONS` for the mutation-kill suite — each seeded
defect (dropped back edge, stale worklist entry, wrong join
direction, skipped boundary) must be pinned by a failing test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Any

from repro.errors import AnalysisError


class FixpointDiverged(AnalysisError):
    """The worklist exceeded its monotone iteration bound."""


#: Seeded solver defects for the mutation-kill suite.
SOLVER_CORRUPTIONS = (
    "drop-back-edge",   # join ignores facts flowing along back edges
    "first-pred-only",  # join keeps only the first predecessor's fact
    "stale-worklist",   # changed nodes never re-enqueue their successors
    "skip-boundary",    # the entry/exit node loses its boundary value
    "wrong-direction",  # forward problems solved backward and vice versa
)


class DataflowProblem:
    """Base class describing one dataflow analysis.

    Subclasses override the lattice hooks; the solver owns iteration
    order, convergence detection and the divergence guard.
    """

    #: "forward" (facts flow entry -> exit) or "backward".
    direction = "forward"

    #: Apply :meth:`widen` to a node's input once it has been visited
    #: this many times (``None`` disables widening).
    widen_after: int | None = None

    #: Node ids whose ``transfer`` is the identity.  The solver skips
    #: the call for them; problems fill this from their use/def facts.
    passthrough_nodes: frozenset[int] = frozenset()

    # -- lattice hooks ---------------------------------------------------

    def boundary(self, cfg) -> Any:
        """The fact at the entry (forward) / exit (backward) node."""
        raise NotImplementedError

    def join(self, values: list[Any]) -> Any:
        """Combine >= 1 reachable predecessor facts."""
        raise NotImplementedError

    def transfer(self, node, value: Any) -> Any:
        """The fact after ``node`` given the fact before it."""
        raise NotImplementedError

    def transfer_edge(self, node, value: Any, label: str) -> Any:
        """Refine ``node``'s output fact along one labelled out-edge.

        Returning ``None`` marks the edge infeasible (forward only).
        """
        return value

    def edge_alive(self, src: int, label: str) -> bool:
        """False drops the edge entirely (both directions)."""
        return True

    def edge_transfer_nodes(self, cfg) -> set[int] | None:
        """Node ids whose ``transfer_edge`` may differ from identity.

        ``None`` (the default) means any node might, so the solver
        keeps a fact per edge everywhere.  Problems that only refine
        facts at branches (SCCP) return the branch-node set and every
        other node takes the cheap one-fact-per-node path.
        """
        return None

    def widen(self, old: Any, new: Any) -> Any:
        """Accelerate convergence for infinite-height lattices."""
        return new

    # -- termination hints ----------------------------------------------

    def height(self, cfg) -> int:
        """Total ascending-chain height of one node's value."""
        return 1

    def max_visits(self, cfg) -> int:
        """Monotone visit bound; exceeding it raises FixpointDiverged."""
        n = len(cfg.nodes) + len(cfg.edges) + 2
        return 4 * n * (self.height(cfg) + 2)


@dataclass
class Solution:
    """A fixpoint: facts at each node's entry and exit in program order.

    ``in_of[n]`` is the fact immediately before ``n`` executes and
    ``out_of[n]`` immediately after, for both analysis directions
    (for a backward problem ``in_of`` is e.g. live-*in*).  ``None``
    means the solver proved the node unreachable.  ``visits``/``limit``
    expose the convergence budget to the property tests.
    """

    in_of: dict[int, Any] = field(default_factory=dict)
    out_of: dict[int, Any] = field(default_factory=dict)
    visits: int = 0
    limit: int = 0


def _rpo_order(nodes, flow_out, root: int) -> dict[int, int]:
    """Reverse-postorder ranks (iterative, deterministic).

    ``flow_out`` maps node -> [(dst, label), ...]; traversal follows
    the pairs in list order, so ranks are stable across runs.
    """
    seen: set[int] = {root}
    post: list[int] = []
    stack: list[tuple[int, Any]] = [(root, iter(flow_out[root]))]
    while stack:
        node, kids = stack[-1]
        advanced = False
        for dst, _label in kids:
            if dst not in seen:
                seen.add(dst)
                stack.append((dst, iter(flow_out[dst])))
                advanced = True
                break
        if not advanced:
            post.append(node)
            stack.pop()
    order = {n: rank for rank, n in enumerate(reversed(post))}
    # Nodes unreachable from the root still get a stable rank.
    for node in sorted(nodes):
        order.setdefault(node, len(order))
    return order


class OrientedGraph:
    """The flow-oriented view of a CFG one `solve` iterates over.

    Building it (edge filtering, reverse postorder, precomputed
    edge-fact keys) costs about as much as a converged fixpoint on a
    small lattice, so `analyze_procedure` builds each orientation once
    and shares it between the analyses that agree on direction and
    edge feasibility.
    """

    __slots__ = (
        "forward",
        "root",
        "order",
        "flow_in",
        "flow_out",
        "_in_keys",
        "_out_keys",
        "_in_srcs",
        "_out_dsts",
    )

    def __init__(self, cfg, forward: bool, edge_alive=None) -> None:
        # ``flow_in[n]`` are the labelled edges whose facts join at n;
        # ``flow_out[n]`` the edges n's fact propagates to.
        # ``edge_alive=None`` keeps every edge.
        flow_in: dict[int, list[tuple[int, str]]] = {n: [] for n in cfg.nodes}
        flow_out: dict[int, list[tuple[int, str]]] = {n: [] for n in cfg.nodes}
        for edge in cfg.edges:
            if edge_alive is not None and not edge_alive(edge.src, edge.label):
                continue
            if forward:
                flow_in[edge.dst].append((edge.src, edge.label))
                flow_out[edge.src].append((edge.dst, edge.label))
            else:
                flow_in[edge.src].append((edge.dst, edge.label))
                flow_out[edge.dst].append((edge.src, edge.label))
        self.forward = forward
        self.root = cfg.entry if forward else cfg.exit
        self.flow_in = flow_in
        self.flow_out = flow_out
        self.order = _rpo_order(cfg.nodes, flow_out, self.root)
        self._in_keys = None
        self._out_keys = None
        self._in_srcs = None
        self._out_dsts = None

    def flipped(self, root: int) -> "OrientedGraph":
        """The opposite orientation over the same live edge set.

        Swapping the two flow maps reverses every edge; only the
        reverse-postorder ranks need recomputing, so flipping a built
        graph is much cheaper than re-filtering the CFG's edges.
        """
        g = object.__new__(OrientedGraph)
        g.forward = not self.forward
        g.root = root
        g.flow_in = self.flow_out
        g.flow_out = self.flow_in
        g.order = _rpo_order(g.flow_out.keys(), g.flow_out, root)
        g._in_keys = None
        g._out_keys = None
        g._in_srcs = None
        g._out_dsts = None
        return g

    def keyed(self):
        """Per-edge fact keys, precomputed so the hot loop allocates
        no tuples.  Only problems with a real ``transfer_edge`` pay
        for this."""
        if self._in_keys is None:
            self._in_keys = {
                n: [(src, (src, n, label)) for src, label in pairs]
                for n, pairs in self.flow_in.items()
            }
            self._out_keys = {
                n: [(dst, label, (n, dst, label)) for dst, label in pairs]
                for n, pairs in self.flow_out.items()
            }
        return self._in_keys, self._out_keys

    def deduped(self):
        """Label-free, deduplicated neighbour lists for problems whose
        ``transfer_edge`` is the identity (every out-edge of a node
        carries the same fact)."""
        if self._in_srcs is None:
            self._in_srcs = {
                n: list(dict.fromkeys(src for src, _ in pairs))
                for n, pairs in self.flow_in.items()
            }
            self._out_dsts = {
                n: list(dict.fromkeys(dst for dst, _ in pairs))
                for n, pairs in self.flow_out.items()
            }
        return self._in_srcs, self._out_dsts


def oriented_graph(cfg, problem: DataflowProblem) -> OrientedGraph:
    """Build the graph view ``solve`` would build for ``problem``.

    Pass the result back via ``solve(..., graph=...)`` to share it
    between problems with the same direction and ``edge_alive``.
    """
    return OrientedGraph(
        cfg, problem.direction == "forward", problem.edge_alive
    )


def solve(
    cfg,
    problem: DataflowProblem,
    *,
    corruption: str | None = None,
    graph: OrientedGraph | None = None,
):
    """Run ``problem`` to fixpoint over ``cfg`` and return a Solution."""
    if corruption is not None and corruption not in SOLVER_CORRUPTIONS:
        raise ValueError(f"unknown solver corruption {corruption!r}")

    direction = problem.direction
    if corruption == "wrong-direction":
        direction = "backward" if direction == "forward" else "forward"
    forward = direction == "forward"

    if graph is None or graph.forward is not forward:
        graph = OrientedGraph(cfg, forward, problem.edge_alive)
    root = graph.root
    order = graph.order

    # Transfer functions are pure, so a per-edge hook that is the base
    # class identity can be skipped instead of dispatched per edge.
    transfer_edge = problem.transfer_edge
    identity_edges = (
        type(problem).transfer_edge is DataflowProblem.transfer_edge
    )
    if identity_edges:
        in_srcs, out_dsts = graph.deduped()
        in_keys = out_keys = None
        keyed_nodes = None
    else:
        in_keys, out_keys = graph.keyed()
        # Problems that only refine facts at branch nodes (SCCP) let
        # every other node use the one-fact-per-node path.
        keyed_nodes = problem.edge_transfer_nodes(cfg)
        if keyed_nodes is not None:
            in_srcs, out_dsts = graph.deduped()

    # Facts in *flow* orientation: before[n] joins incoming edge facts,
    # after[(n, label)] is the per-edge outgoing fact.
    before: dict[int, Any] = {n: None for n in cfg.nodes}
    after_of: dict[int, Any] = {n: None for n in cfg.nodes}
    edge_fact: dict[tuple[int, int, str], Any] = {}
    visit_count: dict[int, int] = {n: 0 for n in cfg.nodes}

    limit = problem.max_visits(cfg)
    visits = 0
    # A min-heap keyed by reverse-postorder rank: re-enqueued nodes are
    # processed in topological-ish order, which converges in far fewer
    # visits than FIFO on loopy graphs.
    worklist: list[tuple[int, int]] = sorted(
        (order[n], n) for n in cfg.nodes
    )
    queued: set[int] = {n for _, n in worklist}
    drop_back = corruption == "drop-back-edge"
    first_pred = corruption == "first-pred-only"
    use_boundary = corruption != "skip-boundary"
    stale = corruption == "stale-worklist"
    edge_get = edge_fact.get
    join = problem.join
    transfer = problem.transfer
    passthrough = problem.passthrough_nodes
    widen_after = problem.widen_after

    while worklist:
        node = heappop(worklist)[1]
        queued.discard(node)
        visits += 1
        if visits > limit:
            raise FixpointDiverged(
                f"dataflow fixpoint exceeded {limit} visits on a "
                f"{len(cfg.nodes)}-node CFG ({type(problem).__name__})"
            )

        incoming = []
        if identity_edges:
            # All of a node's out-edges carry one fact, so the join
            # reads predecessors' ``after`` facts directly — no
            # per-edge bookkeeping at all.
            for src in in_srcs[node]:
                if drop_back and order[src] >= order[node]:
                    continue
                fact = after_of[src]
                if fact is not None:
                    incoming.append(fact)
        else:
            for src, key in in_keys[node]:
                if drop_back and order[src] >= order[node]:
                    continue
                if keyed_nodes is None or src in keyed_nodes:
                    fact = edge_get(key)
                else:
                    fact = after_of[src]
                if fact is not None:
                    incoming.append(fact)
        if first_pred and len(incoming) > 1:
            incoming = incoming[:1]

        if node == root and use_boundary:
            boundary = problem.boundary(cfg)
            value = join(incoming + [boundary]) if incoming else boundary
        elif incoming:
            value = join(incoming)
        else:
            value = None  # unreachable

        count = visit_count[node] = visit_count[node] + 1
        old = before[node]
        if (
            widen_after is not None
            and count > widen_after
            and value is not None
            and old is not None
            and value != old
        ):
            value = problem.widen(old, value)

        # Pure transfer functions: an unchanged input on a revisit
        # reproduces the previous outputs, so recomputing them (and
        # re-comparing every edge fact) is wasted work.
        if count > 1 and value == old:
            continue
        before[node] = value

        if value is None:
            after = None
        elif node in passthrough:
            after = value
        else:
            after = transfer(node, value)
        if identity_edges or (
            keyed_nodes is not None and node not in keyed_nodes
        ):
            # One output fact for every out-edge: one comparison
            # decides whether any successor needs a revisit.
            if after != after_of[node]:
                after_of[node] = after
                if not stale:
                    for dst in out_dsts[node]:
                        if dst not in queued:
                            heappush(worklist, (order[dst], dst))
                            queued.add(dst)
            continue
        after_of[node] = after
        for dst, label, key in out_keys[node]:
            fact = (
                transfer_edge(node, after, label)
                if after is not None
                else None
            )
            # A missing entry reads as None above, so None facts for
            # never-reached edges are not a change worth propagating.
            if edge_get(key) != fact:
                edge_fact[key] = fact
                if not stale and dst not in queued:
                    heappush(worklist, (order[dst], dst))
                    queued.add(dst)

    # Translate flow orientation back to program order.  ``after_of``
    # is consistent with ``before`` (it was recomputed on every visit
    # whose input changed), so no transfer reruns here.
    solution = Solution(visits=visits, limit=limit)
    for node in cfg.nodes:
        value = before[node]
        after = after_of[node]
        if forward:
            solution.in_of[node] = value
            solution.out_of[node] = after
        else:
            solution.in_of[node] = after
            solution.out_of[node] = value
    return solution
