"""Dataflow-backed optimization planning for the codegen backend.

The checker's REP307/REP306 diagnostics have an executable payoff:
a branch whose condition is constant on every feasible path can be
*folded* (emit only the taken arm), and a store no later feasible
path observes can be *dropped*.  Both are safe under the paper's own
accounting — every pruned region has static FREQ 0, so counter slot
tables are preserved verbatim and pruned blocks simply keep their
slots at 0.0 — and under the interpreter's error semantics:

* a folded branch still *evaluates* its condition (constant folding
  is conditionally sound: the claim is only "if evaluation completes,
  this arm is taken"), it merely stops testing the result;
* a dropped store must be provably total: its right-hand side is
  restricted to arithmetic that cannot raise (no division, no
  exponentiation, no calls, no array loads) and whose store coercion
  cannot overflow (type-matched leaves; pure-INTEGER arithmetic).
  The node's COST is still charged — the reference interpreter
  executes the store, so the cycle accounting must match bit-exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.graph import StmtKind
from repro.dataflow.analyses import ProcDataflow, analyze_procedure
from repro.dataflow.usedef import param_summaries
from repro.lang import ast


@dataclass
class ProcOptimizations:
    """What the emitter may prune in one procedure."""

    #: branch node id -> the single label it always takes.
    forced: dict[int, str] = field(default_factory=dict)
    #: ASSIGN node ids whose store (and RHS evaluation) may be skipped.
    dead_stores: set[int] = field(default_factory=set)

    @property
    def empty(self) -> bool:
        return not self.forced and not self.dead_stores


@dataclass
class OptimizationPlan:
    """Per-procedure pruning decisions for one compiled program."""

    procedures: dict[str, ProcOptimizations] = field(default_factory=dict)

    @property
    def empty(self) -> bool:
        return all(p.empty for p in self.procedures.values())

    def proc(self, name: str) -> ProcOptimizations:
        return self.procedures.get(name) or ProcOptimizations()


def _leaf_type(expr, table, checked, proc_name):
    """The static type of a total leaf, or None if not a safe leaf."""
    if isinstance(expr, ast.IntLit):
        return ast.Type.INTEGER
    if isinstance(expr, ast.RealLit):
        return ast.Type.REAL
    if isinstance(expr, ast.LogicalLit):
        return ast.Type.LOGICAL
    if isinstance(expr, ast.VarRef):
        if expr.name in table.constants:
            value = table.constants[expr.name]
            return (
                ast.Type.INTEGER if isinstance(value, int) else ast.Type.REAL
            )
        info = table.lookup(expr.name)
        if info is None or info.is_array:
            return None
        return info.type
    return None


def _pure_integer(expr, table, checked, proc_name) -> bool:
    """True when ``expr`` is arithmetic over INTEGER scalars only.

    Python integers never overflow and ADD/SUB/MUL/NEG/POS never
    raise, so evaluating (or not evaluating) such an expression is
    observationally identical as long as its value goes unused.
    """
    if isinstance(expr, (ast.IntLit,)):
        return True
    if isinstance(expr, ast.VarRef):
        return (
            _leaf_type(expr, table, checked, proc_name) is ast.Type.INTEGER
        )
    if isinstance(expr, ast.Unary):
        return expr.op in (ast.UnOp.NEG, ast.UnOp.POS) and _pure_integer(
            expr.operand, table, checked, proc_name
        )
    if isinstance(expr, ast.Binary):
        return expr.op in (
            ast.BinOp.ADD,
            ast.BinOp.SUB,
            ast.BinOp.MUL,
        ) and all(
            _pure_integer(side, table, checked, proc_name)
            for side in (expr.left, expr.right)
        )
    return False


def _store_is_total(stmt: ast.Assign, table, checked, proc_name) -> bool:
    """Can ``target = value`` provably never raise at runtime?"""
    target = stmt.target
    if not isinstance(target, ast.VarRef):
        return False
    info = table.lookup(target.name)
    if info is None or info.is_array:
        return False
    ttype = info.type

    # A single type-compatible leaf: literals coerce totally (their
    # magnitude is fixed at compile time), variables only when no
    # coercion happens at all (int(huge_int) and float(huge_int) can
    # overflow, so REAL<-INTEGER and INTEGER<-REAL are out).
    value = stmt.value
    if isinstance(value, (ast.IntLit, ast.RealLit)):
        return ttype in (ast.Type.INTEGER, ast.Type.REAL)
    if isinstance(value, ast.LogicalLit):
        return ttype is ast.Type.LOGICAL
    leaf = _leaf_type(value, table, checked, proc_name)
    if leaf is not None:
        return leaf is ttype

    # Pure-INTEGER arithmetic into an INTEGER target.
    if ttype is ast.Type.INTEGER:
        return _pure_integer(value, table, checked, proc_name)
    return False


def plan_proc_optimizations(
    checked, proc_name: str, cfg, dataflow: ProcDataflow
) -> ProcOptimizations:
    """Derive the safe pruning set for one procedure."""
    table = checked.tables[proc_name]
    opts = ProcOptimizations(forced=dict(dataflow.constants.forced))
    for node in cfg:
        if node.kind is not StmtKind.ASSIGN:
            continue
        if not isinstance(node.stmt, ast.Assign):
            continue
        if node.id not in dataflow.constants.executable:
            continue
        target = node.stmt.target
        if not isinstance(target, ast.VarRef):
            continue
        live_out = dataflow.liveness.out_of.get(node.id)
        if live_out is None or target.name in live_out:
            continue
        if not _store_is_total(node.stmt, table, checked, proc_name):
            continue
        opts.dead_stores.add(node.id)
    return opts


def plan_optimizations(
    checked,
    cfgs,
    *,
    dataflow: dict[str, ProcDataflow] | None = None,
) -> OptimizationPlan:
    """Derive the pruning plan for a whole program."""
    summaries = param_summaries(checked)
    plan = OptimizationPlan()
    for name, cfg in cfgs.items():
        df = (
            dataflow[name]
            if dataflow is not None and name in dataflow
            else analyze_procedure(checked, name, cfg, summaries=summaries)
        )
        plan.procedures[name] = plan_proc_optimizations(
            checked, name, cfg, df
        )
    return plan
