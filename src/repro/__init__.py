"""repro — a reproduction of Sarkar, "Determining Average Program
Execution Times and their Variance" (PLDI 1989).

The package implements the paper's full framework over a
Fortran-77-style mini language:

* interval structure and extended control flow graphs (Section 2);
* the forward control dependence graph;
* optimized counter-based execution profiling (Section 3);
* average execution time computation (Section 4);
* execution-time variance computation (Section 5);
* the Kruskal-Weiss chunk-size application the paper motivates;
* an artifact verifier + minifort linter (:mod:`repro.checker`) that
  re-checks every derived structure against the paper's invariants.

Quick start::

    from repro import pipeline
    from repro.costs import SCALAR_MACHINE

    analysis = pipeline.estimate(SOURCE, runs=5, model=SCALAR_MACHINE)
    print(analysis.total_time, analysis.total_std_dev)
"""

from repro import pipeline
from repro.costs import OPTIMIZING_MACHINE, SCALAR_MACHINE, MachineModel
from repro.pipeline import (
    BACKENDS,
    CompiledProgram,
    analyze,
    compile_source,
    estimate,
    naive_program_plan,
    oracle_program_profile,
    profile_batch,
    profile_program,
    run_program,
    smart_program_plan,
    verify_compiled,
)

__version__ = "1.0.0"

__all__ = [
    "pipeline",
    "BACKENDS",
    "CompiledProgram",
    "compile_source",
    "run_program",
    "profile_program",
    "profile_batch",
    "oracle_program_profile",
    "smart_program_plan",
    "naive_program_plan",
    "analyze",
    "estimate",
    "verify_compiled",
    "MachineModel",
    "SCALAR_MACHINE",
    "OPTIMIZING_MACHINE",
    "__version__",
]
