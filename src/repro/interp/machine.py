"""The CFG interpreter.

Executes a checked program over its per-procedure control flow graphs
with Fortran semantics.  Optionally charges the static COST(u) of every
executed node (making analytical TIME estimates exactly checkable), and
invokes profiling hooks on node/edge events.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field

from repro.errors import InterpreterError, InterpreterLimitError
from repro.lang import ast
from repro.lang.symbols import INTRINSICS, CheckedProgram
from repro.cfg.graph import (
    LABEL_FALSE,
    LABEL_TRUE,
    LABEL_UNCOND,
    ControlFlowGraph,
    StmtKind,
)
from repro.costs.estimate import CostEstimator
from repro.costs.model import MachineModel
from repro.interp.intrinsics import IntrinsicRuntime
from repro.interp.values import Cell, ElementRef, FortranArray


class ExecutionHooks:
    """Profiling hook interface; the base class is a no-op.

    Hook methods return the number of counter-update operations they
    performed; the interpreter charges ``counter_update`` cycles each.
    """

    def on_node(self, proc: str, node_id: int, trip: int | None = None) -> int:
        return 0

    def on_edge(self, proc: str, src: int, label: str) -> int:
        return 0


@dataclass
class RunResult:
    """Everything observable about one program execution."""

    outputs: list[str] = field(default_factory=list)
    total_cost: float = 0.0
    counter_ops: int = 0
    counter_cost: float = 0.0
    steps: int = 0
    #: Ground-truth per-procedure counts: node id -> executions.
    node_counts: dict[str, dict[int, int]] = field(default_factory=dict)
    #: Ground-truth per-procedure counts: (src, label) -> times taken.
    edge_counts: dict[str, dict[tuple[int, str], int]] = field(
        default_factory=dict
    )
    #: Procedure name -> number of invocations.
    call_counts: dict[str, int] = field(default_factory=dict)
    halted: str = "end"  # "end" or "stop"
    #: Snapshot of the main program's scalar variables at termination.
    main_vars: dict[str, object] = field(default_factory=dict)

    @property
    def cost_with_profiling(self) -> float:
        """Program cost including counter-update work."""
        return self.total_cost + self.counter_cost


class _ProgramHalt(Exception):
    """Internal signal raised by a STOP statement."""


class _Frame:
    __slots__ = ("proc", "cfg", "env", "trips")

    def __init__(self, proc: ast.Procedure, cfg: ControlFlowGraph):
        self.proc = proc
        self.cfg = cfg
        self.env: dict[str, Cell | ElementRef | FortranArray] = {}
        self.trips: dict[str, list] = {}


class Interpreter:
    """Executes a program; see the package docstring for its roles."""

    def __init__(
        self,
        checked: CheckedProgram,
        cfgs: dict[str, ControlFlowGraph],
        *,
        model: MachineModel | None = None,
        hooks: ExecutionHooks | None = None,
        seed: int = 0,
        inputs: tuple[float, ...] = (),
        max_steps: int = 10_000_000,
        max_depth: int = 200,
        record_counts: bool = True,
    ):
        self.checked = checked
        self.cfgs = cfgs
        self.model = model
        self.hooks = hooks or ExecutionHooks()
        self.intrinsics = IntrinsicRuntime(seed=seed, inputs=inputs)
        self.max_steps = max_steps
        self.max_depth = max_depth
        self.record_counts = record_counts
        self._costs: dict[str, dict[int, float]] = {}
        if model is not None:
            estimator = CostEstimator(checked, model)
            for name, cfg in cfgs.items():
                self._costs[name] = {
                    nid: nc.local
                    for nid, nc in estimator.cfg_costs(cfg, name).items()
                }
        # Per-procedure (node, label) -> successor dispatch tables:
        # the hot path must not scan edge lists.
        self._dispatch: dict[str, dict[tuple[int, str], int]] = {
            name: {
                (edge.src, edge.label): edge.dst for edge in cfg.edges
            }
            for name, cfg in cfgs.items()
        }

    # -- public API ------------------------------------------------------

    def run(self) -> RunResult:
        """Execute the main PROGRAM unit once."""
        # Each interpreted call frame costs a bounded number of Python
        # frames; make sure our own max_depth limit fires first.
        needed = self.max_depth * 40 + 200
        old_limit = sys.getrecursionlimit()
        if old_limit < needed:
            sys.setrecursionlimit(needed)
        try:
            return self._run()
        finally:
            if old_limit < needed:
                sys.setrecursionlimit(old_limit)

    def _run(self) -> RunResult:
        result = RunResult()
        for name in self.cfgs:
            result.node_counts[name] = {}
            result.edge_counts[name] = {}
            result.call_counts[name] = 0
        main = self.checked.unit.main
        self._result = result
        self._depth = 0
        main_frame = _Frame(main, self.cfgs[main.name])
        self._init_locals(main_frame)
        try:
            self._exec_frame(main_frame)
        except _ProgramHalt:
            result.halted = "stop"
        for name, value in main_frame.env.items():
            if isinstance(value, (Cell, ElementRef)):
                result.main_vars[name] = value.value
        return result

    # -- frames and procedures ---------------------------------------------

    def _init_locals(self, frame: _Frame) -> None:
        table = self.checked.tables[frame.proc.name]
        for name, info in table.variables.items():
            if info.is_param:
                continue  # bound by the caller
            if info.is_array:
                frame.env[name] = FortranArray(name, info.type, info.dims)
            else:
                frame.env[name] = Cell(info.type)

    def _invoke(self, name: str, arg_exprs: list[ast.Expr], caller: _Frame):
        """Run procedure ``name``; returns its result Cell value for
        FUNCTIONs, None for SUBROUTINEs."""
        proc = self.checked.unit.procedures[name]
        cfg = self.cfgs[name]
        table = self.checked.tables[name]
        if self._depth >= self.max_depth:
            raise InterpreterError(f"call depth limit reached invoking {name}")
        frame = _Frame(proc, cfg)
        for param, actual in zip(proc.params, arg_exprs):
            info = table.lookup(param)
            frame.env[param] = self._bind_argument(info, actual, caller, name)
        self._init_locals(frame)
        self._depth += 1
        try:
            self._exec_frame(frame)
        finally:
            self._depth -= 1
        if proc.kind is ast.ProcKind.FUNCTION:
            return frame.env[proc.name].value
        return None

    def _bind_argument(self, info, actual: ast.Expr, caller: _Frame, callee: str):
        """Fortran by-reference binding of one actual argument."""
        caller_constants = self.checked.tables[caller.proc.name].constants
        if isinstance(actual, ast.VarRef) and actual.name not in caller_constants:
            slot = self._lookup(caller, actual.name, actual.line)
            if isinstance(slot, FortranArray):
                if not info.is_array:
                    raise InterpreterError(
                        f"{callee}: array passed for scalar param {info.name}",
                        actual.line,
                    )
                return slot
            if info.is_array:
                raise InterpreterError(
                    f"{callee}: scalar passed for array param {info.name}",
                    actual.line,
                )
            return slot  # shared Cell: by reference
        if info.is_array:
            raise InterpreterError(
                f"{callee}: expression passed for array param {info.name}",
                actual.line,
            )
        # `A(2)` parses as FuncCall when A is an array; both spellings
        # of an element reference bind by reference.
        element = None
        if isinstance(actual, ast.ArrayRef):
            element = (actual.name, actual.indices)
        elif isinstance(actual, ast.FuncCall) and isinstance(
            caller.env.get(actual.name), FortranArray
        ):
            element = (actual.name, actual.args)
        if element is not None:
            name, index_exprs = element
            array = self._lookup_array(caller, name, actual.line)
            indices = tuple(
                int(self._eval(i, caller)) for i in index_exprs
            )
            array.get(indices, actual.line)  # bounds check now
            return ElementRef(array, indices)
        value = self._eval(actual, caller)
        cell = Cell(info.type)
        cell.set(value, actual.line)
        return cell

    # -- node execution ------------------------------------------------------

    def _exec_frame(self, frame: _Frame) -> None:
        result = self._result
        name = frame.proc.name
        result.call_counts[name] += 1
        costs = self._costs.get(name)
        node_counts = result.node_counts[name]
        edge_counts = result.edge_counts[name]
        cfg = frame.cfg
        nodes = cfg.nodes
        dispatch = self._dispatch[name]
        node_id = cfg.entry
        counter_cost = (
            self.model.counter_update if self.model is not None else 0.0
        )
        while True:
            result.steps += 1
            if result.steps > self.max_steps:
                raise InterpreterLimitError(
                    f"exceeded {self.max_steps} node executions"
                )
            if self.record_counts:
                node_counts[node_id] = node_counts.get(node_id, 0) + 1
            if costs is not None:
                result.total_cost += costs[node_id]
            node = nodes[node_id]
            label, trip = self._exec_node(node, frame)
            ops = self.hooks.on_node(name, node_id, trip)
            if ops:
                result.counter_ops += ops
                result.counter_cost += ops * counter_cost
            if label is None:
                return  # reached the exit node
            if self.record_counts:
                key = (node_id, label)
                edge_counts[key] = edge_counts.get(key, 0) + 1
            ops = self.hooks.on_edge(name, node_id, label)
            if ops:
                result.counter_ops += ops
                result.counter_cost += ops * counter_cost
            node_id = dispatch[(node_id, label)]

    def _exec_node(
        self, node, frame: _Frame
    ) -> tuple[str | None, int | None]:
        """Execute one node; returns (outgoing label, DO trip or None)."""
        kind = node.kind
        if kind in (StmtKind.ENTRY, StmtKind.NOOP):
            return LABEL_UNCOND, None
        if kind is StmtKind.EXIT:
            return None, None
        if kind is StmtKind.ASSIGN:
            self._exec_assign(node.stmt, frame)
            return LABEL_UNCOND, None
        if kind in (StmtKind.IF, StmtKind.WHILE_TEST):
            value = self._eval(node.cond, frame)
            if not isinstance(value, bool):
                raise InterpreterError(
                    "IF condition is not LOGICAL", node.line
                )
            return (LABEL_TRUE if value else LABEL_FALSE), None
        if kind is StmtKind.AIF:
            value = self._eval(node.cond, frame)
            if isinstance(value, bool):
                raise InterpreterError(
                    "arithmetic IF on a LOGICAL value", node.line
                )
            if value < 0:
                return "LT", None
            if value == 0:
                return "EQ", None
            return "GT", None
        if kind is StmtKind.CGOTO:
            selector = self._eval(node.cond, frame)
            k = int(selector)
            n_targets = len(node.stmt.targets)
            if 1 <= k <= n_targets:
                return f"C{k}", None
            return LABEL_UNCOND, None
        if kind is StmtKind.CALL:
            stmt = node.stmt
            self._invoke(stmt.name, stmt.args, frame)
            return LABEL_UNCOND, None
        if kind is StmtKind.PRINT:
            stmt = node.stmt
            rendered = " ".join(
                _format_value(self._eval(item, frame)) for item in stmt.items
            )
            self._result.outputs.append(rendered)
            return LABEL_UNCOND, None
        if kind is StmtKind.STOP:
            raise _ProgramHalt()
        if kind is StmtKind.DO_INIT:
            trip = self._exec_do_init(node, frame)
            return LABEL_UNCOND, trip
        if kind is StmtKind.DO_TEST:
            remaining = frame.trips[node.trip_var][0]
            return (LABEL_TRUE if remaining > 0 else LABEL_FALSE), None
        if kind is StmtKind.DO_INCR:
            slot = frame.trips[node.trip_var]
            stmt = node.stmt
            var = self._lookup(frame, stmt.var, node.line)
            var.set(var.value + slot[1], node.line)
            slot[0] -= 1
            return LABEL_UNCOND, None
        raise InterpreterError(
            f"cannot execute node kind {kind}", node.line
        )  # pragma: no cover

    def _exec_assign(self, stmt: ast.Assign, frame: _Frame) -> None:
        value = self._eval(stmt.value, frame)
        if isinstance(stmt.target, ast.VarRef):
            self._lookup(frame, stmt.target.name, stmt.line).set(value, stmt.line)
        else:
            array = self._lookup_array(frame, stmt.target.name, stmt.line)
            indices = tuple(
                int(self._eval(i, frame)) for i in stmt.target.indices
            )
            array.set(indices, value, stmt.line)

    def _exec_do_init(self, node, frame: _Frame) -> int:
        stmt = node.stmt
        start = self._eval(stmt.start, frame)
        stop = self._eval(stmt.stop, frame)
        step = self._eval(stmt.step, frame) if stmt.step is not None else 1
        if step == 0:
            raise InterpreterError("DO loop with zero step", node.line)
        var = self._lookup(frame, stmt.var, node.line)
        var.set(start, node.line)
        span = stop - start + step
        if isinstance(span, int) and isinstance(step, int):
            trip = _trunc_div(span, step)
        else:
            trip = int(span / step)
        trip = max(0, trip)
        frame.trips[node.trip_var] = [trip, step]
        return trip

    # -- expressions -----------------------------------------------------

    def _eval(self, expr: ast.Expr, frame: _Frame):
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.RealLit):
            return expr.value
        if isinstance(expr, ast.LogicalLit):
            return expr.value
        if isinstance(expr, ast.StringLit):
            return expr.value
        if isinstance(expr, ast.VarRef):
            table = self.checked.tables[frame.proc.name]
            if expr.name in table.constants:
                return table.constants[expr.name]
            return self._lookup(frame, expr.name, expr.line).value
        if isinstance(expr, ast.ArrayRef):
            array = self._lookup_array(frame, expr.name, expr.line)
            indices = tuple(int(self._eval(i, frame)) for i in expr.indices)
            return array.get(indices, expr.line)
        if isinstance(expr, ast.FuncCall):
            return self._eval_call(expr, frame)
        if isinstance(expr, ast.Unary):
            value = self._eval(expr.operand, frame)
            if expr.op is ast.UnOp.NEG:
                return -value
            if expr.op is ast.UnOp.POS:
                return value
            if not isinstance(value, bool):
                raise InterpreterError(".NOT. of non-LOGICAL", expr.line)
            return not value
        if isinstance(expr, ast.Binary):
            return self._eval_binary(expr, frame)
        raise InterpreterError(f"cannot evaluate {expr!r}", expr.line)

    def _eval_call(self, expr: ast.FuncCall, frame: _Frame):
        slot = frame.env.get(expr.name)
        if isinstance(slot, FortranArray):
            indices = tuple(int(self._eval(i, frame)) for i in expr.args)
            return slot.get(indices, expr.line)
        if expr.name in INTRINSICS and expr.name not in self.checked.unit.procedures:
            args = [self._eval(a, frame) for a in expr.args]
            return self.intrinsics.call(expr.name, args, expr.line)
        return self._invoke(expr.name, list(expr.args), frame)

    def _eval_binary(self, expr: ast.Binary, frame: _Frame):
        op = expr.op
        if op is ast.BinOp.AND:
            left = self._eval(expr.left, frame)
            if not isinstance(left, bool):
                raise InterpreterError(".AND. of non-LOGICAL", expr.line)
            if not left:
                return False
            right = self._eval(expr.right, frame)
            if not isinstance(right, bool):
                raise InterpreterError(".AND. of non-LOGICAL", expr.line)
            return right
        if op is ast.BinOp.OR:
            left = self._eval(expr.left, frame)
            if not isinstance(left, bool):
                raise InterpreterError(".OR. of non-LOGICAL", expr.line)
            if left:
                return True
            right = self._eval(expr.right, frame)
            if not isinstance(right, bool):
                raise InterpreterError(".OR. of non-LOGICAL", expr.line)
            return right
        left = self._eval(expr.left, frame)
        right = self._eval(expr.right, frame)
        if op is ast.BinOp.ADD:
            return left + right
        if op is ast.BinOp.SUB:
            return left - right
        if op is ast.BinOp.MUL:
            return left * right
        if op is ast.BinOp.DIV:
            if right == 0:
                raise InterpreterError("division by zero", expr.line)
            if isinstance(left, int) and isinstance(right, int):
                return _trunc_div(left, right)
            return left / right
        if op is ast.BinOp.POW:
            return _fortran_pow(left, right, expr.line)
        if op is ast.BinOp.LT:
            return left < right
        if op is ast.BinOp.LE:
            return left <= right
        if op is ast.BinOp.GT:
            return left > right
        if op is ast.BinOp.GE:
            return left >= right
        if op is ast.BinOp.EQ:
            return left == right
        if op is ast.BinOp.NE:
            return left != right
        raise InterpreterError(f"unknown operator {op}", expr.line)

    # -- environment -----------------------------------------------------

    def _lookup(self, frame: _Frame, name: str, line: int | None):
        slot = frame.env.get(name)
        if slot is None:
            # Implicitly declared scalar touched for the first time.
            table = self.checked.tables[frame.proc.name]
            info = table.ensure_scalar(name, line)
            slot = Cell(info.type)
            frame.env[name] = slot
        if isinstance(slot, FortranArray):
            return slot
        return slot

    def _lookup_array(self, frame: _Frame, name: str, line) -> FortranArray:
        slot = frame.env.get(name)
        if not isinstance(slot, FortranArray):
            raise InterpreterError(f"{name} is not an array", line)
        return slot


def _trunc_div(a: int, b: int) -> int:
    """Integer division truncating toward zero (Fortran semantics)."""
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _fortran_pow(base, exponent, line):
    if isinstance(base, int) and isinstance(exponent, int):
        if exponent >= 0:
            return base**exponent
        if base == 0:
            raise InterpreterError("0 ** negative exponent", line)
        # Fortran integer power with negative exponent truncates to 0
        # (except for |base| == 1).
        if base == 1:
            return 1
        if base == -1:
            return -1 if exponent % 2 else 1
        return 0
    if base == 0 and exponent < 0:
        raise InterpreterError("0.0 ** negative exponent", line)
    if base < 0 and not float(exponent).is_integer():
        raise InterpreterError("negative base with real exponent", line)
    return float(base) ** float(exponent)


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "T" if value else "F"
    if isinstance(value, float):
        return f"{value:.6G}"
    return str(value)
