"""Runtime values: Fortran arrays, scalar cells and type coercion."""

from __future__ import annotations

from repro.errors import InterpreterError
from repro.lang import ast


class FortranArray:
    """A 1-based, bounds-checked, row-agnostic Fortran array.

    Storage is a flat Python list; the element order is column-major
    like Fortran's, though nothing in this project depends on it.
    """

    __slots__ = ("name", "type", "dims", "data")

    def __init__(self, name: str, type_: ast.Type, dims: tuple[int, ...]):
        self.name = name
        self.type = type_
        self.dims = dims
        size = 1
        for d in dims:
            size *= d
        zero: int | float | bool
        if type_ is ast.Type.INTEGER:
            zero = 0
        elif type_ is ast.Type.LOGICAL:
            zero = False
        else:
            zero = 0.0
        self.data = [zero] * size

    def _offset(self, indices: tuple[int, ...], line: int | None) -> int:
        if len(indices) != len(self.dims):
            raise InterpreterError(
                f"{self.name}: expected {len(self.dims)} subscripts", line
            )
        offset = 0
        stride = 1
        for index, dim in zip(indices, self.dims):
            if not 1 <= index <= dim:
                raise InterpreterError(
                    f"{self.name}: subscript {index} out of bounds 1..{dim}",
                    line,
                )
            offset += (index - 1) * stride
            stride *= dim
        return offset

    def get(self, indices: tuple[int, ...], line: int | None = None):
        return self.data[self._offset(indices, line)]

    def set(self, indices: tuple[int, ...], value, line: int | None = None):
        self.data[self._offset(indices, line)] = coerce(value, self.type, line)

    def fill(self, value) -> None:
        coerced = coerce(value, self.type, None)
        self.data = [coerced] * len(self.data)

    def __len__(self) -> int:
        return len(self.data)


class Cell:
    """A mutable box for a scalar, enabling by-reference parameters."""

    __slots__ = ("type", "value")

    def __init__(self, type_: ast.Type, value=None):
        self.type = type_
        if value is None:
            value = 0 if type_ is ast.Type.INTEGER else (
                False if type_ is ast.Type.LOGICAL else 0.0
            )
        self.value = value

    def set(self, value, line: int | None = None) -> None:
        self.value = coerce(value, self.type, line)


class ElementRef:
    """A reference to one array element (by-reference actual arg)."""

    __slots__ = ("array", "indices")

    def __init__(self, array: FortranArray, indices: tuple[int, ...]):
        self.array = array
        self.indices = indices

    @property
    def type(self) -> ast.Type:
        return self.array.type

    @property
    def value(self):
        return self.array.get(self.indices)

    def set(self, value, line: int | None = None) -> None:
        self.array.set(self.indices, value, line)


def coerce(value, target: ast.Type, line: int | None):
    """Convert a runtime value to the target type, Fortran style."""
    if target is ast.Type.INTEGER:
        if isinstance(value, bool):
            raise InterpreterError("cannot store LOGICAL in INTEGER", line)
        return int(value)  # truncation toward zero
    if target is ast.Type.REAL:
        if isinstance(value, bool):
            raise InterpreterError("cannot store LOGICAL in REAL", line)
        return float(value)
    if target is ast.Type.LOGICAL:
        if not isinstance(value, bool):
            raise InterpreterError("cannot store number in LOGICAL", line)
        return value
    raise InterpreterError(f"unknown target type {target}", line)
