"""A CFG-level interpreter for minifort.

The interpreter executes the statement-level control flow graphs that
:mod:`repro.cfg` builds, with Fortran semantics (by-reference argument
passing, trip-count DO loops, implicit typing).  It serves three roles
in the reproduction:

1. the *execution vehicle* for counter-based profiling — profiling
   plans hook edge/node events and maintain counters;
2. the *cost oracle* — each executed node is charged its static
   COST(u), so analytical TIME estimates can be validated exactly;
3. the *ground-truth frequency oracle* — exact per-edge and per-node
   execution counts are recorded, against which optimized-profile
   reconstruction is checked.
"""

from repro.interp.machine import ExecutionHooks, Interpreter, RunResult
from repro.interp.values import FortranArray

__all__ = ["Interpreter", "RunResult", "ExecutionHooks", "FortranArray"]
