"""Implementations of the minifort intrinsic functions."""

from __future__ import annotations

import math
import random

from repro.errors import InterpreterError


def _fortran_mod(a, b):
    """Fortran MOD: result has the sign of the dividend."""
    if b == 0:
        raise InterpreterError("MOD with zero divisor")
    if isinstance(a, int) and isinstance(b, int):
        return int(math.fmod(a, b))
    return math.fmod(a, b)


def _sign(a, b):
    """SIGN(a, b): |a| with the sign of b (b == 0 counts as positive)."""
    magnitude = abs(a)
    return -magnitude if b < 0 else magnitude


class IntrinsicRuntime:
    """Evaluates intrinsic calls; owns the run's PRNG and input vector.

    ``IRAND``/``RAND`` draw from a seeded generator so that runs are
    reproducible; ``INPUT(i)`` reads the i-th element (1-based) of the
    run's input vector, standing in for READ statements.
    """

    def __init__(self, seed: int = 0, inputs: tuple[float, ...] = ()):
        self.rng = random.Random(seed)
        self.inputs = tuple(inputs)

    def call(self, name: str, args: list, line: int | None = None):
        if name == "MOD":
            return _fortran_mod(args[0], args[1])
        if name == "MIN":
            return min(args)
        if name == "MAX":
            return max(args)
        if name == "ABS":
            return abs(args[0])
        if name == "SIGN":
            return _sign(args[0], args[1])
        if name == "SQRT":
            if args[0] < 0:
                raise InterpreterError("SQRT of negative value", line)
            return math.sqrt(args[0])
        if name == "EXP":
            return math.exp(args[0])
        if name == "LOG":
            if args[0] <= 0:
                raise InterpreterError("LOG of non-positive value", line)
            return math.log(args[0])
        if name == "SIN":
            return math.sin(args[0])
        if name == "COS":
            return math.cos(args[0])
        if name == "ATAN":
            return math.atan(args[0])
        if name == "INT":
            return int(args[0])
        if name == "NINT":
            return int(round(args[0]))
        if name in ("REAL", "FLOAT"):
            return float(args[0])
        if name == "IRAND":
            lo, hi = int(args[0]), int(args[1])
            if lo > hi:
                raise InterpreterError(f"IRAND({lo}, {hi}): empty range", line)
            return self.rng.randint(lo, hi)
        if name == "RAND":
            return self.rng.random()
        if name == "INPUT":
            index = int(args[0])
            if not 1 <= index <= len(self.inputs):
                raise InterpreterError(
                    f"INPUT({index}): run has {len(self.inputs)} inputs", line
                )
            return self.inputs[index - 1]
        raise InterpreterError(f"unknown intrinsic {name}", line)
