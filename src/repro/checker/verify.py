"""Top-level entry points of the checker subsystem.

* :func:`verify_program` — structural + plan verification of compiled
  artifacts (the reproducibility check the batch cache and pipeline
  call);
* :func:`check_source` — compile a source text and run the full
  battery (structure, plans, lints) into one report; frontend
  failures become REP001 findings instead of exceptions, so callers
  can treat "does not compile" and "compiles but broken" uniformly.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.checker.diagnostics import DiagnosticReport, diag
from repro.checker.lint import lint_program
from repro.checker.plans import check_program_plan
from repro.checker.structure import check_structure
from repro.obs import metrics, span


def verify_program(
    program, plans=None, *, program_id: str = ""
) -> DiagnosticReport:
    """Verify a :class:`CompiledProgram` and (optionally) its plans.

    ``plans`` may be a single :class:`ProgramPlan`, an iterable of
    them, or a mapping (e.g. the cache's kind → plan dict).  The
    verifier never raises on a finding: broken artifacts produce a
    report with errors.
    """
    report = DiagnosticReport(program_id=program_id)
    with span("check.verify", attrs={"program": program_id or "?"}):
        try:
            with span("check.structure"):
                report.extend(check_structure(program))
        except Exception as exc:  # a hopelessly corrupt artifact
            report.add(
                diag("REP100", f"structural verification crashed: {exc}")
            )
            return report
        for plan in _iter_plans(plans):
            try:
                with span(
                    "check.plan",
                    attrs={"kind": getattr(plan, "kind", "?")},
                ):
                    report.extend(_check_plan(program, plan))
            except Exception as exc:
                report.add(
                    diag("REP205", f"plan verification crashed: {exc}")
                )
    metrics.counter(
        "repro_checks_total",
        "Artifact verifications run.",
        labels=("outcome",),
    ).inc(outcome="clean" if not report.errors else "errors")
    return report


def check_source(
    source: str,
    *,
    program_id: str = "",
    plan_kinds: tuple[str, ...] = ("smart",),
    lint: bool = True,
    hints: bool = False,
    lint_mode: str = "dataflow",
) -> DiagnosticReport:
    """Compile ``source`` and run every applicable check."""
    from repro.pipeline import (
        compile_source,
        naive_program_plan,
        smart_program_plan,
    )

    report = DiagnosticReport(program_id=program_id)
    with span("check", attrs={"program": program_id or "?"}):
        try:
            program = compile_source(source)
        except ReproError as exc:
            report.add(
                diag(
                    "REP001",
                    f"compilation failed: {exc}",
                    line=getattr(exc, "line", None),
                )
            )
            return report

        with span("check.structure"):
            report.extend(check_structure(program))
        from repro.paths import path_program_plan

        builders = {
            "smart": smart_program_plan,
            "naive": naive_program_plan,
            "paths": path_program_plan,
        }
        for kind in plan_kinds:
            if kind not in builders:
                raise ValueError(f"unknown plan kind {kind!r}")
            try:
                plan = builders[kind](program)
            except ReproError as exc:
                report.add(
                    diag("REP201", f"{kind} plan construction failed: {exc}")
                )
                continue
            with span("check.plan", attrs={"kind": kind}):
                report.extend(_check_plan(program, plan))
        if lint:
            with span("check.lint"):
                report.extend(
                    lint_program(
                        program.checked,
                        program.cfgs,
                        hints=hints,
                        lint_mode=lint_mode,
                    )
                )
    return report


def _check_plan(program, plan):
    """Route a plan to its checker by kind: counter plans get the
    REP2xx/REP4xx battery, path plans the REP5xx audit."""
    if getattr(plan, "kind", None) == "paths":
        from repro.checker.pathaudit import check_path_plan

        return check_path_plan(program, plan)
    return check_program_plan(program, plan)


def _iter_plans(plans):
    if plans is None:
        return []
    if hasattr(plans, "plans"):  # a single ProgramPlan
        return [plans]
    if hasattr(plans, "values"):  # kind -> plan mapping
        return list(plans.values())
    return list(plans)
