"""The diagnostics engine of the artifact verifier and linter.

Every finding the checker can produce is identified by a *stable error
code* so that tooling (CI gates, quarantine logic, the mutation-kill
suite) can match on codes rather than message text:

* ``REP0xx`` — the program could not be checked at all (frontend
  failure);
* ``REP1xx`` — structural artifact invariants (CFG / intervals / ECFG
  / FCDG);
* ``REP2xx`` — counter-plan soundness (flow conservation, derivability,
  Opt-3 preconditions);
* ``REP3xx`` — minifort source lints (dataflow findings and hints);
* ``REP4xx`` — counter-slot tables (the threaded backend's lowered
  update sites must map one-to-one onto the plan's measured counters);
* ``REP5xx`` — Ball–Larus path plans (the numbering must biject onto
  ``[0, NumPaths)``, flushes must cover every back edge, and the
  codegen backend's fused path sites must realize the plan exactly).

A :class:`Diagnostic` carries the code, a severity, a human-readable
message and an optional source span (procedure, node, line).  A
:class:`DiagnosticReport` aggregates findings and renders them as text
or JSON.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field


class Severity(enum.IntEnum):
    """Ordered severities: hints < warnings < errors."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()


#: The error-code catalogue: code -> (default severity, short title).
#: docs/checker.md documents each code's invariant and the paper
#: section it comes from; tests assert the two stay in sync.
CODES: dict[str, tuple[Severity, str]] = {
    # REP0xx — frontend
    "REP001": (Severity.ERROR, "program failed to compile"),
    # REP1xx — structural artifact invariants
    "REP100": (Severity.ERROR, "malformed control flow graph"),
    "REP101": (Severity.ERROR, "control flow graph is irreducible"),
    "REP102": (Severity.ERROR, "interval structure is not well-nested"),
    "REP103": (Severity.ERROR, "preheader/header bijection broken"),
    "REP104": (Severity.ERROR, "postexit does not split one exit edge"),
    "REP105": (Severity.ERROR, "pseudo-edge invariant violated"),
    "REP106": (Severity.ERROR, "FCDG not rooted/acyclic/connected"),
    "REP107": (Severity.ERROR, "ECFG header mapping inconsistent"),
    # REP2xx — counter-plan soundness
    "REP201": (Severity.ERROR, "profile not derivable from counter set"),
    "REP202": (Severity.ERROR, "derivation rule breaks flow conservation"),
    "REP203": (Severity.ERROR, "plan target set incomplete"),
    "REP204": (Severity.ERROR, "Opt-3 batching precondition violated"),
    "REP205": (Severity.ERROR, "counter registry corrupt"),
    "REP206": (Severity.ERROR, "plan/procedure set mismatch"),
    # REP3xx — minifort lints
    "REP301": (Severity.INFO, "variable used before any definition"),
    "REP302": (Severity.WARNING, "unreachable statement"),
    "REP303": (Severity.WARNING, "DO index mutated inside loop"),
    "REP304": (Severity.INFO, "program has no STOP statement"),
    "REP305": (Severity.INFO, "non-constant trip disables Opt-3 elision"),
    "REP306": (Severity.INFO, "dead store: assigned value is never read"),
    "REP307": (Severity.INFO, "branch condition is constant on all paths"),
    "REP308": (Severity.WARNING, "loop has no feasible exit"),
    # REP4xx — counter-slot tables (threaded-backend lowering)
    "REP401": (Severity.ERROR, "slot written but backs no measured counter"),
    "REP402": (Severity.ERROR, "measured counter has no update site"),
    "REP403": (Severity.ERROR, "slot written by multiple update sites"),
    "REP404": (Severity.ERROR, "slot outside the dense counter id space"),
    "REP405": (Severity.ERROR, "codegen bump sites diverge from the plan"),
    # REP5xx — Ball–Larus path plans (numbering + fused lowering)
    "REP501": (Severity.ERROR, "path numbering is not a bijection"),
    "REP502": (Severity.ERROR, "path flush coverage broken"),
    "REP503": (Severity.ERROR, "codegen path sites diverge from the plan"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One checker finding, locatable and stable across runs."""

    code: str
    message: str
    severity: Severity
    proc: str | None = None
    node: int | None = None
    line: int | None = None

    def render(self) -> str:
        """``REP103 error [MAIN] message (node 5, line 12)``."""
        parts = [self.code, str(self.severity)]
        if self.proc:
            parts.append(f"[{self.proc}]")
        text = " ".join(parts) + f": {self.message}"
        where = []
        if self.node is not None:
            where.append(f"node {self.node}")
        if self.line is not None:
            where.append(f"line {self.line}")
        if where:
            text += f" ({', '.join(where)})"
        return text

    def as_dict(self) -> dict:
        record: dict = {
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
        }
        if self.proc is not None:
            record["proc"] = self.proc
        if self.node is not None:
            record["node"] = self.node
        if self.line is not None:
            record["line"] = self.line
        return record


def diag(
    code: str,
    message: str,
    *,
    proc: str | None = None,
    node: int | None = None,
    line: int | None = None,
    severity: Severity | None = None,
) -> Diagnostic:
    """Build a diagnostic with the catalogue's default severity."""
    if code not in CODES:
        raise ValueError(f"unknown diagnostic code {code!r}")
    return Diagnostic(
        code=code,
        message=message,
        severity=severity if severity is not None else CODES[code][0],
        proc=proc,
        node=node,
        line=line,
    )


@dataclass
class DiagnosticReport:
    """All findings for one checked program."""

    program_id: str = ""
    diagnostics: list[Diagnostic] = field(default_factory=list)

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics) -> None:
        self.diagnostics.extend(diagnostics)

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.diagnostics)

    def by_severity(self, minimum: Severity) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity >= minimum]

    @property
    def errors(self) -> list[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        return [
            d for d in self.diagnostics if d.severity is Severity.WARNING
        ]

    @property
    def ok(self) -> bool:
        """True when nothing at warning level or above was found."""
        return not self.by_severity(Severity.WARNING)

    def codes(self) -> set[str]:
        return {d.code for d in self.diagnostics}

    def has(self, code: str) -> bool:
        return any(d.code == code for d in self.diagnostics)

    # -- renderers ---------------------------------------------------------

    def render_text(self) -> str:
        """One line per finding, errors first, stable order."""
        ordered = sorted(
            self.diagnostics,
            key=lambda d: (-int(d.severity), d.code, d.proc or "", d.node or 0),
        )
        header = self.program_id or "program"
        if not ordered:
            return f"{header}: clean"
        lines = [f"{header}: {self.summary()}"]
        lines += [f"  {d.render()}" for d in ordered]
        return "\n".join(lines)

    def summary(self) -> str:
        n_err = len(self.errors)
        n_warn = len(self.warnings)
        n_info = len(self.diagnostics) - n_err - n_warn
        return (
            f"{len(self.diagnostics)} finding(s) "
            f"({n_err} error(s), {n_warn} warning(s), {n_info} hint(s))"
        )

    def as_dict(self) -> dict:
        return {
            "program": self.program_id,
            "ok": self.ok,
            "diagnostics": [d.as_dict() for d in self.diagnostics],
        }

    def render_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)
