"""REP5xx: Ball–Larus path-plan validation.

A path plan is trusted twice over: the runtime bumps ``paths[r]``
at whatever id the increments steer the register to, and the
reconstruction engine turns those ids back into edge frequencies.  A
corrupted plan therefore produces silently wrong profiles, exactly
like a corrupted counter plan.  These checks re-derive the ground
truth from the plan's own decode table (``choices`` — the ordered DAG
skeleton the numbering walked) and compare:

* **REP501** — the numbering must be a bijection onto
  ``[0, NumPaths)``: re-running the NumPaths recurrence over the
  decode table must reproduce ``num_paths`` and every stored edge
  increment, and (below an enumeration cap) every id must decode to a
  distinct path whose increment/flush constants re-sum to that id;
* **REP502** — flush coverage: the flush table must cover *exactly*
  the CFG's back edges, each ``bump_add`` must equal its dummy
  ``u → EXIT`` increment, each ``reset`` the dummy ``ENTRY → h``
  increment of its own header, and the non-EXIT DAG sinks must be
  exactly ``stop_sinks`` (the nodes whose register is flushed as a
  complete path on halt);
* **REP503** — the codegen backend's emitted path-update sites
  (register increments, back-edge flushes, EXIT/STOP settles) must
  map one-to-one onto the plan, mirroring REP405 for counter bumps.
"""

from __future__ import annotations

from repro.cfg.graph import StmtKind
from repro.cfg.reducibility import back_edges
from repro.checker.diagnostics import Diagnostic, diag
from repro.paths.numbering import (
    _KIND_EDGE,
    _KIND_ENTRY_DUMMY,
    _KIND_EXIT_DUMMY,
)

#: Full-enumeration bijection checking is bounded; wider procedures
#: rely on the algebraic recurrence audit alone.
ENUMERATION_CAP = 4096


def check_path_plan(program, plan) -> list[Diagnostic]:
    """All path-plan findings (REP206 + REP5xx) for one program."""
    findings: list[Diagnostic] = []
    plan_procs = set(plan.plans)
    program_procs = set(program.cfgs)
    for name in sorted(program_procs - plan_procs):
        findings.append(
            diag("REP206", f"no path plan for procedure {name}", proc=name)
        )
    for name in sorted(plan_procs - program_procs):
        findings.append(
            diag(
                "REP206",
                f"path plan names unknown procedure {name}",
                proc=name,
            )
        )
    for name in sorted(plan_procs & program_procs):
        findings.extend(
            _check_proc_numbering(program.cfgs[name], plan.plans[name])
        )
    findings.extend(check_codegen_path_sites(program, plan))
    return findings


def _recompute_numbering(plan):
    """Re-run the NumPaths recurrence over the plan's decode table.

    Returns ``(num_paths, edge_incs, exit_dummy_incs, entry_dummy_incs,
    sinks)`` — the per-node path counts and the increment every DAG
    edge *should* carry, derived independently of the stored
    ``increments``/``flushes`` tables.
    """
    nodes = set(plan.choices)
    for options in plan.choices.values():
        for _inc, kind, data in options:
            if kind == _KIND_EDGE:
                nodes.add(data[2])
            elif kind == _KIND_ENTRY_DUMMY:
                nodes.add(data)
    nodes.add(plan.entry)
    nodes.add(plan.exit)

    num: dict[int, int] = {}
    stack = [plan.entry] + sorted(nodes)
    while stack:
        node = stack[-1]
        if node in num:
            stack.pop()
            continue
        options = plan.choices.get(node, ())
        pending = []
        total = 0
        for _inc, kind, data in options:
            succ = None
            if kind == _KIND_EDGE:
                succ = data[2]
            elif kind == _KIND_ENTRY_DUMMY:
                succ = data
            else:
                total += 1
                continue
            if succ in num:
                total += num[succ]
            else:
                pending.append(succ)
        if pending:
            stack.extend(pending)
            continue
        num[node] = total if options else 1
        stack.pop()

    edge_incs: dict[tuple[int, str], int] = {}
    exit_incs: dict[tuple[int, str], int] = {}
    entry_incs: dict[int, int] = {}
    for node, options in plan.choices.items():
        prefix = 0
        for stored_inc, kind, data in options:
            if kind == _KIND_EDGE:
                edge_incs[(data[0], data[1])] = prefix
                prefix += num[data[2]]
            elif kind == _KIND_ENTRY_DUMMY:
                entry_incs[data] = prefix
                prefix += num[data]
            else:
                exit_incs[data] = prefix
                prefix += 1
    sinks = {n for n in nodes if not plan.choices.get(n)}
    return num, edge_incs, exit_incs, entry_incs, sinks


def _check_proc_numbering(cfg, plan) -> list[Diagnostic]:
    """REP501/REP502 for one procedure's path plan."""
    name = plan.proc
    out: list[Diagnostic] = []
    num, edge_incs, exit_incs, entry_incs, sinks = _recompute_numbering(plan)

    # -- REP501: the recurrence must reproduce the stored tables -------
    derived = num.get(plan.entry, 1)
    if derived != plan.num_paths:
        out.append(
            diag(
                "REP501",
                f"NumPaths recurrence yields {derived} paths, plan "
                f"records {plan.num_paths}",
                proc=name,
            )
        )
    if plan.increments != edge_incs:
        for key in sorted(set(plan.increments) | set(edge_incs)):
            stored = plan.increments.get(key)
            want = edge_incs.get(key)
            if stored != want:
                out.append(
                    diag(
                        "REP501",
                        f"edge {key} carries increment {stored}, "
                        f"recurrence demands {want}",
                        proc=name,
                        node=key[0],
                    )
                )

    # -- REP502: flushes cover exactly the back edges ------------------
    backs = {(e.src, e.label): e.dst for e in back_edges(cfg)}
    for key in sorted(set(backs) - set(plan.flushes)):
        out.append(
            diag(
                "REP502",
                f"back edge {key} has no flush entry",
                proc=name,
                node=key[0],
            )
        )
    for key in sorted(set(plan.flushes) - set(backs)):
        out.append(
            diag(
                "REP502",
                f"flush entry {key} is not a back edge",
                proc=name,
                node=key[0],
            )
        )
    for key in sorted(set(plan.flushes) & set(backs)):
        bump_add, reset = plan.flushes[key]
        want_bump = exit_incs.get(key)
        want_reset = entry_incs.get(backs[key])
        if bump_add != want_bump:
            out.append(
                diag(
                    "REP502",
                    f"flush {key} bumps paths[r + {bump_add}], dummy "
                    f"exit edge carries {want_bump}",
                    proc=name,
                    node=key[0],
                )
            )
        if reset != want_reset:
            out.append(
                diag(
                    "REP502",
                    f"flush {key} resets the register to {reset}, dummy "
                    f"entry edge of header {backs[key]} carries "
                    f"{want_reset}",
                    proc=name,
                    node=key[0],
                )
            )
    if sinks - {plan.exit} != set(plan.stop_sinks):
        out.append(
            diag(
                "REP502",
                f"stop sinks {sorted(plan.stop_sinks)} disagree with the "
                f"DAG's non-exit sinks {sorted(sinks - {plan.exit})}",
                proc=name,
            )
        )
    if out:
        # The tables are already known-corrupt; enumeration would only
        # chase the same defects through decode errors.
        return out

    # -- REP501: exhaustive bijection below the cap --------------------
    if plan.num_paths <= ENUMERATION_CAP:
        seen: dict[tuple, int] = {}
        for path_id in range(plan.num_paths):
            try:
                decoded = plan.decode(path_id)
            except Exception as exc:
                out.append(
                    diag(
                        "REP501",
                        f"path id {path_id} fails to decode: {exc}",
                        proc=name,
                    )
                )
                continue
            shape = (decoded.start, decoded.nodes, decoded.edges, decoded.end)
            if shape in seen:
                out.append(
                    diag(
                        "REP501",
                        f"path ids {seen[shape]} and {path_id} decode to "
                        "the same path",
                        proc=name,
                    )
                )
            seen[shape] = path_id
            resum = _resum(plan, decoded, entry_incs)
            if resum != path_id:
                out.append(
                    diag(
                        "REP501",
                        f"path id {path_id} re-sums to {resum} from the "
                        "increment/flush tables",
                        proc=name,
                    )
                )
    return out


def _resum(plan, decoded, entry_incs: dict[int, int]) -> int:
    """Rebuild a decoded path's id from the runtime's own constants:
    the entry-dummy reset, the per-edge increments, and the back-edge
    ``bump_add`` — the exact additions the register would perform."""
    total = 0
    if decoded.start != plan.entry:
        total += entry_incs.get(decoded.start, 0)
    edges = decoded.edges
    if decoded.end == "backedge":
        total += plan.flushes[decoded.back_edge][0]
        edges = edges[:-1]
    for key in edges:
        total += plan.increments.get(key, 0)
    return total


# ---------------------------------------------------------------------------
# REP503: the codegen backend's emitted path-update sites
# ---------------------------------------------------------------------------


def check_codegen_path_sites(program, plan) -> list[Diagnostic]:
    """REP503: audit the codegen backend's emitted path sites.

    Emits the path-profiled variant for ``plan`` (cached by path-plan
    fingerprint) and compares its recorded sites against the plan.  A
    program the emitter cannot lower produces no findings — there is
    no emitted source to audit, and backend auto-selection never runs
    codegen for it.
    """
    from repro.codegen import LoweringError, codegen_backend_for

    backend = codegen_backend_for(program)
    try:
        backend.ensure_lowered()
        meta = backend.emit_meta(plan)
    except LoweringError:
        return []
    return audit_path_sites(program, plan, meta)


def audit_path_sites(program, plan, meta) -> list[Diagnostic]:
    """Compare an emission's path-site metadata against the plan.

    Split from :func:`check_codegen_path_sites` so tests can audit
    deliberately corrupted metadata directly.
    """
    findings: list[Diagnostic] = []
    for name in sorted(plan.plans):
        proc_plan = plan.plans[name]
        cfg = program.cfgs[name]
        reachable = meta.reachable.get(name, set())
        pruned = set(getattr(meta, "pruned_edges", {}).get(name, ()))
        emitted = set(
            tuple(site) for site in meta.path_sites.get(name, ())
        )
        expected: set[tuple] = set()

        def stop_node(nid):
            node = cfg.nodes.get(nid)
            return node is not None and node.kind is StmtKind.STOP

        for key, inc in proc_plan.increments.items():
            # A STOP source raises before traversing its out edge, so
            # the emitter plants no increment there (it is always the
            # node's first ordered choice and carries 0 anyway).
            if (
                inc
                and key not in pruned
                and key[0] in reachable
                and not stop_node(key[0])
            ):
                expected.add(("inc", key, inc))
        for key, (bump_add, reset) in proc_plan.flushes.items():
            if key not in pruned and key[0] in reachable:
                expected.add(("flush", key, bump_add, reset))
        if proc_plan.exit in reachable:
            expected.add(("exit", proc_plan.exit))
        for nid in reachable:
            if stop_node(nid):
                site = (
                    ("stop", nid)
                    if nid in proc_plan.stop_sinks
                    else ("partial", nid)
                )
                expected.add(site)

        for site in sorted(emitted - expected, key=repr):
            findings.append(
                diag(
                    "REP503",
                    f"emitted {site[0]} path site at {site[1:]!r} "
                    "matches no planned site",
                    proc=name,
                )
            )
        for site in sorted(expected - emitted, key=repr):
            findings.append(
                diag(
                    "REP503",
                    f"planned {site[0]} path site at {site[1:]!r} "
                    "has no emitted update",
                    proc=name,
                )
            )
    return findings
