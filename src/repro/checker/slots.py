"""REP4xx: counter-slot-table validation (fast-backend lowerings).

The threaded backend lowers every counter plan to dense slot tables
(:mod:`repro.fastexec.plans`); a table is sound when each measured
counter is written by exactly one runtime site and every written slot
backs a measured counter.  This module turns the lowering's
:class:`~repro.fastexec.plans.SlotFault` records into stable checker
diagnostics so broken tables are caught by the same gate (``repro
check``, cache ``verify_loads``, batch ``--verify``) as every other
artifact defect.

REP405 extends the same audit to the codegen backend's *emitted
source*: every ``slots[i] += ...`` bump site the emitter folded into
the text must correspond to a planned site, and every planned site on
emitter-reachable code must have been emitted.  A miscompiled emitter
(wrong slot index, dropped or duplicated bump) is caught statically,
before any run diverges.
"""

from __future__ import annotations

from repro.cfg.graph import StmtKind
from repro.checker.diagnostics import Diagnostic, diag
from repro.fastexec.plans import lower_counter_plan, validate_slot_table

#: SlotFault.kind -> diagnostic code.
_FAULT_CODES = {
    "orphan": "REP401",
    "unmapped": "REP402",
    "duplicate": "REP403",
    "range": "REP404",
}


def check_slot_tables(plan) -> list[Diagnostic]:
    """All REP401-404 findings for one :class:`ProgramPlan`."""
    findings: list[Diagnostic] = []
    for name in sorted(plan.plans):
        proc_plan = plan.plans[name]
        table = lower_counter_plan(proc_plan)
        for fault in validate_slot_table(proc_plan, table):
            findings.append(
                diag(_FAULT_CODES[fault.kind], fault.detail, proc=name)
            )
    return findings


def check_codegen_bumps(program, plan) -> list[Diagnostic]:
    """REP405: audit the codegen backend's emitted bump sites.

    Emits the profiled variant for ``plan`` (cached by plan
    fingerprint) and compares its recorded ``slots[`` sites against
    the plan's lowered slot tables.  A program the emitter cannot
    lower produces no findings — there is no emitted source to audit,
    and backend auto-selection never runs codegen for it.
    """
    from repro.codegen import LoweringError, codegen_backend_for

    backend = codegen_backend_for(program)
    try:
        backend.ensure_lowered()
        meta = backend.emit_meta(plan)
    except LoweringError:
        return []
    return audit_bump_sites(program, plan, meta)


def audit_bump_sites(program, plan, meta) -> list[Diagnostic]:
    """Compare an emission's bump metadata against the plan's tables.

    Split from :func:`check_codegen_bumps` so the mutation-kill suite
    can audit deliberately miscompiled emissions directly.
    """
    findings: list[Diagnostic] = []
    for name in sorted(plan.plans):
        table = lower_counter_plan(plan.plans[name])
        cfg = program.cfgs[name]
        reachable = meta.reachable.get(name, set())
        # Branch arms the optimizer folded away: their edge slots are
        # planned but provably never bumped (static FREQ 0), so a
        # missing bump site there is expected, not a miscompile.
        # (getattr: metadata pickled before the field existed.)
        pruned = set(getattr(meta, "pruned_edges", {}).get(name, ()))
        emitted = {
            (slot, kind, where)
            for slot, kind, where in meta.bumps.get(name, ())
        }
        planned_all: set[tuple] = set()
        planned_live: set[tuple] = set()

        def add(site, nid):
            planned_all.add(site)
            # STOP raises before its on_node event fires, so the
            # reference never bumps a counter there either.
            node = cfg.nodes.get(nid)
            stopped = node is not None and node.kind is StmtKind.STOP
            if nid in reachable and not stopped:
                planned_live.add(site)

        for nid, slot in table.node_slots.items():
            add((slot, "node", nid), nid)
        for (nid, label), slot in table.edge_slots.items():
            planned_all.add((slot, "edge", (nid, label)))
            if (nid, label) not in pruned:
                add((slot, "edge", (nid, label)), nid)
        for nid, pairs in table.batch_slots.items():
            for slot, _offset in pairs:
                add((slot, "batch", nid), nid)

        for site in sorted(emitted - planned_all, key=repr):
            slot, kind, where = site
            findings.append(
                diag(
                    "REP405",
                    f"emitted {kind} bump of slot {slot} at {where!r} "
                    "matches no planned site",
                    proc=name,
                )
            )
        for site in sorted(planned_live - emitted, key=repr):
            slot, kind, where = site
            findings.append(
                diag(
                    "REP405",
                    f"planned {kind} counter in slot {slot} at {where!r} "
                    "has no emitted bump site",
                    proc=name,
                )
            )
    return findings
