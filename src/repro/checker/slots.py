"""REP4xx: counter-slot-table validation (threaded-backend lowering).

The threaded backend lowers every counter plan to dense slot tables
(:mod:`repro.fastexec.plans`); a table is sound when each measured
counter is written by exactly one runtime site and every written slot
backs a measured counter.  This module turns the lowering's
:class:`~repro.fastexec.plans.SlotFault` records into stable checker
diagnostics so broken tables are caught by the same gate (``repro
check``, cache ``verify_loads``, batch ``--verify``) as every other
artifact defect.
"""

from __future__ import annotations

from repro.checker.diagnostics import Diagnostic, diag
from repro.fastexec.plans import lower_counter_plan, validate_slot_table

#: SlotFault.kind -> diagnostic code.
_FAULT_CODES = {
    "orphan": "REP401",
    "unmapped": "REP402",
    "duplicate": "REP403",
    "range": "REP404",
}


def check_slot_tables(plan) -> list[Diagnostic]:
    """All REP4xx findings for one :class:`ProgramPlan`."""
    findings: list[Diagnostic] = []
    for name in sorted(plan.plans):
        proc_plan = plan.plans[name]
        table = lower_counter_plan(proc_plan)
        for fault in validate_slot_table(proc_plan, table):
            findings.append(
                diag(_FAULT_CODES[fault.kind], fault.detail, proc=name)
            )
    return findings
