"""Counter-plan soundness verification (REP2xx).

A counter plan is trusted by the reconstruction engine: the runtime
increments exactly the counters the plan names, and every dropped
measure is recovered through the plan's derivation rules.  A corrupted
plan therefore produces silently wrong profiles — the worst failure
mode of the whole framework.  These checks re-derive the ground truth
from the artifacts and compare:

* **REP201** — the full target measure set must lie in the rule
  closure of the measured counter set (the plan can reconstruct every
  ``TOTAL_FREQ(u, l)`` symbolically);
* **REP202** — every recorded derivation rule must be a genuine flow
  conservation law of the graphs: exec-sums are regenerated from the
  FCDG, Opt-2 complement/back-edge/exit sums from the ECFG and its
  intervals, and Opt-3 constant-trip rules are re-derived from the
  AST.  A rule the generator would not produce is a corruption;
* **REP203** — the plan's target list must cover exactly the control
  conditions the FCDG demands (nothing missing, nothing foreign);
* **REP204** — Opt-3 batch counters may only hang off the DO_INIT of
  an *exit-free* DO loop (the paper's no-loop-exit precondition);
* **REP205** — registry integrity: every placed counter id exists,
  ids are not shared, and each counter sits at the location its
  measure describes;
* **REP206** — the plan and the program must cover the same
  procedures.
"""

from __future__ import annotations

from repro.cfg.graph import StmtKind, is_pseudo_label
from repro.checker.diagnostics import Diagnostic, diag
from repro.lang import ast
from repro.profiling.measures import (
    RuleSet,
    block_measure,
    cond_measure,
    exec_measure,
    header_measure,
    invoc_measure,
)
from repro.profiling.placement import (
    _constant_trip,
    _exec_rules,
    _exit_free_do_init,
    _sum_constraint_rules,
    basic_blocks,
)


def check_program_plan(program, plan) -> list[Diagnostic]:
    """All plan findings (REP2xx + REP4xx) for one :class:`ProgramPlan`."""
    findings: list[Diagnostic] = []
    plan_procs = set(plan.plans)
    program_procs = set(program.cfgs)
    for name in sorted(program_procs - plan_procs):
        findings.append(
            diag("REP206", f"no counter plan for procedure {name}", proc=name)
        )
    for name in sorted(plan_procs - program_procs):
        findings.append(
            diag(
                "REP206",
                f"plan names unknown procedure {name}",
                proc=name,
            )
        )
    for name in sorted(plan_procs & program_procs):
        findings.extend(_check_procedure_plan(program, name, plan.plans[name]))
    # REP4xx: the dense slot tables the threaded backend lowers the
    # plan to must stay one-to-one with the measured counter set, and
    # the codegen backend's emitted bump sites must realize exactly
    # the planned counters.
    from repro.checker.slots import check_codegen_bumps, check_slot_tables

    findings.extend(check_slot_tables(plan))
    findings.extend(check_codegen_bumps(program, plan))
    return findings


def _check_procedure_plan(program, name: str, plan) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    cfg = program.cfgs[name]
    fcdg = program.fcdgs[name]

    out.extend(_check_registries(cfg, plan, name))
    if plan.kind == "smart":
        out.extend(_check_smart_targets(fcdg, plan, name))
        out.extend(_check_rules(program, name, plan))
        out.extend(_check_batching(program, name, plan))
    elif plan.kind == "naive":
        out.extend(_check_naive_targets(cfg, plan, name))

    # REP201 last: with rules and registries individually validated,
    # the closure check certifies end-to-end reconstructibility.
    closure = _fast_closure(plan.rules, plan.measured())
    missing = [t for t in plan.targets if t not in closure]
    if missing:
        out.append(
            diag(
                "REP201",
                f"targets not derivable from the counter set: "
                f"{sorted(map(str, missing))}",
                proc=name,
            )
        )
    return out


def _fast_closure(rules: RuleSet, known: set) -> set:
    """``RuleSet.closure`` with a dependency-indexed worklist.

    Semantically identical to the library fixpoint, but O(rules +
    resolutions) instead of O(rules × passes): the verifier runs a
    closure per procedure per plan on every disk-cache hit, so this is
    on the cache's hot path.
    """
    waiting: dict = {}  # dependency -> rules blocked on it
    remaining: dict = {}  # rule index -> unresolved dependency count
    resolved = set(known)
    ready = []
    for index, rule in enumerate(rules.rules):
        # Inlined ``rule.dependencies()``: a measure term is a tuple,
        # a literal term is a float.
        deps = [
            term
            for _, term in rule.terms
            if isinstance(term, tuple) and term not in resolved
        ]
        if not deps:
            ready.append(rule.target)
            continue
        remaining[index] = len(deps)
        for dep in deps:
            waiting.setdefault(dep, []).append(index)
    while ready:
        measure = ready.pop()
        if measure in resolved:
            continue
        resolved.add(measure)
        for index in waiting.get(measure, ()):
            remaining[index] -= 1
            if remaining[index] == 0:
                ready.append(rules.rules[index].target)
    return resolved


# ---------------------------------------------------------------------------
# REP205 — registry integrity
# ---------------------------------------------------------------------------


def _check_registries(cfg, plan, name: str) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    seen: dict[int, str] = {}

    def claim(cid: int, where: str, node: int | None = None) -> bool:
        if cid in seen:
            out.append(
                diag(
                    "REP205",
                    f"counter {cid} placed twice ({seen[cid]} and {where})",
                    proc=name,
                    node=node,
                )
            )
            return False
        seen[cid] = where
        if cid not in plan.counter_measures:
            out.append(
                diag(
                    "REP205",
                    f"counter {cid} at {where} has no measure "
                    "(deleted or never allocated)",
                    proc=name,
                    node=node,
                )
            )
            return False
        if not (0 <= cid < plan.id_space):
            out.append(
                diag(
                    "REP205",
                    f"counter id {cid} outside the plan's id space "
                    f"[0, {plan.id_space})",
                    proc=name,
                    node=node,
                )
            )
            return False
        return True

    for node, cid in sorted(plan.node_counters.items()):
        if not claim(cid, f"node {node}", node):
            continue
        measure = plan.counter_measures[cid]
        if node not in cfg.nodes:
            out.append(
                diag(
                    "REP205",
                    f"node counter {cid} placed on unknown node {node}",
                    proc=name,
                    node=node,
                )
            )
        elif measure == invoc_measure():
            if node != cfg.entry:
                out.append(
                    diag(
                        "REP205",
                        f"invocation counter {cid} not on the entry node",
                        proc=name,
                        node=node,
                    )
                )
        elif measure[0] == "header":
            if measure[1] != node:
                out.append(
                    diag(
                        "REP205",
                        f"header counter {cid} for {measure[1]} placed on "
                        f"node {node}",
                        proc=name,
                        node=node,
                    )
                )
        elif measure[0] == "block":
            if measure[1] != node:
                out.append(
                    diag(
                        "REP205",
                        f"block counter {cid} for leader {measure[1]} "
                        f"placed on node {node}",
                        proc=name,
                        node=node,
                    )
                )
        else:
            out.append(
                diag(
                    "REP205",
                    f"node counter {cid} carries unexpected measure "
                    f"{measure}",
                    proc=name,
                    node=node,
                )
            )

    for (src, label), cid in sorted(plan.edge_counters.items()):
        if not claim(cid, f"edge ({src}, {label!r})", src):
            continue
        measure = plan.counter_measures[cid]
        if measure != cond_measure(src, label):
            out.append(
                diag(
                    "REP205",
                    f"edge counter {cid} at ({src}, {label!r}) carries "
                    f"measure {measure}",
                    proc=name,
                    node=src,
                )
            )
        if src not in cfg.nodes or label not in cfg.out_labels(src):
            out.append(
                diag(
                    "REP205",
                    f"edge counter {cid} placed on nonexistent edge "
                    f"({src}, {label!r})",
                    proc=name,
                    node=src,
                )
            )

    for node, entries in sorted(plan.batch_counters.items()):
        for cid, offset in entries:
            claim(cid, f"batch at node {node}", node)
        if node not in cfg.nodes:
            out.append(
                diag(
                    "REP205",
                    f"batch counters placed on unknown node {node}",
                    proc=name,
                    node=node,
                )
            )
    return out


# ---------------------------------------------------------------------------
# REP203 — target completeness (smart plans)
# ---------------------------------------------------------------------------


def _expected_smart_targets(fcdg) -> set:
    ecfg = fcdg.ecfg
    targets = {invoc_measure()}
    for node, label in fcdg.conditions():
        if is_pseudo_label(label) or node == ecfg.start:
            continue
        if ecfg.is_preheader(node):
            targets.add(header_measure(ecfg.header_of[node]))
        else:
            targets.add(cond_measure(node, label))
    return targets


def _check_smart_targets(fcdg, plan, name: str) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    expected = _expected_smart_targets(fcdg)
    actual = set(plan.targets)
    for measure in sorted(expected - actual, key=str):
        out.append(
            diag(
                "REP203",
                f"profile target {measure} missing from the plan",
                proc=name,
            )
        )
    for measure in sorted(actual - expected, key=str):
        out.append(
            diag(
                "REP203",
                f"plan targets {measure}, which no FCDG condition demands",
                proc=name,
            )
        )
    return out


def _check_naive_targets(cfg, plan, name: str) -> list[Diagnostic]:
    expected = {block_measure(leader) for leader in basic_blocks(cfg)}
    actual = set(plan.targets)
    out: list[Diagnostic] = []
    if expected != actual:
        missing = sorted(expected - actual, key=str)
        extra = sorted(actual - expected, key=str)
        out.append(
            diag(
                "REP203",
                f"naive plan target set mismatch "
                f"(missing={missing}, extra={extra})",
                proc=name,
            )
        )
    return out


# ---------------------------------------------------------------------------
# REP202 — every recorded rule is a real flow conservation law
# ---------------------------------------------------------------------------


def _check_rules(program, name: str, plan) -> list[Diagnostic]:
    fcdg = program.fcdgs[name]
    out: list[Diagnostic] = []

    regenerated = RuleSet()
    _exec_rules(fcdg, regenerated)
    _sum_constraint_rules(fcdg, regenerated)
    valid = set(regenerated.rules)

    for rule in plan.rules.rules:
        if rule.kind == "const_trip":
            out.extend(_check_const_trip_rule(program, name, rule))
        elif rule not in valid:
            out.append(
                diag(
                    "REP202",
                    f"{rule.kind} rule for {rule.target} does not match "
                    "any flow conservation law of the graphs",
                    proc=name,
                )
            )
    return out


def _check_const_trip_rule(program, name: str, rule) -> list[Diagnostic]:
    cfg = program.cfgs[name]
    ecfg = program.ecfgs[name]
    intervals = ecfg.intervals

    def bad(message: str) -> Diagnostic:
        return diag("REP202", message, proc=name)

    if rule.target[0] != "header":
        return [bad(f"const_trip rule targets {rule.target}, not a header")]
    header = rule.target[1]
    header_node = cfg.nodes.get(header)
    if header_node is None or header_node.kind is not StmtKind.DO_TEST:
        return [bad(f"const_trip rule for non-DO header {header}")]
    if _exit_free_do_init(cfg, intervals, header) is None:
        return [
            diag(
                "REP204",
                f"const_trip rule for loop {header}, which is not "
                "exit-free",
                proc=name,
                node=header,
            )
        ]
    stmt = header_node.stmt
    assert isinstance(stmt, ast.DoLoop)
    trip = _constant_trip(stmt, program.checked, name)
    if trip is None:
        return [
            bad(
                f"const_trip rule for loop {header} whose trip count is "
                "not a compile-time constant"
            )
        ]
    preheader = ecfg.preheader_of.get(header)
    expected_terms = ((float(trip + 1), exec_measure(preheader)),)
    if rule.terms != expected_terms or rule.bias != 0.0:
        return [
            bad(
                f"const_trip rule for loop {header} expects "
                f"{trip + 1} x exec(preheader {preheader}), recorded "
                f"{rule.terms}"
            )
        ]
    return []


# ---------------------------------------------------------------------------
# REP204 — Opt-3 batching preconditions
# ---------------------------------------------------------------------------


def _check_batching(program, name: str, plan) -> list[Diagnostic]:
    cfg = program.cfgs[name]
    ecfg = program.ecfgs[name]
    intervals = ecfg.intervals
    out: list[Diagnostic] = []

    for node, entries in sorted(plan.batch_counters.items()):
        node_obj = cfg.nodes.get(node)
        if node_obj is None or node_obj.kind is not StmtKind.DO_INIT:
            out.append(
                diag(
                    "REP204",
                    f"batch counters attached to node {node}, which is "
                    "not a DO_INIT",
                    proc=name,
                    node=node,
                )
            )
            continue
        for cid, offset in entries:
            measure = plan.counter_measures.get(cid)
            if measure is None:
                continue  # REP205 already reported the dangling id
            if measure[0] != "header":
                out.append(
                    diag(
                        "REP204",
                        f"batch counter {cid} carries {measure}, not a "
                        "loop-frequency measure",
                        proc=name,
                        node=node,
                    )
                )
                continue
            header = measure[1]
            if offset != 1:
                out.append(
                    diag(
                        "REP204",
                        f"batch counter {cid} for loop {header} uses "
                        f"offset {offset} (header executions are trip+1)",
                        proc=name,
                        node=node,
                    )
                )
            if _exit_free_do_init(cfg, intervals, header) != node:
                out.append(
                    diag(
                        "REP204",
                        f"batch counter {cid} for loop {header} placed on "
                        f"DO_INIT {node}, but the loop is not exit-free "
                        "(or not this loop's init)",
                        proc=name,
                        node=node,
                    )
                )
    return out
