"""Dataflow lints over minifort sources (REP3xx).

The linter runs on the checked AST and the statement-level CFGs, so
its findings are path-aware where that matters:

* **REP301** (hint) — a scalar read that no path from the procedure
  entry can have defined.  Computed as a forward *may-be-defined*
  union dataflow over the CFG; a read outside the may-defined set is
  uninitialized on every path, so the finding has no path
  false-positives.  Scalars passed to a CALL or FUNCTION are
  conservatively treated as defined (Fortran passes by reference),
  and arrays are not tracked.  A hint rather than a warning because
  minifort (unlike Fortran 77) guarantees zero-initialization, so
  relying on it is defined behavior — merely suspect;
* **REP302** — an unlabelled statement directly following a statement
  that never falls through (GOTO, STOP, RETURN, arithmetic IF) can
  never execute;
* **REP303** — an assignment to a DO loop's index variable (or a
  nested DO reusing it) inside the loop body: Fortran-77 leaves the
  result undefined, and the interval analysis assumes the hidden trip
  counter is authoritative;
* **REP304** (hint) — the main program has no STOP statement;
* **REP305** (hint) — an exit-free DO loop whose trip count is not a
  compile-time constant: the counter-free half of Opt 3 silently does
  not apply, so the loop keeps a batched counter.

Hints are only produced with ``hints=True``; they describe missed
optimizations rather than likely bugs, and built-in workloads trip
them by design.
"""

from __future__ import annotations

from repro.checker.diagnostics import Diagnostic, diag
from repro.lang import ast
from repro.lang.symbols import CheckedProgram
from repro.profiling.placement import _constant_trip


def lint_program(
    checked: CheckedProgram, cfgs, *, hints: bool = False
) -> list[Diagnostic]:
    """All REP3xx findings for a checked program."""
    findings: list[Diagnostic] = []
    for name, proc in sorted(checked.unit.procedures.items()):
        findings.extend(_lint_unreachable(proc))
        findings.extend(_lint_do_index_mutation(proc))
        if hints:
            cfg = cfgs.get(name)
            if cfg is not None:
                findings.extend(_lint_use_before_def(checked, proc, cfg))
            findings.extend(_lint_missing_stop(proc))
            findings.extend(_lint_nonconstant_trip(checked, proc))
    return findings


# ---------------------------------------------------------------------------
# REP301 — use before any possible definition
# ---------------------------------------------------------------------------


def _scalar_reads(expr: ast.Expr, table) -> set[str]:
    """Scalar variable names read by an expression.

    Bare VarRef arguments of calls are *not* reads: a callee may
    define them through the reference (see module docstring).
    """
    reads: set[str] = set()

    def visit(node: ast.Expr) -> None:
        if isinstance(node, ast.VarRef):
            info = table.lookup(node.name)
            if info is None or not info.is_array:
                reads.add(node.name)
        elif isinstance(node, ast.Binary):
            visit(node.left)
            visit(node.right)
        elif isinstance(node, ast.Unary):
            visit(node.operand)
        elif isinstance(node, ast.ArrayRef):
            for index in node.indices:
                visit(index)
        elif isinstance(node, ast.FuncCall):
            for arg in node.args:
                if isinstance(arg, ast.VarRef):
                    continue  # by-reference: potential definition
                visit(arg)

    visit(expr)
    return reads


def _byref_defs(expr: ast.Expr, table) -> set[str]:
    """Scalars a call inside ``expr`` may define through a reference."""
    defs: set[str] = set()

    def visit(node: ast.Expr) -> None:
        if isinstance(node, ast.FuncCall):
            for arg in node.args:
                if isinstance(arg, ast.VarRef):
                    info = table.lookup(arg.name)
                    if info is None or not info.is_array:
                        defs.add(arg.name)
                else:
                    visit(arg)
        elif isinstance(node, ast.Binary):
            visit(node.left)
            visit(node.right)
        elif isinstance(node, ast.Unary):
            visit(node.operand)
        elif isinstance(node, ast.ArrayRef):
            for index in node.indices:
                visit(index)

    visit(expr)
    return defs


def _node_uses_defs(node, table) -> tuple[set[str], set[str]]:
    """(reads, definitions) of one CFG node, reads evaluated first."""
    from repro.cfg.graph import StmtKind

    uses: set[str] = set()
    defs: set[str] = set()
    stmt = node.stmt

    def read(expr: ast.Expr | None) -> None:
        if expr is not None:
            uses.update(_scalar_reads(expr, table))
            defs.update(_byref_defs(expr, table))

    if node.kind is StmtKind.ASSIGN and isinstance(stmt, ast.Assign):
        read(stmt.value)
        target = stmt.target
        if isinstance(target, ast.ArrayRef):
            for index in target.indices:
                read(index)
        elif isinstance(target, ast.VarRef):
            info = table.lookup(target.name)
            if info is None or not info.is_array:
                defs.add(target.name)
    elif node.kind in (
        StmtKind.IF,
        StmtKind.WHILE_TEST,
        StmtKind.AIF,
        StmtKind.CGOTO,
    ):
        read(node.cond)
    elif node.kind is StmtKind.DO_INIT and isinstance(stmt, ast.DoLoop):
        read(stmt.start)
        read(stmt.stop)
        read(stmt.step)
        defs.add(stmt.var)
        if node.trip_var:
            defs.add(node.trip_var)
    elif node.kind is StmtKind.CALL and isinstance(stmt, ast.CallStmt):
        for arg in stmt.args:
            if isinstance(arg, ast.VarRef):
                info = table.lookup(arg.name)
                if info is None or not info.is_array:
                    defs.add(arg.name)  # by reference
            else:
                read(arg)
    elif node.kind is StmtKind.PRINT and isinstance(stmt, ast.PrintStmt):
        for item in stmt.items:
            read(item)
    return uses, defs


def _lint_use_before_def(
    checked: CheckedProgram, proc: ast.Procedure, cfg
) -> list[Diagnostic]:
    table = checked.tables[proc.name]
    initial: set[str] = set(proc.params)
    initial.update(table.constants)
    if proc.kind is ast.ProcKind.FUNCTION:
        initial.add(proc.name)  # the return slot

    uses_of: dict[int, set[str]] = {}
    defs_of: dict[int, set[str]] = {}
    for node in cfg:
        uses_of[node.id], defs_of[node.id] = _node_uses_defs(node, table)

    # Forward may-be-defined fixpoint (union over predecessors).
    may_in: dict[int, set[str]] = {n: set() for n in cfg.nodes}
    may_out: dict[int, set[str]] = {n: set() for n in cfg.nodes}
    may_in[cfg.entry] = set(initial)
    worklist = list(cfg.nodes)
    while worklist:
        node = worklist.pop()
        incoming = set(may_in[node]) if node == cfg.entry else set()
        for pred in cfg.predecessors(node):
            incoming |= may_out[pred]
        out = incoming | defs_of[node]
        if incoming != may_in[node] or out != may_out[node]:
            may_in[node] = incoming
            may_out[node] = out
            worklist.extend(cfg.successors(node))

    findings: list[Diagnostic] = []
    reported: set[str] = set()
    for node_id in sorted(cfg.nodes):
        undefined = uses_of[node_id] - may_in[node_id] - reported
        for var in sorted(undefined):
            reported.add(var)  # one finding per variable per procedure
            findings.append(
                diag(
                    "REP301",
                    f"{var} is read but defined on no path from entry",
                    proc=proc.name,
                    node=node_id,
                    line=cfg.nodes[node_id].line,
                )
            )
    return findings


# ---------------------------------------------------------------------------
# REP302 — unreachable statements
# ---------------------------------------------------------------------------

_TERMINAL = (ast.Goto, ast.StopStmt, ast.ReturnStmt, ast.ArithmeticIf)


def _lint_unreachable(proc: ast.Procedure) -> list[Diagnostic]:
    findings: list[Diagnostic] = []

    def scan(body: list[ast.Stmt]) -> None:
        dead = False
        for stmt in body:
            if stmt.label is not None:
                dead = False  # a label makes the statement a GOTO target
            if dead:
                findings.append(
                    diag(
                        "REP302",
                        "statement can never execute (follows a jump "
                        "with no label to reach it)",
                        proc=proc.name,
                        line=stmt.line,
                    )
                )
                dead = False  # report the first dead statement of a run
            if isinstance(stmt, _TERMINAL):
                dead = True
            if isinstance(stmt, ast.IfBlock):
                for _, arm in stmt.arms:
                    scan(arm)
                scan(stmt.else_body)
            elif isinstance(stmt, (ast.DoLoop, ast.DoWhile)):
                scan(stmt.body)
            elif isinstance(stmt, ast.LogicalIf):
                pass  # the guarded statement is conditional, never dead

    scan(proc.body)
    return findings


# ---------------------------------------------------------------------------
# REP303 — DO index mutation
# ---------------------------------------------------------------------------


def _lint_do_index_mutation(proc: ast.Procedure) -> list[Diagnostic]:
    findings: list[Diagnostic] = []

    def scan(body: list[ast.Stmt], active: tuple[str, ...]) -> None:
        for stmt in body:
            if isinstance(stmt, ast.Assign):
                target = stmt.target
                if isinstance(target, ast.VarRef) and target.name in active:
                    findings.append(
                        diag(
                            "REP303",
                            f"DO index {target.name} is assigned inside "
                            "its loop",
                            proc=proc.name,
                            line=stmt.line,
                        )
                    )
            elif isinstance(stmt, ast.DoLoop):
                if stmt.var in active:
                    findings.append(
                        diag(
                            "REP303",
                            f"nested DO reuses active index {stmt.var}",
                            proc=proc.name,
                            line=stmt.line,
                        )
                    )
                scan(stmt.body, active + (stmt.var,))
            elif isinstance(stmt, ast.DoWhile):
                scan(stmt.body, active)
            elif isinstance(stmt, ast.IfBlock):
                for _, arm in stmt.arms:
                    scan(arm, active)
                scan(stmt.else_body, active)
            elif isinstance(stmt, ast.LogicalIf):
                scan([stmt.stmt], active)

    scan(proc.body, ())
    return findings


# ---------------------------------------------------------------------------
# REP304 / REP305 — hints
# ---------------------------------------------------------------------------


def _lint_missing_stop(proc: ast.Procedure) -> list[Diagnostic]:
    if proc.kind is not ast.ProcKind.PROGRAM:
        return []
    for stmt in proc.walk_statements():
        if isinstance(stmt, ast.StopStmt):
            return []
        if isinstance(stmt, ast.LogicalIf) and isinstance(
            stmt.stmt, ast.StopStmt
        ):
            return []
    return [
        diag(
            "REP304",
            "main program ends without a STOP statement",
            proc=proc.name,
            line=proc.line,
        )
    ]


def _has_loop_exit(body: list[ast.Stmt]) -> bool:
    """True when the body can leave the loop other than by completing."""
    for stmt in body:
        if isinstance(
            stmt,
            (ast.Goto, ast.ReturnStmt, ast.StopStmt, ast.ArithmeticIf,
             ast.ComputedGoto),
        ):
            return True
        if isinstance(stmt, ast.LogicalIf) and isinstance(
            stmt.stmt,
            (ast.Goto, ast.ReturnStmt, ast.StopStmt),
        ):
            return True
        if isinstance(stmt, ast.IfBlock):
            if any(_has_loop_exit(arm) for _, arm in stmt.arms):
                return True
            if _has_loop_exit(stmt.else_body):
                return True
        elif isinstance(stmt, (ast.DoLoop, ast.DoWhile)):
            if _has_loop_exit(stmt.body):
                return True
    return False


def _lint_nonconstant_trip(
    checked: CheckedProgram, proc: ast.Procedure
) -> list[Diagnostic]:
    findings: list[Diagnostic] = []
    for stmt in proc.walk_statements():
        if not isinstance(stmt, ast.DoLoop):
            continue
        if _has_loop_exit(stmt.body):
            continue  # Opt 3 does not apply anyway
        if _constant_trip(stmt, checked, proc.name) is None:
            findings.append(
                diag(
                    "REP305",
                    f"trip count of DO {stmt.var} is not a compile-time "
                    "constant; the loop keeps a batched counter "
                    "(counter-free Opt 3 disabled)",
                    proc=proc.name,
                    line=stmt.line,
                )
            )
    return findings
