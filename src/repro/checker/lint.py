"""Dataflow lints over minifort sources (REP3xx).

The linter runs on the checked AST and the statement-level CFGs.  In
the default ``lint_mode="dataflow"`` the path-sensitive findings come
from the worklist analyses of :mod:`repro.dataflow` (reaching
definitions, liveness, SCCP constants); ``lint_mode="syntactic"``
keeps the historical purely-syntactic implementations for one release
as an escape hatch.

* **REP301** (hint) — a scalar read that no path from the procedure
  entry can have defined.  The dataflow engine computes this from
  reaching definitions restricted to SCCP-*feasible* edges, so a
  definition under a constant-false guard no longer counts, and a
  scalar passed to a CALL only counts as defined when the callee's
  parameter summary says the position is writable (read-only callees
  used to suppress genuine findings).  A hint rather than a warning
  because minifort (unlike Fortran 77) guarantees
  zero-initialization, so relying on it is defined behavior — merely
  suspect;
* **REP302** — a statement that can never execute.  The dataflow mode
  reports every statement the CFG builder pruned as unreachable from
  the procedure entry (the syntactic mode only catches an unlabelled
  statement right after a jump);
* **REP303** — an assignment to a DO loop's index variable (or a
  nested DO reusing it) inside the loop body: Fortran-77 leaves the
  result undefined, and the interval analysis assumes the hidden trip
  counter is authoritative;
* **REP304** (hint) — the main program has no STOP statement;
* **REP305** (hint) — an exit-free DO loop whose trip count is not a
  compile-time constant: the counter-free half of Opt 3 silently does
  not apply, so the loop keeps a batched counter;
* **REP306** (hint, dataflow mode) — a scalar store no feasible path
  ever reads (liveness-dead) whose right-hand side provably cannot
  raise; exactly the stores the ``optimize=True`` codegen drops;
* **REP307** (hint, dataflow mode) — a branch whose condition SCCP
  proves constant on every feasible path, naming the taken arm;
  exactly the branches the ``optimize=True`` codegen folds;
* **REP308** (dataflow mode) — a loop no feasible edge ever leaves:
  once entered, the program can never terminate.

Hints are only produced with ``hints=True``; they describe missed
optimizations rather than likely bugs, and built-in workloads trip
them by design.
"""

from __future__ import annotations

from repro.checker.diagnostics import Diagnostic, diag
from repro.lang import ast
from repro.lang.symbols import CheckedProgram
from repro.profiling.placement import _constant_trip

#: Valid ``lint_mode=`` choices (``repro check --lint-mode``).
LINT_MODES = ("dataflow", "syntactic")


def lint_program(
    checked: CheckedProgram,
    cfgs,
    *,
    hints: bool = False,
    lint_mode: str = "dataflow",
) -> list[Diagnostic]:
    """All REP3xx findings for a checked program."""
    if lint_mode not in LINT_MODES:
        raise ValueError(
            f"unknown lint_mode {lint_mode!r}; expected one of {LINT_MODES}"
        )
    if lint_mode == "syntactic":
        return _lint_syntactic(checked, cfgs, hints=hints)
    return _lint_dataflow(checked, cfgs, hints=hints)


def _lint_syntactic(
    checked: CheckedProgram, cfgs, *, hints: bool = False
) -> list[Diagnostic]:
    """The historical syntactic lint battery (pre-dataflow)."""
    findings: list[Diagnostic] = []
    for name, proc in sorted(checked.unit.procedures.items()):
        findings.extend(_lint_unreachable(proc))
        findings.extend(_lint_do_index_mutation(proc))
        if hints:
            cfg = cfgs.get(name)
            if cfg is not None:
                findings.extend(_lint_use_before_def(checked, proc, cfg))
            findings.extend(_lint_missing_stop(proc))
            findings.extend(_lint_nonconstant_trip(checked, proc))
    return findings


def _lint_dataflow(
    checked: CheckedProgram, cfgs, *, hints: bool = False
) -> list[Diagnostic]:
    """The dataflow-engine lint battery (REP301/302/306/307/308)."""
    from repro.dataflow import analyze_procedure, param_summaries

    summaries = param_summaries(checked)
    findings: list[Diagnostic] = []
    for name, proc in sorted(checked.unit.procedures.items()):
        cfg = cfgs.get(name)
        df = None
        if cfg is not None:
            df = analyze_procedure(checked, name, cfg, summaries=summaries)
            findings.extend(_df_unreachable(proc, cfg))
            findings.extend(_df_infinite_loops(proc, cfg, df))
        else:
            findings.extend(_lint_unreachable(proc))
        findings.extend(_lint_do_index_mutation(proc))
        if hints:
            if df is not None:
                findings.extend(_df_use_before_def(proc, cfg, df))
                findings.extend(_df_constant_branches(proc, cfg, df))
                findings.extend(_df_dead_stores(checked, proc, cfg, df))
            findings.extend(_lint_missing_stop(proc))
            findings.extend(_lint_nonconstant_trip(checked, proc))
    return findings


# ---------------------------------------------------------------------------
# Dataflow-engine implementations
# ---------------------------------------------------------------------------


def _df_use_before_def(proc: ast.Procedure, cfg, df) -> list[Diagnostic]:
    """REP301 over reaching definitions on the feasible subgraph."""
    findings: list[Diagnostic] = []
    reported: set[str] = set()
    for node_id in sorted(cfg.nodes):
        state = df.reaching.in_of.get(node_id)
        if state is None:
            continue  # unreachable along feasible edges
        facts = df.facts[node_id]
        for var in sorted(facts.uses_rd):
            if var in state or var in reported:
                continue
            reported.add(var)  # one finding per variable per procedure
            findings.append(
                diag(
                    "REP301",
                    f"{var} is read but defined on no feasible path "
                    "from entry",
                    proc=proc.name,
                    node=node_id,
                    line=cfg.nodes[node_id].line,
                )
            )
    return findings


def _df_unreachable(proc: ast.Procedure, cfg) -> list[Diagnostic]:
    """REP302 from the CFG builder's pruned-statement record."""
    findings: list[Diagnostic] = []
    for line, text in getattr(cfg, "pruned", ()):
        detail = f": {text}" if text else ""
        findings.append(
            diag(
                "REP302",
                "statement can never execute (unreachable in the "
                f"control-flow graph){detail}",
                proc=proc.name,
                line=line,
            )
        )
    return findings


def _df_constant_branches(proc: ast.Procedure, cfg, df) -> list[Diagnostic]:
    """REP307: SCCP proves the branch one-way; name the taken arm."""
    findings: list[Diagnostic] = []
    for node_id in sorted(df.constants.forced):
        label = df.constants.forced[node_id]
        node = cfg.nodes.get(node_id)
        if node is None:
            continue
        findings.append(
            diag(
                "REP307",
                "branch condition is constant on every feasible path; "
                f"always takes the {label!r} arm",
                proc=proc.name,
                node=node_id,
                line=node.line,
            )
        )
    return findings


def _df_dead_stores(
    checked: CheckedProgram, proc: ast.Procedure, cfg, df
) -> list[Diagnostic]:
    """REP306: liveness-dead total stores (what codegen DCE drops)."""
    from repro.dataflow.optimize import plan_proc_optimizations

    opts = plan_proc_optimizations(checked, proc.name, cfg, df)
    findings: list[Diagnostic] = []
    for node_id in sorted(opts.dead_stores):
        node = cfg.nodes[node_id]
        target = node.stmt.target.name if node.stmt is not None else "?"
        findings.append(
            diag(
                "REP306",
                f"value stored to {target} is never read on any "
                "feasible path (dead store)",
                proc=proc.name,
                node=node_id,
                line=node.line,
            )
        )
    return findings


def _df_infinite_loops(proc: ast.Procedure, cfg, df) -> list[Diagnostic]:
    """REP308: a cycle of executable nodes with no feasible way out.

    Strongly connected components over the SCCP-feasible subgraph;
    a non-trivial SCC (or feasible self-loop) that no feasible edge
    leaves can never terminate once entered.  Structurally exit-free
    loops never reach the linter (the FCDG construction rejects them
    during compilation), so in practice every finding here is a loop
    whose only exits SCCP proved infeasible.
    """
    feasible = df.constants.feasible_edges
    executable = df.constants.executable
    succ: dict[int, list[int]] = {n: [] for n in executable}
    for edge in cfg.edges:
        if (
            edge.src in executable
            and edge.dst in executable
            and (edge.src, edge.label) in feasible
        ):
            succ[edge.src].append(edge.dst)

    # Iterative Tarjan SCC over the feasible subgraph.
    index: dict[int, int] = {}
    low: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    sccs: list[list[int]] = []
    counter = [0]

    def strongconnect(root: int) -> None:
        work = [(root, iter(succ[root]))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for child in it:
                if child not in index:
                    index[child] = low[child] = counter[0]
                    counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(succ[child])))
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(component)

    for node_id in sorted(succ):
        if node_id not in index:
            strongconnect(node_id)

    findings: list[Diagnostic] = []
    for component in sccs:
        members = set(component)
        cyclic = len(component) > 1 or any(
            child in members for child in succ[component[0]]
        )
        if not cyclic:
            continue
        if any(
            child not in members
            for member in component
            for child in succ[member]
        ):
            continue  # some feasible edge leaves the cycle
        where = min(
            (n for n in component if cfg.nodes[n].line is not None),
            key=lambda n: cfg.nodes[n].line,
            default=min(component),
        )
        findings.append(
            diag(
                "REP308",
                "loop has no feasible exit: once entered, the program "
                "can never terminate",
                proc=proc.name,
                node=where,
                line=cfg.nodes[where].line,
            )
        )
    return findings


# ---------------------------------------------------------------------------
# REP301 — use before any possible definition
# ---------------------------------------------------------------------------


def _scalar_reads(expr: ast.Expr, table) -> set[str]:
    """Scalar variable names read by an expression.

    Bare VarRef arguments of calls are *not* reads: a callee may
    define them through the reference (see module docstring).
    """
    reads: set[str] = set()

    def visit(node: ast.Expr) -> None:
        if isinstance(node, ast.VarRef):
            info = table.lookup(node.name)
            if info is None or not info.is_array:
                reads.add(node.name)
        elif isinstance(node, ast.Binary):
            visit(node.left)
            visit(node.right)
        elif isinstance(node, ast.Unary):
            visit(node.operand)
        elif isinstance(node, ast.ArrayRef):
            for index in node.indices:
                visit(index)
        elif isinstance(node, ast.FuncCall):
            for arg in node.args:
                if isinstance(arg, ast.VarRef):
                    continue  # by-reference: potential definition
                visit(arg)

    visit(expr)
    return reads


def _byref_defs(expr: ast.Expr, table) -> set[str]:
    """Scalars a call inside ``expr`` may define through a reference."""
    defs: set[str] = set()

    def visit(node: ast.Expr) -> None:
        if isinstance(node, ast.FuncCall):
            for arg in node.args:
                if isinstance(arg, ast.VarRef):
                    info = table.lookup(arg.name)
                    if info is None or not info.is_array:
                        defs.add(arg.name)
                else:
                    visit(arg)
        elif isinstance(node, ast.Binary):
            visit(node.left)
            visit(node.right)
        elif isinstance(node, ast.Unary):
            visit(node.operand)
        elif isinstance(node, ast.ArrayRef):
            for index in node.indices:
                visit(index)

    visit(expr)
    return defs


def _node_uses_defs(node, table) -> tuple[set[str], set[str]]:
    """(reads, definitions) of one CFG node, reads evaluated first."""
    from repro.cfg.graph import StmtKind

    uses: set[str] = set()
    defs: set[str] = set()
    stmt = node.stmt

    def read(expr: ast.Expr | None) -> None:
        if expr is not None:
            uses.update(_scalar_reads(expr, table))
            defs.update(_byref_defs(expr, table))

    if node.kind is StmtKind.ASSIGN and isinstance(stmt, ast.Assign):
        read(stmt.value)
        target = stmt.target
        if isinstance(target, ast.ArrayRef):
            for index in target.indices:
                read(index)
        elif isinstance(target, ast.VarRef):
            info = table.lookup(target.name)
            if info is None or not info.is_array:
                defs.add(target.name)
    elif node.kind in (
        StmtKind.IF,
        StmtKind.WHILE_TEST,
        StmtKind.AIF,
        StmtKind.CGOTO,
    ):
        read(node.cond)
    elif node.kind is StmtKind.DO_INIT and isinstance(stmt, ast.DoLoop):
        read(stmt.start)
        read(stmt.stop)
        read(stmt.step)
        defs.add(stmt.var)
        if node.trip_var:
            defs.add(node.trip_var)
    elif node.kind is StmtKind.CALL and isinstance(stmt, ast.CallStmt):
        for arg in stmt.args:
            if isinstance(arg, ast.VarRef):
                info = table.lookup(arg.name)
                if info is None or not info.is_array:
                    defs.add(arg.name)  # by reference
            else:
                read(arg)
    elif node.kind is StmtKind.PRINT and isinstance(stmt, ast.PrintStmt):
        for item in stmt.items:
            read(item)
    return uses, defs


def _lint_use_before_def(
    checked: CheckedProgram, proc: ast.Procedure, cfg
) -> list[Diagnostic]:
    table = checked.tables[proc.name]
    initial: set[str] = set(proc.params)
    initial.update(table.constants)
    if proc.kind is ast.ProcKind.FUNCTION:
        initial.add(proc.name)  # the return slot

    uses_of: dict[int, set[str]] = {}
    defs_of: dict[int, set[str]] = {}
    for node in cfg:
        uses_of[node.id], defs_of[node.id] = _node_uses_defs(node, table)

    # Forward may-be-defined fixpoint (union over predecessors).
    may_in: dict[int, set[str]] = {n: set() for n in cfg.nodes}
    may_out: dict[int, set[str]] = {n: set() for n in cfg.nodes}
    may_in[cfg.entry] = set(initial)
    worklist = list(cfg.nodes)
    while worklist:
        node = worklist.pop()
        incoming = set(may_in[node]) if node == cfg.entry else set()
        for pred in cfg.predecessors(node):
            incoming |= may_out[pred]
        out = incoming | defs_of[node]
        if incoming != may_in[node] or out != may_out[node]:
            may_in[node] = incoming
            may_out[node] = out
            worklist.extend(cfg.successors(node))

    findings: list[Diagnostic] = []
    reported: set[str] = set()
    for node_id in sorted(cfg.nodes):
        undefined = uses_of[node_id] - may_in[node_id] - reported
        for var in sorted(undefined):
            reported.add(var)  # one finding per variable per procedure
            findings.append(
                diag(
                    "REP301",
                    f"{var} is read but defined on no path from entry",
                    proc=proc.name,
                    node=node_id,
                    line=cfg.nodes[node_id].line,
                )
            )
    return findings


# ---------------------------------------------------------------------------
# REP302 — unreachable statements
# ---------------------------------------------------------------------------

_TERMINAL = (ast.Goto, ast.StopStmt, ast.ReturnStmt, ast.ArithmeticIf)


def _lint_unreachable(proc: ast.Procedure) -> list[Diagnostic]:
    findings: list[Diagnostic] = []

    def scan(body: list[ast.Stmt]) -> None:
        dead = False
        for stmt in body:
            if stmt.label is not None:
                dead = False  # a label makes the statement a GOTO target
            if dead:
                findings.append(
                    diag(
                        "REP302",
                        "statement can never execute (follows a jump "
                        "with no label to reach it)",
                        proc=proc.name,
                        line=stmt.line,
                    )
                )
                dead = False  # report the first dead statement of a run
            if isinstance(stmt, _TERMINAL):
                dead = True
            if isinstance(stmt, ast.IfBlock):
                for _, arm in stmt.arms:
                    scan(arm)
                scan(stmt.else_body)
            elif isinstance(stmt, (ast.DoLoop, ast.DoWhile)):
                scan(stmt.body)
            elif isinstance(stmt, ast.LogicalIf):
                pass  # the guarded statement is conditional, never dead

    scan(proc.body)
    return findings


# ---------------------------------------------------------------------------
# REP303 — DO index mutation
# ---------------------------------------------------------------------------


def _lint_do_index_mutation(proc: ast.Procedure) -> list[Diagnostic]:
    findings: list[Diagnostic] = []

    def scan(body: list[ast.Stmt], active: tuple[str, ...]) -> None:
        for stmt in body:
            if isinstance(stmt, ast.Assign):
                target = stmt.target
                if isinstance(target, ast.VarRef) and target.name in active:
                    findings.append(
                        diag(
                            "REP303",
                            f"DO index {target.name} is assigned inside "
                            "its loop",
                            proc=proc.name,
                            line=stmt.line,
                        )
                    )
            elif isinstance(stmt, ast.DoLoop):
                if stmt.var in active:
                    findings.append(
                        diag(
                            "REP303",
                            f"nested DO reuses active index {stmt.var}",
                            proc=proc.name,
                            line=stmt.line,
                        )
                    )
                scan(stmt.body, active + (stmt.var,))
            elif isinstance(stmt, ast.DoWhile):
                scan(stmt.body, active)
            elif isinstance(stmt, ast.IfBlock):
                for _, arm in stmt.arms:
                    scan(arm, active)
                scan(stmt.else_body, active)
            elif isinstance(stmt, ast.LogicalIf):
                scan([stmt.stmt], active)

    scan(proc.body, ())
    return findings


# ---------------------------------------------------------------------------
# REP304 / REP305 — hints
# ---------------------------------------------------------------------------


def _lint_missing_stop(proc: ast.Procedure) -> list[Diagnostic]:
    if proc.kind is not ast.ProcKind.PROGRAM:
        return []
    for stmt in proc.walk_statements():
        if isinstance(stmt, ast.StopStmt):
            return []
        if isinstance(stmt, ast.LogicalIf) and isinstance(
            stmt.stmt, ast.StopStmt
        ):
            return []
    return [
        diag(
            "REP304",
            "main program ends without a STOP statement",
            proc=proc.name,
            line=proc.line,
        )
    ]


def _has_loop_exit(body: list[ast.Stmt]) -> bool:
    """True when the body can leave the loop other than by completing."""
    for stmt in body:
        if isinstance(
            stmt,
            (ast.Goto, ast.ReturnStmt, ast.StopStmt, ast.ArithmeticIf,
             ast.ComputedGoto),
        ):
            return True
        if isinstance(stmt, ast.LogicalIf) and isinstance(
            stmt.stmt,
            (ast.Goto, ast.ReturnStmt, ast.StopStmt),
        ):
            return True
        if isinstance(stmt, ast.IfBlock):
            if any(_has_loop_exit(arm) for _, arm in stmt.arms):
                return True
            if _has_loop_exit(stmt.else_body):
                return True
        elif isinstance(stmt, (ast.DoLoop, ast.DoWhile)):
            if _has_loop_exit(stmt.body):
                return True
    return False


def _lint_nonconstant_trip(
    checked: CheckedProgram, proc: ast.Procedure
) -> list[Diagnostic]:
    findings: list[Diagnostic] = []
    for stmt in proc.walk_statements():
        if not isinstance(stmt, ast.DoLoop):
            continue
        if _has_loop_exit(stmt.body):
            continue  # Opt 3 does not apply anyway
        if _constant_trip(stmt, checked, proc.name) is None:
            findings.append(
                diag(
                    "REP305",
                    f"trip count of DO {stmt.var} is not a compile-time "
                    "constant; the loop keeps a batched counter "
                    "(counter-free Opt 3 disabled)",
                    proc=proc.name,
                    line=stmt.line,
                )
            )
    return findings
