"""Structural verification of compiled artifacts (REP1xx).

These checks re-establish, on a finished :class:`CompiledProgram`, the
Section-2 claims every downstream pass silently relies on:

* the CFG is well-formed and reducible (REP100/REP101);
* intervals are properly nested and every back edge targets its own
  header (REP102);
* preheaders and headers are in bijection and interval entries all
  route through the preheader (REP103);
* every POSTEXIT splits exactly one interval-exit edge (REP104);
* pseudo ``Z*`` edges exist exactly where the construction puts them —
  preheader→postexit and START→STOP — and nowhere a run could take
  them (REP105);
* the FCDG is rooted at START, acyclic, connected, covers every ECFG
  node except STOP, and its labels exist in the ECFG (REP106);
* the extended header mapping ``ehdr`` is total and consistent with
  the interval structure (REP107).

Each check reports findings instead of raising, so one broken artifact
yields a complete picture rather than the first exception.
"""

from __future__ import annotations

from repro.cfg.graph import CFGError, NodeType, StmtKind
from repro.cfg.reducibility import is_reducible
from repro.checker.diagnostics import Diagnostic, diag


def check_structure(program) -> list[Diagnostic]:
    """All REP1xx findings for a :class:`CompiledProgram`."""
    findings: list[Diagnostic] = []
    for name in program.cfgs:
        findings.extend(_check_procedure(program, name))
    return findings


def _check_procedure(program, name: str) -> list[Diagnostic]:
    cfg = program.cfgs[name]
    ecfg = program.ecfgs.get(name)
    fcdg = program.fcdgs.get(name)
    out: list[Diagnostic] = []

    try:
        cfg.validate()
    except CFGError as exc:
        out.append(diag("REP100", f"CFG invalid: {exc}", proc=name))
        return out  # everything downstream assumes a sane CFG
    out.extend(_check_edge_index(cfg, name))
    if out:
        return out

    if not is_reducible(cfg):
        out.append(
            diag("REP101", "CFG is irreducible after compilation", proc=name)
        )
        return out

    if ecfg is None:
        out.append(diag("REP100", "no ECFG was built", proc=name))
        return out
    try:
        ecfg.graph.validate()
    except CFGError as exc:
        out.append(diag("REP100", f"ECFG graph invalid: {exc}", proc=name))
        return out

    out.extend(_check_intervals(cfg, ecfg, name))
    out.extend(_check_preheaders(ecfg, name))
    out.extend(_check_postexits(ecfg, name))
    out.extend(_check_pseudo_edges(cfg, ecfg, name))
    out.extend(_check_ehdr(cfg, ecfg, name))
    if fcdg is None:
        out.append(diag("REP106", "no FCDG was built", proc=name))
    else:
        out.extend(_check_fcdg(ecfg, fcdg, name))
    return out


def _check_edge_index(cfg, name: str) -> list[Diagnostic]:
    """REP100: the edge list and the adjacency indexes must agree.

    ``validate()`` walks the indexes; a tampered (or badly re-hydrated)
    artifact can carry an edge list the indexes never saw, and vice
    versa.  Also catches edges whose endpoints are not nodes.
    """
    out: list[Diagnostic] = []
    for edge in cfg.edges:
        if edge.src not in cfg.nodes or edge.dst not in cfg.nodes:
            out.append(
                diag(
                    "REP100",
                    f"edge ({edge.src}, {edge.dst}, {edge.label!r}) "
                    "references a nonexistent node",
                    proc=name,
                )
            )
    listed = {(e.src, e.dst, e.label) for e in cfg.edges}
    indexed = {
        (e.src, e.dst, e.label)
        for node in cfg.nodes
        for e in cfg.out_edges(node)
    }
    for triple in sorted(listed ^ indexed):
        where = "edge list" if triple in listed else "adjacency index"
        out.append(
            diag(
                "REP100",
                f"edge {triple} appears only in the {where}",
                proc=name,
            )
        )
    return out


# ---------------------------------------------------------------------------
# REP102 — interval nesting
# ---------------------------------------------------------------------------


def _check_intervals(cfg, ecfg, name: str) -> list[Diagnostic]:
    intervals = ecfg.intervals
    out: list[Diagnostic] = []
    root = intervals.root

    if root != cfg.entry:
        out.append(
            diag(
                "REP102",
                f"outermost interval rooted at {root}, not entry {cfg.entry}",
                proc=name,
            )
        )
        return out

    headers = set(intervals.hdr_parent)
    for node in cfg.nodes:
        header = intervals.hdr.get(node)
        if header is None or header not in headers:
            out.append(
                diag(
                    "REP102",
                    f"HDR({node}) = {header} is not an interval header",
                    proc=name,
                    node=node,
                )
            )

    missing_root = set(cfg.nodes) - intervals.members.get(root, set())
    if missing_root:
        out.append(
            diag(
                "REP102",
                "outermost interval misses nodes "
                f"{sorted(missing_root)}",
                proc=name,
            )
        )

    for header in headers:
        if header == root:
            continue
        body = intervals.members.get(header, set())
        parent = intervals.hdr_parent.get(header)
        if header not in body:
            out.append(
                diag(
                    "REP102",
                    f"interval {header} does not contain its own header",
                    proc=name,
                    node=header,
                )
            )
        if parent not in headers:
            out.append(
                diag(
                    "REP102",
                    f"HDR_PARENT({header}) = {parent} is not a header",
                    proc=name,
                    node=header,
                )
            )
            continue
        parent_body = intervals.members.get(parent, set())
        if not body <= parent_body:
            out.append(
                diag(
                    "REP102",
                    f"interval {header} is not nested inside its parent "
                    f"{parent} (escaping nodes {sorted(body - parent_body)})",
                    proc=name,
                    node=header,
                )
            )
        back = intervals.loop_back_edges.get(header, [])
        if not back:
            out.append(
                diag(
                    "REP102",
                    f"loop header {header} has no back edge",
                    proc=name,
                    node=header,
                )
            )
        for edge in back:
            if edge.dst != header or edge.src not in body:
                out.append(
                    diag(
                        "REP102",
                        f"back edge ({edge.src}, {edge.dst}, {edge.label!r}) "
                        f"does not close the loop of header {header}",
                        proc=name,
                        node=header,
                    )
                )
    return out


# ---------------------------------------------------------------------------
# REP103 — preheader/header bijection
# ---------------------------------------------------------------------------


def _check_preheaders(ecfg, name: str) -> list[Diagnostic]:
    graph = ecfg.graph
    intervals = ecfg.intervals
    out: list[Diagnostic] = []

    loop_headers = set(intervals.loop_headers)
    mapped_headers = set(ecfg.preheader_of)
    for header in loop_headers - mapped_headers:
        out.append(
            diag(
                "REP103",
                f"loop header {header} has no preheader",
                proc=name,
                node=header,
            )
        )
    for header in mapped_headers - loop_headers:
        out.append(
            diag(
                "REP103",
                f"preheader mapped for non-loop-header {header}",
                proc=name,
                node=header,
            )
        )

    for header, preheader in ecfg.preheader_of.items():
        if ecfg.header_of.get(preheader) != header:
            out.append(
                diag(
                    "REP103",
                    f"preheader_of[{header}] = {preheader} but "
                    f"header_of[{preheader}] = "
                    f"{ecfg.header_of.get(preheader)}",
                    proc=name,
                    node=header,
                )
            )
            continue
        pre_node = graph.nodes.get(preheader)
        if pre_node is None or pre_node.type is not NodeType.PREHEADER:
            out.append(
                diag(
                    "REP103",
                    f"preheader {preheader} missing or not typed PREHEADER",
                    proc=name,
                    node=preheader,
                )
            )
            continue
        real_out = [e for e in graph.out_edges(preheader) if not e.is_pseudo]
        if len(real_out) != 1 or real_out[0].dst != header:
            out.append(
                diag(
                    "REP103",
                    f"preheader {preheader} must have exactly one real "
                    f"out-edge to its header {header}",
                    proc=name,
                    node=preheader,
                )
            )
        # Every other ECFG entry into the header must come from inside
        # the interval (the construction routed outside entries through
        # the preheader).
        for edge in graph.in_edges(header):
            if edge.src == preheader:
                continue
            if not _inside_interval(ecfg, edge.src, header):
                out.append(
                    diag(
                        "REP103",
                        f"interval entry ({edge.src} -> {header}) bypasses "
                        f"preheader {preheader}",
                        proc=name,
                        node=header,
                    )
                )
    for preheader, header in ecfg.header_of.items():
        if ecfg.preheader_of.get(header) != preheader:
            out.append(
                diag(
                    "REP103",
                    f"header_of[{preheader}] = {header} but "
                    f"preheader_of[{header}] = "
                    f"{ecfg.preheader_of.get(header)}",
                    proc=name,
                    node=preheader,
                )
            )
    return out


def _inside_interval(ecfg, node: int, header: int) -> bool:
    """True when an ECFG node sits (transitively) inside ``header``."""
    cursor = ecfg.ehdr.get(node)
    seen = set()
    while cursor and cursor not in seen:
        if cursor == header:
            return True
        seen.add(cursor)
        cursor = ecfg.intervals.hdr_parent.get(cursor, 0)
    return False


# ---------------------------------------------------------------------------
# REP104 — postexits split exactly one exit edge
# ---------------------------------------------------------------------------


def _check_postexits(ecfg, name: str) -> list[Diagnostic]:
    graph = ecfg.graph
    intervals = ecfg.intervals
    out: list[Diagnostic] = []

    postexit_nodes = {
        node.id for node in graph if node.type is NodeType.POSTEXIT
    }
    recorded = set(ecfg.postexit_source)
    for node in postexit_nodes - recorded:
        out.append(
            diag(
                "REP104",
                f"POSTEXIT node {node} has no recorded source edge",
                proc=name,
                node=node,
            )
        )
    for node in recorded - postexit_nodes:
        out.append(
            diag(
                "REP104",
                f"postexit_source entry {node} is not a POSTEXIT node",
                proc=name,
                node=node,
            )
        )

    for postexit in postexit_nodes & recorded:
        edge = ecfg.postexit_source[postexit]
        if edge.src not in intervals.hdr or edge.dst not in intervals.hdr:
            out.append(
                diag(
                    "REP104",
                    f"postexit {postexit} records unknown edge "
                    f"({edge.src}, {edge.dst}, {edge.label!r})",
                    proc=name,
                    node=postexit,
                )
            )
            continue
        src_hdr = intervals.hdr[edge.src]
        dst_hdr = intervals.hdr[edge.dst]
        if intervals.lca(src_hdr, dst_hdr) == src_hdr:
            out.append(
                diag(
                    "REP104",
                    f"postexit {postexit} records edge "
                    f"({edge.src}, {edge.dst}, {edge.label!r}) which is "
                    "not an interval exit",
                    proc=name,
                    node=postexit,
                )
            )
        real_in = [e for e in graph.in_edges(postexit) if not e.is_pseudo]
        pseudo_in = [e for e in graph.in_edges(postexit) if e.is_pseudo]
        if (
            len(real_in) != 1
            or real_in[0].src != edge.src
            or real_in[0].label != edge.label
        ):
            out.append(
                diag(
                    "REP104",
                    f"postexit {postexit} must have exactly one real "
                    f"in-edge, ({edge.src}, {edge.label!r})",
                    proc=name,
                    node=postexit,
                )
            )
        if len(pseudo_in) != 1:
            out.append(
                diag(
                    "REP104",
                    f"postexit {postexit} must have exactly one pseudo "
                    f"in-edge (found {len(pseudo_in)})",
                    proc=name,
                    node=postexit,
                )
            )
        outs = graph.out_edges(postexit)
        if len(outs) != 1 or outs[0].is_pseudo:
            out.append(
                diag(
                    "REP104",
                    f"postexit {postexit} must have exactly one real "
                    "out-edge",
                    proc=name,
                    node=postexit,
                )
            )
    return out


# ---------------------------------------------------------------------------
# REP105 — pseudo edges exist exactly where the construction puts them
# ---------------------------------------------------------------------------


def _check_pseudo_edges(cfg, ecfg, name: str) -> list[Diagnostic]:
    graph = ecfg.graph
    out: list[Diagnostic] = []

    for edge in cfg.edges:
        if edge.is_pseudo:
            out.append(
                diag(
                    "REP105",
                    f"original CFG contains pseudo edge "
                    f"({edge.src}, {edge.dst}, {edge.label!r})",
                    proc=name,
                    node=edge.src,
                )
            )

    start_pseudo = 0
    for edge in graph.edges:
        if not edge.is_pseudo:
            continue
        if edge.src == ecfg.start:
            start_pseudo += 1
            if edge.dst != ecfg.stop:
                out.append(
                    diag(
                        "REP105",
                        f"START pseudo edge targets {edge.dst}, not STOP",
                        proc=name,
                        node=edge.src,
                    )
                )
            continue
        header = ecfg.header_of.get(edge.src)
        if header is None:
            out.append(
                diag(
                    "REP105",
                    f"pseudo edge ({edge.src}, {edge.dst}, {edge.label!r}) "
                    "originates at a non-preheader node",
                    proc=name,
                    node=edge.src,
                )
            )
            continue
        dst_node = graph.nodes.get(edge.dst)
        if dst_node is None or dst_node.type is not NodeType.POSTEXIT:
            out.append(
                diag(
                    "REP105",
                    f"preheader pseudo edge ({edge.src}, {edge.dst}, "
                    f"{edge.label!r}) does not target a POSTEXIT",
                    proc=name,
                    node=edge.src,
                )
            )
            continue
        source_edge = ecfg.postexit_source.get(edge.dst)
        if source_edge is not None:
            src_hdr = ecfg.intervals.hdr.get(source_edge.src)
            if src_hdr != header:
                out.append(
                    diag(
                        "REP105",
                        f"pseudo edge links preheader of {header} to a "
                        f"postexit of interval {src_hdr}",
                        proc=name,
                        node=edge.src,
                    )
                )
    if start_pseudo != 1:
        out.append(
            diag(
                "REP105",
                "exactly one START->STOP pseudo edge required "
                f"(found {start_pseudo})",
                proc=name,
                node=ecfg.start,
            )
        )
    return out


# ---------------------------------------------------------------------------
# REP106 — FCDG rootedness / acyclicity / connectivity
# ---------------------------------------------------------------------------


def _check_fcdg(ecfg, fcdg, name: str) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    graph = ecfg.graph
    root = fcdg.root
    expected = set(graph.nodes) - {ecfg.stop}

    # One pass over the edge list feeds every check below: node
    # coverage, index agreement, the degrees for Kahn, and label
    # sanity (a control condition (u, l) must be a real out-label of
    # u in the ECFG, or one of its pseudo labels).
    present = {root}
    from_edges: set[tuple[int, str, int]] = set()
    successors: dict[int, list[int]] = {}
    indegree: dict[int, int] = {}
    label_cache: dict[int, set[str]] = {}
    label_diags: list[Diagnostic] = []
    for edge in fcdg.edges:
        src, dst, label = edge.src, edge.dst, edge.label
        present.add(src)
        present.add(dst)
        from_edges.add((src, label, dst))
        successors.setdefault(src, []).append(dst)
        indegree[dst] = indegree.get(dst, 0) + 1
        if src in graph.nodes:  # unknown nodes get their own REP106
            labels = label_cache.get(src)
            if labels is None:
                labels = {e.label for e in graph.out_edges(src)}
                label_cache[src] = labels
            if label not in labels:
                label_diags.append(
                    diag(
                        "REP106",
                        f"FCDG condition ({src}, {label!r}) is not "
                        "an out-label of its node in the ECFG",
                        proc=name,
                        node=src,
                    )
                )
    for node in present:
        indegree.setdefault(node, 0)
    missing = expected - present
    extra = present - expected
    if missing:
        out.append(
            diag(
                "REP106",
                f"FCDG misses ECFG nodes {sorted(missing)}",
                proc=name,
            )
        )
    if extra:
        out.append(
            diag(
                "REP106",
                f"FCDG contains unknown nodes {sorted(extra)}",
                proc=name,
            )
        )

    # The node list / child / parent tables must agree with the edges.
    if set(fcdg.nodes) != present | {root}:
        out.append(
            diag(
                "REP106",
                "FCDG node index disagrees with its edge list",
                proc=name,
            )
        )
    # Walk the child index directly — the point is to compare the
    # index itself against the edge list, and ``all_children`` copies.
    from_children = {
        (node, label, child)
        for node, by_label in fcdg._children.items()
        for label, kids in by_label.items()
        for child in kids
    }
    if from_edges != from_children:
        out.append(
            diag(
                "REP106",
                "FCDG child index disagrees with its edge list",
                proc=name,
            )
        )

    if indegree.get(root, 0):
        out.append(
            diag(
                "REP106",
                f"FCDG root {root} has incoming edges",
                proc=name,
                node=root,
            )
        )
    for node in sorted(expected & present):
        if node != root and indegree.get(node, 0) == 0:
            out.append(
                diag(
                    "REP106",
                    f"FCDG node {node} is unrooted (no parents)",
                    proc=name,
                    node=node,
                )
            )

    # Acyclicity (Kahn) and connectivity from the root.
    ready = [n for n, deg in indegree.items() if deg == 0]
    seen = 0
    degrees = dict(indegree)
    while ready:
        node = ready.pop()
        seen += 1
        for child in successors.get(node, ()):
            degrees[child] -= 1
            if degrees[child] == 0:
                ready.append(child)
    if seen != len(indegree):
        cyclic = sorted(n for n, d in degrees.items() if d > 0)
        out.append(
            diag(
                "REP106",
                f"FCDG contains a cycle through {cyclic}",
                proc=name,
            )
        )

    reachable = set()
    stack = [root]
    while stack:
        node = stack.pop()
        if node in reachable:
            continue
        reachable.add(node)
        stack.extend(successors.get(node, ()))
    unreachable = sorted((expected & present) - reachable)
    if unreachable:
        out.append(
            diag(
                "REP106",
                f"FCDG nodes unreachable from START: {unreachable}",
                proc=name,
            )
        )

    out.extend(label_diags)
    return out


# ---------------------------------------------------------------------------
# REP107 — ehdr totality / consistency
# ---------------------------------------------------------------------------


def _check_ehdr(cfg, ecfg, name: str) -> list[Diagnostic]:
    intervals = ecfg.intervals
    out: list[Diagnostic] = []
    headers = set(intervals.hdr_parent)
    for node in ecfg.graph.nodes:
        header = ecfg.ehdr.get(node)
        if header is None:
            out.append(
                diag(
                    "REP107",
                    f"ECFG node {node} has no ehdr entry",
                    proc=name,
                    node=node,
                )
            )
            continue
        if header not in headers:
            out.append(
                diag(
                    "REP107",
                    f"ehdr[{node}] = {header} is not an interval header",
                    proc=name,
                    node=node,
                )
            )
            continue
        if node in cfg.nodes and intervals.hdr.get(node) != header:
            out.append(
                diag(
                    "REP107",
                    f"ehdr[{node}] = {header} disagrees with "
                    f"HDR({node}) = {intervals.hdr.get(node)}",
                    proc=name,
                    node=node,
                )
            )
    return out
