"""Artifact verifier, counter-plan checker and minifort linter.

The checker is the framework's reproducibility gate: every structural
claim Section 2 makes about the compiled artifacts (reducibility,
interval nesting, the preheader/postexit pseudo structure, FCDG
shape) and every soundness property of the Section-3 counter plans
(flow conservation of the Opt-2 sum constraints, the Opt-3 no-exit
precondition, symbolic reconstructibility of all ``TOTAL_FREQ``) is
re-established on demand and reported through a diagnostics engine
with stable ``REPnnn`` error codes.

Entry points:

* :func:`check_source` — compile + verify + lint one source text;
* :func:`verify_program` — verify already-compiled artifacts (used by
  the batch cache on disk hits and by ``pipeline.compile_source``'s
  ``verify=`` flag);
* :func:`lint_program` — the REP3xx dataflow lints alone;
* ``repro check`` — the CLI surface over all of the above.
"""

from repro.checker.diagnostics import (
    CODES,
    Diagnostic,
    DiagnosticReport,
    Severity,
    diag,
)
from repro.checker.lint import LINT_MODES, lint_program
from repro.checker.plans import check_program_plan
from repro.checker.slots import (
    audit_bump_sites,
    check_codegen_bumps,
    check_slot_tables,
)
from repro.checker.structure import check_structure
from repro.checker.verify import check_source, verify_program

__all__ = [
    "CODES",
    "Diagnostic",
    "DiagnosticReport",
    "Severity",
    "diag",
    "audit_bump_sites",
    "check_codegen_bumps",
    "check_program_plan",
    "check_slot_tables",
    "check_source",
    "check_structure",
    "LINT_MODES",
    "lint_program",
    "verify_program",
]
