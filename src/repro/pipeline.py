"""High-level façade over the whole framework.

Typical use::

    from repro import pipeline

    program = pipeline.compile_source(SOURCE)
    profile, stats = pipeline.profile_program(program, runs=[{}, {}])
    analysis = pipeline.analyze(program, profile, SCALAR_MACHINE)
    print(analysis.total_time, analysis.total_std_dev)
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro.analysis import ProgramAnalysis, analyze_program
from repro.analysis.interprocedural import LoopVarianceSpec
from repro.callgraph import CallGraph, build_call_graph
from repro.cdg import FCDG, build_fcdg
from repro.cfg.builder import build_program_cfgs
from repro.cfg.graph import ControlFlowGraph
from repro.cfg.reducibility import is_reducible, split_nodes
from repro.costs.model import MachineModel, SCALAR_MACHINE
from repro.ecfg import ExtendedCFG, build_ecfg
from repro.codegen import codegen_backend_for
from repro.fastexec import LoweringError, backend_for
from repro.interp import ExecutionHooks, Interpreter, RunResult
from repro.lang.parser import parse_program
from repro.lang.symbols import CheckedProgram, check_program
from repro.obs import metrics, span
from repro.paths import (
    PathExecutor,
    ProgramPathPlan,
    path_program_plan as _build_path_plan,
    reconstruct_path_profile,
)
from repro.profiling import (
    PlanExecutor,
    ProgramPlan,
    ProgramProfile,
    naive_plan,
    oracle_profile,
    reconstruct_profile,
    smart_plan,
)
from repro.profiling.runtime import HookChain, LoopMomentRecorder


@dataclass
class CompiledProgram:
    """Everything derived statically from one source file."""

    source: str
    checked: CheckedProgram
    cfgs: dict[str, ControlFlowGraph]
    ecfgs: dict[str, ExtendedCFG]
    fcdgs: dict[str, FCDG]
    call_graph: CallGraph
    #: Nodes cloned per procedure to make irreducible CFGs reducible.
    splits: dict[str, int] = field(default_factory=dict)

    @property
    def main_name(self) -> str:
        return self.checked.unit.main.name

    def artifacts(self) -> dict[str, tuple[ExtendedCFG, FCDG]]:
        return {name: (self.ecfgs[name], self.fcdgs[name]) for name in self.cfgs}


def compile_source(source: str, *, verify: bool = False) -> CompiledProgram:
    """Parse, check and build all graphs for a minifort program.

    Irreducible CFGs (the paper assumes reducibility) are made
    reducible by node splitting, as the paper prescribes.  With
    ``verify=True`` the artifact verifier re-checks every Section-2
    structural invariant on the result and raises
    :class:`repro.errors.VerificationError` if any is broken.
    """
    started = time.perf_counter()
    with span("compile") as compile_span:
        with span("compile.parse"):
            checked = check_program(parse_program(source))
        with span("compile.cfg"):
            cfgs = build_program_cfgs(checked)
            splits: dict[str, int] = {}
            for name, cfg in cfgs.items():
                if not is_reducible(cfg):
                    splits[name] = split_nodes(cfg)
        with span("compile.ecfg"):
            ecfgs = {name: build_ecfg(cfg) for name, cfg in cfgs.items()}
        with span("compile.fcdg"):
            fcdgs = {name: build_fcdg(ecfg) for name, ecfg in ecfgs.items()}
        with span("compile.callgraph"):
            call_graph = build_call_graph(checked)
        program = CompiledProgram(
            source=source,
            checked=checked,
            cfgs=cfgs,
            ecfgs=ecfgs,
            fcdgs=fcdgs,
            call_graph=call_graph,
            splits=splits,
        )
        compile_span.set_attr(procedures=len(cfgs))
        if verify:
            verify_compiled(program)
    metrics.counter(
        "repro_compile_total", "Programs compiled end to end."
    ).inc()
    metrics.histogram(
        "repro_compile_seconds", "compile_source latency in seconds."
    ).observe(time.perf_counter() - started)
    return program


def verify_compiled(program: CompiledProgram, plan=None) -> None:
    """Run the artifact verifier; raise on any invariant violation."""
    from repro.checker import verify_program
    from repro.errors import VerificationError

    report = verify_program(program, plan)
    if report.errors:
        raise VerificationError(report)


#: Valid ``backend=`` choices for :func:`run_program`.
BACKENDS = ("auto", "codegen", "threaded", "reference")


def _fallback(reason: str) -> None:
    metrics.counter(
        "repro_backend_fallbacks_total",
        "Runs that fell back to a slower backend.",
        labels=("reason",),
    ).inc(reason=reason)


def _select_backend(program, hooks, backend: str, *, optimize: bool = False):
    """The engine to run with: ``(name, backend-or-None)``.

    ``auto`` (the default) prefers the codegen backend, then the
    threaded backend, then the reference interpreter, stepping down
    whenever the run is not expressible in the faster engine — hooks
    other than a plain :class:`PlanExecutor` (chained hooks,
    loop-moment recording) or a program the lowering pass rejects —
    recording each step down in
    ``repro_backend_fallbacks_total{reason}``.  Explicit names force
    one engine; the ``REPRO_BACKEND`` environment variable overrides
    ``auto`` only.

    ``optimize=True`` asks the codegen backend to fold
    dataflow-proven constant branches and drop dead stores before
    emission.  Results are bit-identical either way, so engines that
    cannot optimize (threaded, reference) are still valid fallbacks.
    """
    if backend == "auto":
        env_choice = os.environ.get("REPRO_BACKEND", "")
        if env_choice in ("codegen", "threaded", "reference"):
            backend = env_choice
    if backend == "reference":
        return "reference", None
    if backend not in ("auto", "codegen", "threaded"):
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    if hooks is not None and type(hooks) not in (PlanExecutor, PathExecutor):
        if backend != "auto":
            raise LoweringError(
                f"{backend} backend cannot drive "
                f"{type(hooks).__name__} hooks; use backend='reference'"
            )
        _fallback("hooks")
        return "reference", None
    if backend in ("auto", "codegen"):
        engine = codegen_backend_for(program, optimize=optimize)
        try:
            engine.ensure_lowered()
            return "codegen", engine
        except LoweringError:
            if backend == "codegen":
                raise
            _fallback("lowering")
    threaded = backend_for(program)
    try:
        threaded.ensure_lowered()
    except LoweringError:
        if backend == "threaded":
            raise
        _fallback("lowering")
        return "reference", None
    return "threaded", threaded


def run_program(
    program: CompiledProgram,
    *,
    inputs: tuple[float, ...] = (),
    seed: int = 0,
    model: MachineModel | None = None,
    hooks: ExecutionHooks | None = None,
    max_steps: int = 10_000_000,
    backend: str = "auto",
    optimize: bool = False,
) -> RunResult:
    """Execute the program once.

    ``backend`` selects the execution engine: ``"auto"`` (codegen when
    possible, then threaded, then reference — see
    :func:`_select_backend`), ``"codegen"``, ``"threaded"`` or
    ``"reference"``.  All engines produce bit-identical results.
    ``optimize=True`` lets the codegen backend fold constant branches
    and drop dead stores (still bit-identical; a no-op for the other
    engines).
    """
    chosen, engine = _select_backend(program, hooks, backend, optimize=optimize)
    metrics.counter(
        "repro_runs_total",
        "Program executions by backend.",
        labels=("backend",),
    ).inc(backend=chosen)
    if engine is not None:
        return engine.run(
            model=model,
            hooks=hooks,
            seed=seed,
            inputs=inputs,
            max_steps=max_steps,
        )
    interpreter = Interpreter(
        program.checked,
        program.cfgs,
        model=model,
        hooks=hooks,
        seed=seed,
        inputs=inputs,
        max_steps=max_steps,
    )
    return interpreter.run()


def smart_program_plan(
    program: CompiledProgram,
    *,
    enable_drops: bool = True,
    enable_do_batch: bool = True,
) -> ProgramPlan:
    """The optimized counter plan for every procedure."""
    with span("plan.smart"):
        plan = ProgramPlan(
            kind="smart",
            plans={
                name: smart_plan(
                    program.checked,
                    program.cfgs[name],
                    program.fcdgs[name],
                    enable_drops=enable_drops,
                    enable_do_batch=enable_do_batch,
                )
                for name in program.cfgs
            },
        )
    metrics.counter(
        "repro_plan_builds_total", "Counter plans built.", labels=("kind",)
    ).inc(kind="smart")
    return plan


def naive_program_plan(
    program: CompiledProgram, *, straightline_do_opt: bool = True
) -> ProgramPlan:
    """The naive per-basic-block counter plan for every procedure."""
    with span("plan.naive"):
        plan = ProgramPlan(
            kind="naive",
            plans={
                name: naive_plan(
                    program.checked,
                    program.cfgs[name],
                    straightline_do_opt=straightline_do_opt,
                )
                for name in program.cfgs
            },
        )
    metrics.counter(
        "repro_plan_builds_total", "Counter plans built.", labels=("kind",)
    ).inc(kind="naive")
    return plan


def paths_program_plan(program: CompiledProgram) -> ProgramPathPlan:
    """The Ball–Larus path plan for every procedure (``mode="paths"``)."""
    with span("plan.paths", attrs={"procedures": len(program.cfgs)}):
        plan = _build_path_plan(program)
    metrics.counter(
        "repro_plan_builds_total", "Counter plans built.", labels=("kind",)
    ).inc(kind="paths")
    return plan


@dataclass
class ProfileStats:
    """What profiling cost, summed over the profiled runs.

    ``counters`` is the number of counter slots in counter mode and
    the number of static instrumentation sites (non-zero increments,
    flush bumps/resets, EXIT flushes) in path mode;
    ``counter_updates`` counts dynamic register/counter updates in
    both modes, so the two are directly comparable (Section 3.3).
    """

    runs: int = 0
    counters: int = 0
    counter_updates: int = 0
    base_cost: float = 0.0
    counter_cost: float = 0.0


def profile_program(
    program: CompiledProgram,
    runs: list[dict] | int = 1,
    *,
    plan: ProgramPlan | ProgramPathPlan | None = None,
    model: MachineModel | None = None,
    record_loop_moments: bool = False,
    max_steps: int = 10_000_000,
    backend: str = "auto",
    optimize: bool = False,
    mode: str = "counters",
) -> tuple[ProgramProfile, ProfileStats]:
    """Profile the program over one or more runs.

    ``runs`` is either a run count or a list of per-run keyword dicts
    (``inputs=...``, ``seed=...``).  With the default ``plan=None``
    the optimized plan is built and executed; the returned profile is
    *reconstructed from its counters* — exactly what a production
    deployment of the paper's scheme would see.  ``backend`` selects
    the execution engine per :func:`run_program`; loop-moment
    recording chains hooks, which only the reference interpreter
    drives, so ``auto`` falls back for those runs.

    ``mode="paths"`` profiles with Ball–Larus path registers instead
    of counters (``plan`` must then be a
    :class:`repro.paths.ProgramPathPlan`, or ``None`` to build one);
    the profile is reconstructed from the recorded path counts and is
    bit-for-bit identical to the counter-based one on runs that
    terminate normally.
    """
    if mode not in ("counters", "paths"):
        raise ValueError(
            f"unknown profiling mode {mode!r}; expected 'counters' or 'paths'"
        )
    if isinstance(runs, int):
        run_specs = [{"seed": i} for i in range(runs)]
    else:
        run_specs = runs
    executor: PlanExecutor | PathExecutor
    if mode == "paths":
        if plan is None:
            plan = paths_program_plan(program)
        elif getattr(plan, "kind", None) != "paths":
            raise ValueError(
                "mode='paths' requires a path plan; got "
                f"{getattr(plan, 'kind', type(plan).__name__)!r}"
            )
        executor = PathExecutor(plan)
        n_static = plan.n_sites
    else:
        if plan is None:
            plan = smart_program_plan(program)
        elif getattr(plan, "kind", None) == "paths":
            raise ValueError("mode='counters' cannot execute a path plan")
        executor = PlanExecutor(plan)
        n_static = plan.n_counters
    recorder = (
        LoopMomentRecorder(program.ecfgs) if record_loop_moments else None
    )
    hooks: ExecutionHooks = executor
    if recorder is not None:
        hooks = HookChain(executor, recorder)

    stats = ProfileStats(runs=len(run_specs), counters=n_static)
    started = time.perf_counter()
    with span(
        "profile",
        attrs={"runs": len(run_specs), "plan": plan.kind, "mode": mode},
    ):
        for spec in run_specs:
            with span("profile.run", attrs={"seed": spec.get("seed", 0)}):
                result = run_program(
                    program,
                    model=model,
                    hooks=hooks,
                    max_steps=max_steps,
                    backend=backend,
                    optimize=optimize,
                    **spec,
                )
            if mode == "paths":
                # Settle frames a STOP halt left live.  The fused
                # backends settle their own state, leaving this a
                # no-op on their runs.
                executor.finalize_run()
            stats.base_cost += result.total_cost
            stats.counter_cost += result.counter_cost
        stats.counter_updates = executor.updates

        if mode == "paths":
            with span("profile.paths.reconstruct"):
                profile = reconstruct_path_profile(
                    program, plan, executor, runs=len(run_specs)
                )
        else:
            with span("profile.reconstruct"):
                profile = reconstruct_profile(
                    plan, executor, runs=len(run_specs)
                )
    metrics.counter(
        "repro_profile_runs_total", "Profiled program executions."
    ).inc(len(run_specs))
    if mode == "paths":
        metrics.counter(
            "repro_path_profile_runs_total",
            "Path-mode profiled program executions.",
        ).inc(len(run_specs))
    metrics.histogram(
        "repro_profile_seconds", "profile_program latency in seconds."
    ).observe(time.perf_counter() - started)
    if recorder is not None:
        for name in program.cfgs:
            proc = profile.proc(name)
            proc.loop_sumsq = dict(recorder.sumsq.get(name, {}))
            proc.loop_entries = dict(recorder.entries.get(name, {}))
    return profile, stats


def profile_batch(
    items,
    runs: list[dict] | int = 1,
    *,
    plan: str = "smart",
    model: MachineModel | None = None,
    mode: str = "auto",
    jobs: int | None = None,
    cache=None,
    loop_variance: str = "zero",
    max_steps: int = 10_000_000,
    verify: bool = False,
    backend: str = "auto",
    profile_mode: str = "counters",
):
    """Profile many programs, with cached static analysis.

    ``items`` may mix plain source strings, ``(id, source)`` pairs and
    :class:`repro.batch.BatchItem` instances; ``runs`` (a count or a
    list of run-spec dicts) applies to every non-``BatchItem`` entry.
    ``cache`` is a directory path or :class:`repro.batch.ArtifactCache`
    (``None`` keeps the cache in memory); ``mode`` is ``"serial"``,
    ``"process"`` or ``"auto"``; ``verify=True`` runs the artifact
    verifier on every item's artifacts before profiling (failures are
    isolated per item, stage ``"verify"``).  ``profile_mode`` selects
    counter or Ball–Larus path profiling per
    :func:`profile_program`.  Returns a
    :class:`repro.batch.BatchReport` with results in item order and
    per-item error isolation.
    """
    from repro.batch import BatchItem, run_batch

    if isinstance(runs, int):
        run_specs = tuple({"seed": i} for i in range(runs))
    else:
        run_specs = tuple(dict(spec) for spec in runs)
    normalized: list[BatchItem] = []
    for i, item in enumerate(items):
        if isinstance(item, BatchItem):
            normalized.append(item)
        elif isinstance(item, str):
            normalized.append(
                BatchItem(id=f"program-{i}", source=item, runs=run_specs)
            )
        else:
            item_id, source = item
            normalized.append(
                BatchItem(id=str(item_id), source=source, runs=run_specs)
            )
    return run_batch(
        normalized,
        plan=plan,
        model=model,
        mode=mode,
        jobs=jobs,
        cache=cache,
        loop_variance=loop_variance,
        max_steps=max_steps,
        verify=verify,
        backend=backend,
        profile_mode=profile_mode,
    )


def oracle_program_profile(
    program: CompiledProgram,
    runs: list[dict] | int = 1,
    *,
    max_steps: int = 10_000_000,
) -> ProgramProfile:
    """Exact accumulated profile from interpreter ground truth."""
    if isinstance(runs, int):
        run_specs = [{"seed": i} for i in range(runs)]
    else:
        run_specs = runs
    total = ProgramProfile()
    for spec in run_specs:
        result = run_program(program, max_steps=max_steps, **spec)
        total.merge(oracle_profile(result, program.ecfgs))
    return total


def analyze(
    program: CompiledProgram,
    profile: ProgramProfile,
    model: MachineModel = SCALAR_MACHINE,
    *,
    loop_variance: LoopVarianceSpec = "zero",
    estimator=None,
) -> ProgramAnalysis:
    """Run the TIME/VAR analysis against a profile."""
    with span("analyze"):
        return analyze_program(
            program.checked,
            program.cfgs,
            profile,
            model,
            loop_variance=loop_variance,
            artifacts=program.artifacts(),
            estimator=estimator,
        )


def estimate(
    source: str,
    runs: list[dict] | int = 1,
    model: MachineModel = SCALAR_MACHINE,
    *,
    loop_variance: LoopVarianceSpec = "zero",
) -> ProgramAnalysis:
    """One-shot convenience: compile, profile (smart plan), analyze."""
    program = compile_source(source)
    record = loop_variance == "profiled"
    profile, _ = profile_program(
        program, runs, record_loop_moments=record
    )
    return analyze(program, profile, model, loop_variance=loop_variance)
