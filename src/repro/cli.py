"""Command-line interface: ``python -m repro <command> ...``.

Commands mirror the library pipeline:

* ``compile``  — parse and build the graphs; print CFG/ECFG/FCDG or DOT;
* ``run``      — execute a program, print its output and cost;
* ``profile``  — execute under the optimized counter plan; print stats
  and optionally accumulate into a profile database (PTRAN style);
* ``analyze``  — profile (or load a database entry) and print TIME /
  VAR / STD_DEV per procedure, optionally the annotated Figure-3 FCDG;
* ``batch``    — profile many programs (files and/or generated
  workloads) through the cached batch engine, serially or on a
  process pool, with per-program error isolation;
* ``check``    — run the artifact verifier and minifort linter over
  files, built-in workloads and/or generated programs; exit non-zero
  if anything at warning level or above is found;
* ``serve``    — run the asyncio profiling service: micro-batched
  compile/profile endpoints, a shared profile database accumulating
  ``TOTAL_FREQ`` ingests, bounded-queue backpressure, graceful drain;
* ``call``     — the client: health/metrics probes, remote compile
  and profile, client-side profiling with delta ingest, and
  Definition-3 frequency/variance queries;
* ``trace``    — run one compile → check → profile → analyze pass
  under the tracing subsystem and print a per-stage latency tree
  (self and total times), optionally dumping raw spans as JSONL or
  as a Chrome trace-event file (``--chrome-trace``) for Perfetto;
* ``validate`` — the wall-clock observatory: measure programs (or an
  arbitrary external command) under ``perf_counter_ns``, fit the
  cost model against the measurements (``--calibrate``), and score
  calibrated TIME/VAR predictions against measured means and
  confidence intervals (``--calibration``).
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from pathlib import Path

from repro import (
    BACKENDS,
    OPTIMIZING_MACHINE,
    SCALAR_MACHINE,
    analyze,
    compile_source,
    naive_program_plan,
    profile_program,
    run_program,
    smart_program_plan,
)
from repro.analysis.distributions import LoopDistribution
from repro.cfg.dot import cfg_to_dot, fcdg_to_dot
from repro.errors import ReproError
from repro.profiling.database import ProfileDatabase
from repro.report import (
    format_table,
    render_cfg,
    render_fcdg,
    render_profile_report,
)

_MODELS = {
    "scalar": SCALAR_MACHINE,
    "optimizing": OPTIMIZING_MACHINE,
}

_LOOP_VARIANCE = {
    "zero": "zero",
    "profiled": "profiled",
    "poisson": LoopDistribution.POISSON,
    "geometric": LoopDistribution.GEOMETRIC,
    "uniform": LoopDistribution.UNIFORM,
}


def _parse_inputs(text: str | None) -> tuple[float, ...]:
    if not text:
        return ()
    return tuple(float(part) for part in text.split(",") if part.strip())


def _load(path: str):
    return compile_source(Path(path).read_text())


def _cmd_compile(args) -> int:
    program = _load(args.file)
    names = [args.proc] if args.proc else sorted(program.cfgs)
    for name in names:
        if name not in program.cfgs:
            raise ReproError(f"no procedure named {name}")
        if args.show == "cfg":
            print(render_cfg(program.cfgs[name]))
        elif args.show == "ecfg":
            print(render_cfg(program.ecfgs[name].graph, title=f"ECFG of {name}"))
        elif args.show == "fcdg":
            fcdg = program.fcdgs[name]
            print(f"FCDG of {name} ({len(fcdg.nodes)} nodes):")
            for node in fcdg.topological_order():
                text = program.ecfgs[name].graph.nodes[node].text
                print(f"{node:>4} {text}")
                for label, child in fcdg.all_children(node):
                    print(f"       --{label}--> {child}")
        elif args.show == "dot-cfg":
            print(cfg_to_dot(program.cfgs[name]))
        elif args.show == "dot-fcdg":
            print(fcdg_to_dot(program.fcdgs[name]))
        print()
    if program.splits:
        print(f"node splitting applied: {program.splits}", file=sys.stderr)
    return 0


def _cmd_run(args) -> int:
    program = _load(args.file)
    result = run_program(
        program,
        inputs=_parse_inputs(args.inputs),
        seed=args.seed,
        model=_MODELS[args.model],
        max_steps=args.max_steps,
        backend=args.backend,
        optimize=args.optimize,
    )
    for line in result.outputs:
        print(line)
    print(
        f"[{result.steps} statements, {result.total_cost:.0f} cycles "
        f"on the {_MODELS[args.model].name} machine]",
        file=sys.stderr,
    )
    return 0


def _run_specs(args) -> list[dict]:
    inputs = _parse_inputs(args.inputs)
    return [
        {"seed": args.seed + i, "inputs": inputs} for i in range(args.runs)
    ]


def _profile_plan(program, args):
    """The plan a profiling command should execute, honouring --mode."""
    if getattr(args, "mode", "counters") == "paths":
        if args.plan == "naive":
            raise ReproError("--mode paths requires --plan smart")
        from repro.paths import path_program_plan

        return path_program_plan(program)
    if args.plan == "naive":
        return naive_program_plan(program)
    return smart_program_plan(program)


def _cmd_profile(args) -> int:
    program = _load(args.file)
    plan = _profile_plan(program, args)
    profile, stats = profile_program(
        program,
        runs=_run_specs(args),
        plan=plan,
        model=_MODELS[args.model],
        record_loop_moments=args.loop_moments,
        backend=args.backend,
        optimize=args.optimize,
        mode=args.mode,
    )
    print(
        format_table(
            ["metric", "value"],
            [
                ["mode", args.mode],
                ["plan", args.plan if args.mode == "counters" else "paths"],
                ["runs", stats.runs],
                ["counters" if args.mode == "counters" else "path sites",
                 stats.counters],
                ["counter updates", stats.counter_updates],
                ["program cycles", stats.base_cost],
                ["profiling cycles", stats.counter_cost],
                [
                    "overhead",
                    f"{100 * stats.counter_cost / stats.base_cost:.2f}%"
                    if stats.base_cost
                    else "n/a",
                ],
            ],
            title=f"profile of {args.file}",
        )
    )
    if args.db:
        database = ProfileDatabase(args.db)
        database.record(args.key or Path(args.file).name, profile)
        database.save()
        print(f"[accumulated into {args.db}]", file=sys.stderr)
    return 0


def _cmd_analyze(args) -> int:
    program = _load(args.file)
    if args.db:
        database = ProfileDatabase(args.db)
        profile = database.lookup(args.key or Path(args.file).name)
        if profile is None:
            raise ReproError(
                f"no profile for key {args.key or Path(args.file).name!r} "
                f"in {args.db}"
            )
    else:
        profile, _ = profile_program(
            program,
            runs=_run_specs(args),
            record_loop_moments=args.loop_variance == "profiled",
        )
    calibration = None
    if args.calibration:
        from repro.validate import CalibrationProfile

        calibration = CalibrationProfile.load(args.calibration)
    model = (
        calibration.machine_model()
        if calibration is not None
        else _MODELS[args.model]
    )
    analysis = analyze(
        program,
        profile,
        model,
        loop_variance=_LOOP_VARIANCE[args.loop_variance],
    )
    bounds = None
    if args.static_bounds:
        from repro.dataflow import compute_static_bounds, format_endpoint

        bounds = compute_static_bounds(
            program.checked,
            program.cfgs,
            model,
            artifacts=program.artifacts(),
        )
    headers = ["procedure", "invocations", "TIME", "VAR", "STD_DEV"]
    if bounds is not None:
        headers += ["TIME_LO", "TIME_HI", "VAR_HI"]
    rows = []
    for name, proc in sorted(analysis.procedures.items()):
        row = [
            name,
            proc.freqs.invocations,
            proc.time,
            proc.var,
            proc.std_dev,
        ]
        if bounds is not None:
            pb = bounds.procedures[name]
            row += [
                format_endpoint(pb.time[0]),
                format_endpoint(pb.time[1]),
                format_endpoint(pb.var[1]),
            ]
        rows.append(row)
    print(
        format_table(
            headers,
            rows,
            title=(
                f"analysis of {args.file} on the "
                f"{model.name} machine"
            ),
        )
    )
    units = " ns" if calibration is not None else ""
    print(
        f"\nprogram: TIME = {analysis.total_time:.2f}{units}, "
        f"STD_DEV = {analysis.total_std_dev:.2f}{units}"
    )
    if calibration is not None:
        print(
            "calibrated wall clock: "
            f"{analysis.total_time + calibration.intercept_ns:.0f} ns/run "
            f"(incl. {calibration.intercept_ns:.0f} ns harness overhead; "
            f"fit R² = {calibration.r_squared:.4f})"
        )
    if bounds is not None:
        mb = bounds.main
        print(
            "static bounds (no profile needed): TIME ∈ "
            f"[{format_endpoint(mb.time[0])}, {format_endpoint(mb.time[1])}]"
            f", VAR ≤ {format_endpoint(mb.var[1])}"
        )
    if args.figure3:
        print()
        print(render_fcdg(analysis.main))
    if args.gprof:
        print()
        print(render_profile_report(analysis))
    return 0


def _analyzed_for_apps(args):
    program = _load(args.file)
    profile, _ = profile_program(
        program, runs=_run_specs(args), record_loop_moments=True
    )
    return program, analyze(
        program, profile, _MODELS[args.model], loop_variance="profiled"
    )


def _cmd_traces(args) -> int:
    from repro.apps.traces import branch_layout_advice, select_traces

    program, analysis = _analyzed_for_apps(args)
    for name in sorted(analysis.procedures):
        proc = analysis.procedures[name]
        if proc.freqs.invocations == 0:
            continue
        print(f"== {name} ==")
        cfg = program.cfgs[name]
        for i, trace in enumerate(select_traces(proc)):
            path = " -> ".join(cfg.nodes[n].text or str(n) for n in trace.nodes)
            print(f"  trace {i} (weight {trace.weight:.1f}): {path}")
        advice = branch_layout_advice(proc, taken_penalty=args.penalty)
        for item in advice:
            print(
                f"  layout: {item.text}: fall through on "
                f"{item.fallthrough_label} "
                f"(saves {item.saving:.1f} cycles/invocation)"
            )
        print()
    return 0


def _cmd_partition(args) -> int:
    from repro.apps.partitioning import partition_program

    program, analysis = _analyzed_for_apps(args)
    partition = partition_program(
        analysis,
        n_processors=args.processors,
        spawn_overhead=args.overhead,
    )
    rows = [
        [
            task.proc,
            task.text,
            task.iterations,
            task.chunk,
            task.sequential_time,
            task.parallel_time,
            task.profitable,
        ]
        for task in partition.loops
    ]
    print(
        format_table(
            ["proc", "loop", "iters", "chunk", "seq", "par", "spawn?"],
            rows,
            title=f"loop tasks (P={args.processors})",
        )
    )
    print(
        f"\nestimated speedup: {partition.estimated_speedup:.2f}x "
        f"({partition.sequential_time:.0f} -> "
        f"{partition.parallel_time:.0f} cycles)"
    )
    return 0


def _cmd_spill(args) -> int:
    from repro.apps.spill_costs import spill_costs

    program, analysis = _analyzed_for_apps(args)
    proc = args.proc or program.main_name
    if proc not in analysis.procedures:
        raise ReproError(f"no procedure named {proc}")
    ranked = spill_costs(analysis, proc, _MODELS[args.model])
    print(
        format_table(
            ["variable", "reads", "writes", "register saving"],
            [[r.name, r.reads, r.writes, r.cost] for r in ranked],
            title=f"spill costs of {proc} (per invocation)",
        )
    )
    return 0


@contextlib.contextmanager
def _tracing_to(path: str | None):
    """Enable span recording to a JSONL file for the enclosed work."""
    if not path:
        yield
        return
    from repro.obs import JsonlSink, configure_tracing, disable_tracing

    sink = JsonlSink(path)
    configure_tracing(sink)
    try:
        yield
    finally:
        disable_tracing()
        sink.close()
        print(f"[spans appended to {path}]", file=sys.stderr)


def _resolve_program_source(target: str) -> tuple[str, str]:
    """``(label, source)`` for a path or a built-in workload name.

    ``repro trace examples/paper`` works even though no such file
    exists: when ``target`` is not a readable path, its stem is looked
    up among the built-in workloads.
    """
    from repro.workloads import builtin_sources

    path = Path(target)
    if path.is_file():
        return target, path.read_text()
    builtins = dict(builtin_sources())
    stem = path.stem
    if stem in builtins:
        return f"builtin:{stem}", builtins[stem]
    raise ReproError(
        f"{target}: not a file, and no built-in workload named {stem!r} "
        f"(built-ins: {', '.join(sorted(builtins))})"
    )


def _cmd_trace(args) -> int:
    from repro.checker import verify_program
    from repro.obs import (
        JsonlSink,
        RingBufferSink,
        configure_tracing,
        disable_tracing,
        render_trace_tree,
        span,
    )

    label, source = _resolve_program_source(args.file)
    if args.dump_source:
        from repro.codegen import LoweringError, codegen_backend_for

        program = compile_source(source)
        plan = _profile_plan(program, args)
        try:
            text = codegen_backend_for(program).emitted_source(
                plan, _MODELS[args.model]
            )
        except LoweringError as exc:
            raise ReproError(
                f"{label}: codegen cannot lower this program ({exc})"
            ) from exc
        print(text)
        return 0
    ring = RingBufferSink(capacity=8192)
    sinks: list = [ring]
    jsonl = None
    if args.trace_out:
        jsonl = JsonlSink(args.trace_out)
        sinks.append(jsonl)
    configure_tracing(*sinks)
    try:
        with span("trace", attrs={"target": label}):
            program = compile_source(source)
            plan = _profile_plan(program, args)
            report = verify_program(program, plan, program_id=label)
            profile, _stats = profile_program(
                program,
                runs=_run_specs(args),
                plan=plan,
                model=_MODELS[args.model],
                record_loop_moments=args.loop_variance == "profiled",
                mode=args.mode,
            )
            analyze(
                program,
                profile,
                _MODELS[args.model],
                loop_variance=_LOOP_VARIANCE[args.loop_variance],
            )
    finally:
        disable_tracing()
        if jsonl is not None:
            jsonl.close()
    spans = ring.drain()
    print(render_trace_tree(spans))
    if report.errors:
        print(
            f"[verifier found {len(report.errors)} error(s); "
            f"run `repro check` for details]",
            file=sys.stderr,
        )
    if args.trace_out:
        print(f"[spans appended to {args.trace_out}]", file=sys.stderr)
    if args.chrome_trace:
        from repro.obs import write_chrome_trace

        count = write_chrome_trace(spans, args.chrome_trace)
        print(
            f"[{count} Chrome trace events written to {args.chrome_trace}; "
            "load in Perfetto or chrome://tracing]",
            file=sys.stderr,
        )
    return 0


def _format_ns(value: float) -> str:
    """Human-scaled nanoseconds for the validate tables."""
    sign = "-" if value < 0 else ""
    value = abs(value)
    if value >= 1e9:
        return f"{sign}{value / 1e9:.3f}s"
    if value >= 1e6:
        return f"{sign}{value / 1e6:.3f}ms"
    if value >= 1e3:
        return f"{sign}{value / 1e3:.1f}µs"
    return f"{sign}{value:.0f}ns"


def _validate_subjects(args) -> list[tuple[str, str]]:
    """``(label, source)`` pairs the validate command should measure."""
    from repro.workloads.generators import ProgramGenerator

    sources: list[tuple[str, str]] = []
    for target in args.files:
        sources.append(_resolve_program_source(target))
    if args.builtin:
        from repro.validate.corpus import corpus_sources

        only = (
            tuple(part for part in args.only.split(",") if part)
            if args.only
            else None
        )
        sources.extend(corpus_sources(builtins=True, generated=0, only=only))
    for i in range(args.generate):
        gen_seed = args.gen_seed + i
        sources.append((f"gen-{gen_seed}", ProgramGenerator(gen_seed).source()))
    return sources


def _cmd_validate(args) -> int:
    import random

    from repro.validate import (
        AccuracyScorer,
        CalibrationProfile,
        CalibrationSample,
        feature_counts,
        fit_calibration,
        measure_command,
        measure_program,
        median_relative_error,
        sample_inputs,
    )
    from repro.validate.corpus import DEFAULT_INPUTS

    if args.command_argv and args.command_argv[0] == "--":
        args.command_argv = args.command_argv[1:]
    if args.command_argv:
        if args.files or args.builtin or args.generate:
            raise ReproError(
                "validate: --command measures the external command alone; "
                "drop the program arguments"
            )
        if args.calibrate or args.calibration:
            raise ReproError(
                "validate: an external command has no operation counts, so "
                "it cannot be calibrated or scored"
            )
        with _tracing_to(args.trace_out):
            measurement = measure_command(
                args.command_argv, trials=args.trials, warmup=args.warmup
            )
        lo, hi = (
            measurement.mean_ci()
            if measurement.trials >= 2
            else (float("nan"), float("nan"))
        )
        print(
            format_table(
                ["metric", "value"],
                [
                    ["trials", measurement.trials],
                    ["warmup", measurement.warmup],
                    ["mean", _format_ns(measurement.mean_ns)],
                    ["std dev", _format_ns(measurement.std_ns)],
                    [
                        "mean 95% CI",
                        f"[{_format_ns(lo)}, {_format_ns(hi)}]"
                        if measurement.trials >= 2
                        else "n/a",
                    ],
                ],
                title=f"wall clock of `{measurement.label}`",
            )
        )
        if args.json:
            _write_json_report(args.json, {"command": measurement.as_dict()})
        return 0

    sources = _validate_subjects(args)
    if not sources:
        raise ReproError(
            "validate: no subjects (give files, --builtin, --generate N "
            "or --command ...)"
        )
    if (args.calibrate or args.calibration) and args.trials < 2:
        raise ReproError(
            "validate: scoring and calibration need --trials >= 2 "
            "(confidence intervals are undefined for one sample)"
        )

    explicit_inputs = _parse_inputs(args.inputs)
    input_sampler = None
    if args.input_dist:

        def input_sampler(seed: int) -> tuple[float, ...]:
            return sample_inputs(
                args.input_dist,
                args.input_mean,
                args.input_count,
                random.Random(seed),
            )

    measured = []
    with _tracing_to(args.trace_out):
        for label, source in sources:
            program = compile_source(source)
            inputs = explicit_inputs or DEFAULT_INPUTS.get(
                label.removeprefix("builtin:"), ()
            )
            item = measure_program(
                program,
                trials=args.trials,
                warmup=args.warmup,
                backend=args.backend,
                seed=args.seed,
                inputs=inputs,
                input_sampler=input_sampler,
                max_steps=args.max_steps,
                label=label,
            )
            print(
                f"[measured {label}: mean "
                f"{_format_ns(item.measurement.mean_ns)} over "
                f"{args.trials} trial(s)]",
                file=sys.stderr,
            )
            measured.append((label, program, item))

        calibration = None
        if args.calibrate:
            samples = [
                CalibrationSample(
                    label=label,
                    features=feature_counts(program, item.profile),
                    measured_mean_ns=item.measurement.mean_ns,
                    measured_var_ns2=item.measurement.var_ns2,
                    trials=item.measurement.trials,
                )
                for label, program, item in measured
            ]
            calibration = fit_calibration(
                samples,
                ridge=args.ridge,
                backend=args.backend,
                trials=args.trials,
                warmup=args.warmup,
            )
            calibration.save(args.calibrate)
        elif args.calibration:
            calibration = CalibrationProfile.load(args.calibration)

        scores = None
        if calibration is not None:
            scorer = AccuracyScorer(calibration)
            scores = scorer.score_corpus(measured)

    rows = [
        [
            label,
            item.measurement.trials,
            _format_ns(item.measurement.mean_ns),
            _format_ns(item.measurement.std_ns),
            f"[{_format_ns(item.measurement.mean_ci()[0])}, "
            f"{_format_ns(item.measurement.mean_ci()[1])}]"
            if item.measurement.trials >= 2
            else "n/a",
        ]
        for label, _program, item in measured
    ]
    print(
        format_table(
            ["program", "trials", "mean", "std dev", "mean 95% CI"],
            rows,
            title=f"measured wall clock ({args.backend} backend)",
        )
    )

    if calibration is not None:
        print(
            "\ncalibration: R² = "
            f"{calibration.r_squared:.4f}, intercept = "
            f"{_format_ns(calibration.intercept_ns)}/run"
        )
        for group in sorted(calibration.coefficients_ns):
            print(
                f"  {group:<12} {calibration.coefficients_ns[group]:8.2f} ns/op"
            )
        if args.calibrate:
            print(f"[calibration artifact written to {args.calibrate}]",
                  file=sys.stderr)
    if scores is not None:
        score_rows = [
            [
                score.label,
                _format_ns(score.measured_mean_ns),
                _format_ns(score.predicted_time_ns),
                f"{100 * score.time_relative_error:.1f}%",
                f"{score.time_z_score:+.2f}",
                "yes" if score.time_in_ci else "no",
                "yes" if score.var_in_ci else "no",
            ]
            for score in scores
        ]
        print()
        print(
            format_table(
                ["program", "measured", "predicted", "rel err", "z",
                 "TIME in CI", "VAR in CI"],
                score_rows,
                title="calibrated TIME/VAR vs measured wall clock",
            )
        )
        print(
            "\nmedian TIME relative error: "
            f"{100 * median_relative_error(scores):.1f}%"
        )

    if args.json:
        payload: dict = {
            "backend": args.backend,
            "trials": args.trials,
            "warmup": args.warmup,
            "subjects": [item.as_dict() for _label, _p, item in measured],
        }
        if calibration is not None:
            payload["calibration"] = calibration.to_dict()
        if scores is not None:
            payload["scores"] = [score.as_dict() for score in scores]
            payload["median_relative_error"] = median_relative_error(scores)
        _write_json_report(args.json, payload)
    return 0


def _write_json_report(path: str, payload: dict) -> None:
    import json

    text = json.dumps(payload, indent=2, sort_keys=True)
    if path == "-":
        print(text)
    else:
        Path(path).write_text(text + "\n", encoding="utf-8")
        print(f"[JSON written to {path}]", file=sys.stderr)


def _cmd_batch(args) -> int:
    from repro.batch import BatchItem, run_batch
    from repro.workloads.generators import ProgramGenerator

    inputs = _parse_inputs(args.inputs)
    run_specs = tuple(
        {"seed": args.seed + i, "inputs": inputs} for i in range(args.runs)
    )
    items: list[BatchItem] = []
    for path in args.files:
        items.append(
            BatchItem(id=path, source=Path(path).read_text(), runs=run_specs)
        )
    for i in range(args.generate):
        gen_seed = args.gen_seed + i
        items.append(
            BatchItem(
                id=f"gen-{gen_seed}",
                source=ProgramGenerator(gen_seed).source(),
                runs=run_specs,
            )
        )
    if not items:
        raise ReproError("batch: no programs (give files and/or --generate N)")

    mode = {"auto": "auto", "serial": "serial", "pool": "process"}[args.mode]
    with _tracing_to(args.trace_out):
        report = run_batch(
            items,
            plan=args.plan,
            model=_MODELS[args.model],
            mode=mode,
            jobs=args.jobs,
            cache=args.cache,
            max_steps=args.max_steps,
            verify=args.verify,
            backend=args.backend,
            profile_mode=args.profile_mode,
        )

    rows = []
    for result in report.results:
        if result.ok:
            summary = result.summary or {}
            rows.append(
                [
                    result.item_id,
                    "ok",
                    result.runs,
                    result.counters,
                    result.counter_updates,
                    summary.get("time", float("nan")),
                    summary.get("std_dev", float("nan")),
                    result.cache_tier,
                ]
            )
        else:
            rows.append(
                [
                    result.item_id,
                    f"FAILED ({result.error.stage})",
                    result.runs,
                    0,
                    0,
                    float("nan"),
                    float("nan"),
                    result.cache_tier or "-",
                ]
            )
    print(
        format_table(
            ["program", "status", "runs", "counters", "updates",
             "TIME", "STD_DEV", "cache"],
            rows,
            title=(
                f"batch profile of {len(report.results)} programs "
                f"({report.mode}, {report.jobs} job(s), "
                f"{'paths' if args.profile_mode == 'paths' else args.plan} "
                "plan)"
            ),
        )
    )
    stats = report.cache_stats
    print(
        f"\ncache: {stats['memory_hits']} memory hits, "
        f"{stats['disk_hits']} disk hits, {stats['misses']} misses, "
        f"{stats['corrupt_entries']} corrupt, "
        f"{stats.get('invalid_entries', 0)} invalid; "
        f"{len(report.ok)}/{len(report.results)} ok in {report.elapsed:.2f}s"
    )
    for result in report.failures:
        print(
            f"{result.item_id}: {result.error.stage} failed "
            f"[{result.error.type}] {result.error.message}",
            file=sys.stderr,
        )
    if args.json:
        payload = report.aggregate_json()
        if args.json == "-":
            print(payload)
        else:
            Path(args.json).write_text(payload + "\n")
            print(f"[aggregate JSON written to {args.json}]", file=sys.stderr)
    return 0 if not report.failures else 1


def _cmd_check(args) -> int:
    import json

    from repro.checker import check_source
    from repro.workloads import builtin_sources
    from repro.workloads.generators import ProgramGenerator

    programs: list[tuple[str, str]] = []
    for path in args.files:
        programs.append((path, Path(path).read_text()))
    if args.builtin:
        programs.extend(builtin_sources())
    for i in range(args.generate):
        gen_seed = args.gen_seed + i
        programs.append(
            (f"gen-{gen_seed}", ProgramGenerator(gen_seed).source())
        )
    if not programs:
        raise ReproError(
            "check: no programs (give files, --builtin and/or --generate N)"
        )

    plan_kinds = {
        "smart": ("smart",),
        "naive": ("naive",),
        "paths": ("paths",),
        "both": ("smart", "naive"),
        "all": ("smart", "naive", "paths"),
    }[args.plan]
    reports = [
        check_source(
            source,
            program_id=program_id,
            plan_kinds=plan_kinds,
            lint=not args.no_lint,
            hints=args.hints,
            lint_mode=args.lint_mode,
        )
        for program_id, source in programs
    ]

    for report in reports:
        print(report.render_text())
    bad = [r for r in reports if not r.ok]
    total = sum(len(r) for r in reports)
    print(
        f"\nchecked {len(reports)} program(s): "
        f"{len(reports) - len(bad)} clean, {len(bad)} with findings "
        f"({total} diagnostic(s) total)"
    )
    if args.json:
        payload = json.dumps(
            [r.as_dict() for r in reports], indent=2, sort_keys=True
        )
        if args.json == "-":
            print(payload)
        else:
            Path(args.json).write_text(payload + "\n")
            print(f"[JSON written to {args.json}]", file=sys.stderr)
    return 0 if not bad else 1


def _cmd_serve(args) -> int:
    import asyncio

    from repro.service import ServiceConfig, serve

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        db=args.db,
        cache=args.cache,
        max_batch=args.max_batch,
        linger=args.linger_ms / 1000.0,
        queue_limit=args.queue_limit,
        request_timeout=args.timeout,
        max_steps_cap=args.max_steps_cap,
        save_every=args.save_every,
        calibration=args.calibration,
    )

    if args.workers > 1:
        from repro.service import FrontDoorConfig, serve_sharded

        door_config = FrontDoorConfig(
            workers=args.workers,
            host=args.host,
            port=args.port,
            worker=config,
        )

        def announce_door(door) -> None:
            db = args.db or "(in-memory)"
            print(
                f"repro service on http://{args.host}:{door.port} "
                f"[workers={args.workers} db={db} "
                f"max_batch={args.max_batch} "
                f"linger={args.linger_ms}ms queue={args.queue_limit}]",
                file=sys.stderr,
                flush=True,
            )

        with _tracing_to(args.trace_out):
            asyncio.run(serve_sharded(door_config, ready=announce_door))
        print("repro service drained cleanly", file=sys.stderr)
        return 0

    def announce(service) -> None:
        db = args.db or "(in-memory)"
        print(
            f"repro service on http://{args.host}:{service.port} "
            f"[db={db} max_batch={args.max_batch} "
            f"linger={args.linger_ms}ms queue={args.queue_limit}]",
            file=sys.stderr,
            flush=True,
        )

    with _tracing_to(args.trace_out):
        asyncio.run(serve(config, ready=announce))
    print("repro service drained cleanly", file=sys.stderr)
    return 0


def _client(args):
    from repro.service import ServiceClient

    return ServiceClient(
        args.host,
        args.port,
        timeout=args.timeout,
        retries=args.retries,
        backoff=args.backoff,
    )


def _print_json(payload: dict) -> None:
    import json

    print(json.dumps(payload, indent=2, sort_keys=True))


def _cmd_call(args) -> int:
    from repro.service import ServiceError

    with _client(args) as client:
        try:
            if args.endpoint == "health":
                _print_json(client.healthz())
            elif args.endpoint == "metrics":
                _print_json(client.metrics())
            elif args.endpoint == "compile":
                _print_json(
                    client.compile(
                        Path(args.file).read_text(),
                        key=args.key,
                        plan=args.plan,
                        verify=args.verify,
                    )
                )
            elif args.endpoint == "profile":
                runs = [
                    {"seed": args.seed + i, "inputs": _parse_inputs(args.inputs)}
                    for i in range(args.runs)
                ]
                response = client.profile(
                    Path(args.file).read_text(),
                    runs=runs,
                    plan=args.plan,
                    verify=args.verify,
                    loop_variance=args.loop_variance,
                    backend=args.backend,
                    ingest=args.ingest,
                )
                if not args.full:
                    response.pop("profile", None)
                _print_json(response)
            elif args.endpoint == "ingest":
                # Profile locally (the paper's deployment shape: counts
                # are gathered where the program runs), ship the delta.
                source = Path(args.file).read_text()
                program = compile_source(source)
                profile, _stats = profile_program(
                    program,
                    runs=_run_specs(args),
                    record_loop_moments=True,
                )
                _print_json(
                    client.ingest(args.key, profile, source=source)
                )
            elif args.endpoint == "query":
                _print_json(
                    client.query(
                        args.key,
                        loop_variance=args.loop_variance,
                        model=args.model,
                    )
                )
            elif args.endpoint == "profiles":
                _print_json(
                    client.profiles(
                        analyze=args.analyze,
                        raw=args.raw,
                        loop_variance=args.loop_variance,
                        model=args.model,
                    )
                )
            elif args.endpoint == "calibration":
                _print_json(client.calibration())
            elif args.endpoint == "chunks":
                _print_json(
                    client.chunks(
                        args.key,
                        processors=args.processors,
                        overhead=args.overhead,
                        model=args.model,
                        loop_variance=args.loop_variance,
                    )
                )
        except ServiceError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        except ConnectionError as exc:
            print(
                f"error: cannot reach http://{args.host}:{args.port} ({exc})",
                file=sys.stderr,
            )
            return 1
    return 0


def _cmd_plan(args) -> int:
    from repro.profiling.describe import describe_plan

    program = _load(args.file)
    plan = (
        naive_program_plan(program)
        if args.naive
        else smart_program_plan(program)
    )
    names = [args.proc] if args.proc else sorted(program.cfgs)
    for name in names:
        if name not in plan.plans:
            raise ReproError(f"no procedure named {name}")
        print(describe_plan(plan.plans[name], program.cfgs[name]))
        print()
    print(f"total counters: {plan.n_counters}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Average program execution times and their variance "
            "(Sarkar, PLDI 1989)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser("compile", help="build and print the graphs")
    p_compile.add_argument("file")
    p_compile.add_argument("--proc", help="only this procedure")
    p_compile.add_argument(
        "--show",
        choices=["cfg", "ecfg", "fcdg", "dot-cfg", "dot-fcdg"],
        default="cfg",
    )
    p_compile.set_defaults(func=_cmd_compile)

    p_run = sub.add_parser("run", help="execute a program")
    p_run.add_argument("file")
    p_run.add_argument("--inputs", help="comma-separated INPUT() vector")
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--model", choices=sorted(_MODELS), default="scalar")
    p_run.add_argument("--max-steps", type=int, default=10_000_000)
    p_run.add_argument(
        "--backend", choices=list(BACKENDS), default="auto",
        help="execution engine (default: auto — threaded with fallback)",
    )
    p_run.add_argument(
        "--optimize", action="store_true",
        help="fold dataflow-constant branches and drop dead stores in "
        "the codegen backend (results stay bit-identical)",
    )
    p_run.set_defaults(func=_cmd_run)

    p_profile = sub.add_parser(
        "profile", help="run under a counter plan; optionally store counts"
    )
    p_profile.add_argument("file")
    p_profile.add_argument("--runs", type=int, default=1)
    p_profile.add_argument("--inputs")
    p_profile.add_argument("--seed", type=int, default=0)
    p_profile.add_argument(
        "--plan", choices=["smart", "naive"], default="smart"
    )
    p_profile.add_argument("--model", choices=sorted(_MODELS), default="scalar")
    p_profile.add_argument(
        "--mode", choices=["counters", "paths"], default="counters",
        help="profiling instrumentation: Definition-3 counters or "
        "Ball–Larus path registers (default: counters)",
    )
    p_profile.add_argument("--db", help="profile database path (JSON)")
    p_profile.add_argument("--key", help="database key (default: file name)")
    p_profile.add_argument(
        "--loop-moments", action="store_true",
        help="record E[FREQ^2] per loop",
    )
    p_profile.add_argument(
        "--backend", choices=list(BACKENDS), default="auto",
        help="execution engine (default: auto — threaded with fallback)",
    )
    p_profile.add_argument(
        "--optimize", action="store_true",
        help="fold dataflow-constant branches and drop dead stores in "
        "the codegen backend (counters stay bit-identical)",
    )
    p_profile.set_defaults(func=_cmd_profile)

    p_analyze = sub.add_parser(
        "analyze", help="compute TIME / VAR / STD_DEV per procedure"
    )
    p_analyze.add_argument("file")
    p_analyze.add_argument("--runs", type=int, default=1)
    p_analyze.add_argument("--inputs")
    p_analyze.add_argument("--seed", type=int, default=0)
    p_analyze.add_argument("--model", choices=sorted(_MODELS), default="scalar")
    p_analyze.add_argument(
        "--loop-variance",
        choices=sorted(_LOOP_VARIANCE),
        default="zero",
    )
    p_analyze.add_argument("--db", help="read the profile from this database")
    p_analyze.add_argument("--key")
    p_analyze.add_argument(
        "--figure3", action="store_true", help="print the annotated FCDG"
    )
    p_analyze.add_argument(
        "--gprof",
        action="store_true",
        help="print a gprof-style flat/call-graph/hot-spot report",
    )
    p_analyze.add_argument(
        "--static-bounds",
        action="store_true",
        help="add profile-free [TIME_lo, TIME_hi] / VAR envelope columns "
        "from value-range analysis of trip counts",
    )
    p_analyze.add_argument(
        "--calibration", metavar="PATH",
        help="price operations with this calibration artifact instead of "
        "--model: TIME comes out in nanoseconds, VAR in ns²",
    )
    p_analyze.set_defaults(func=_cmd_analyze)

    def app_parser(name: str, help_text: str):
        sub_parser = sub.add_parser(name, help=help_text)
        sub_parser.add_argument("file")
        sub_parser.add_argument("--runs", type=int, default=3)
        sub_parser.add_argument("--inputs")
        sub_parser.add_argument("--seed", type=int, default=0)
        sub_parser.add_argument(
            "--model", choices=sorted(_MODELS), default="scalar"
        )
        return sub_parser

    p_traces = app_parser(
        "traces", "select scheduling traces and branch layouts"
    )
    p_traces.add_argument("--penalty", type=float, default=2.0)
    p_traces.set_defaults(func=_cmd_traces)

    p_partition = app_parser(
        "partition", "decide parallel loop/call tasks (PTRAN style)"
    )
    p_partition.add_argument("--processors", type=int, default=4)
    p_partition.add_argument("--overhead", type=float, default=200.0)
    p_partition.set_defaults(func=_cmd_partition)

    p_spill = app_parser(
        "spill", "rank variables by register-allocation benefit"
    )
    p_spill.add_argument("--proc", help="procedure (default: MAIN)")
    p_spill.set_defaults(func=_cmd_spill)

    p_batch = sub.add_parser(
        "batch",
        help="profile many programs with cached artifacts (serial or pooled)",
    )
    p_batch.add_argument("files", nargs="*", help="minifort source files")
    p_batch.add_argument(
        "--generate", type=int, default=0, metavar="N",
        help="add N seeded generator programs to the batch",
    )
    p_batch.add_argument(
        "--gen-seed", type=int, default=0,
        help="first generator seed (default 0)",
    )
    p_batch.add_argument("--runs", type=int, default=1)
    p_batch.add_argument("--inputs", help="comma-separated INPUT() vector")
    p_batch.add_argument("--seed", type=int, default=0)
    p_batch.add_argument(
        "--plan", choices=["smart", "naive"], default="smart"
    )
    p_batch.add_argument("--model", choices=sorted(_MODELS), default="scalar")
    p_batch.add_argument(
        "--mode", choices=["auto", "serial", "pool"], default="auto"
    )
    p_batch.add_argument(
        "--profile-mode", choices=["counters", "paths"], default="counters",
        help="profiling instrumentation: Definition-3 counters or "
        "Ball–Larus path registers (default: counters)",
    )
    p_batch.add_argument(
        "--jobs", type=int, help="worker processes (default: CPU count)"
    )
    p_batch.add_argument(
        "--cache", help="artifact cache directory (omit: in-memory only)"
    )
    p_batch.add_argument("--max-steps", type=int, default=10_000_000)
    p_batch.add_argument(
        "--verify", action="store_true",
        help="run the artifact verifier on every item before profiling",
    )
    p_batch.add_argument(
        "--backend", choices=list(BACKENDS), default="auto",
        help="execution engine (default: auto — threaded with fallback)",
    )
    p_batch.add_argument(
        "--json", metavar="PATH",
        help="write the canonical aggregate JSON here ('-' for stdout)",
    )
    p_batch.add_argument(
        "--trace-out", metavar="PATH",
        help="append tracing spans as JSONL here while the batch runs",
    )
    p_batch.set_defaults(func=_cmd_batch)

    p_check = sub.add_parser(
        "check",
        help="verify artifacts and lint sources (the repro check)",
    )
    p_check.add_argument("files", nargs="*", help="minifort source files")
    p_check.add_argument(
        "--builtin", action="store_true",
        help="also check every built-in workload",
    )
    p_check.add_argument(
        "--generate", type=int, default=0, metavar="N",
        help="also check N seeded generator programs",
    )
    p_check.add_argument(
        "--gen-seed", type=int, default=0,
        help="first generator seed (default 0)",
    )
    p_check.add_argument(
        "--plan", choices=["smart", "naive", "paths", "both", "all"],
        default="both",
        help="which plans to verify: counter kinds, 'paths' "
        "(REP5xx path-plan audit), 'both' counter kinds (default) or "
        "'all' three",
    )
    p_check.add_argument(
        "--no-lint", action="store_true", help="skip the REP3xx lints"
    )
    p_check.add_argument(
        "--hints", action="store_true",
        help="also emit hint-level findings "
        "(REP301/304/305/306/307)",
    )
    p_check.add_argument(
        "--lint-mode", choices=["dataflow", "syntactic"],
        default="dataflow",
        help="lint implementation: 'dataflow' (CFG dataflow framework, "
        "default) or 'syntactic' (pre-dataflow behavior, kept for one "
        "release)",
    )
    p_check.add_argument(
        "--json", metavar="PATH",
        help="write all reports as JSON here ('-' for stdout)",
    )
    p_check.set_defaults(func=_cmd_check)

    p_serve = sub.add_parser(
        "serve",
        help="run the profiling service (micro-batched asyncio server)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=8437,
        help="port to bind (0: pick an ephemeral port)",
    )
    p_serve.add_argument(
        "--db", help="profile database JSON path (omit: in-memory)"
    )
    p_serve.add_argument(
        "--cache", help="artifact cache directory (omit: memory tier only)"
    )
    p_serve.add_argument(
        "--max-batch", type=int, default=16,
        help="flush a micro-batch at this many pending requests",
    )
    p_serve.add_argument(
        "--linger-ms", type=float, default=2.0,
        help="max time a request waits for its micro-batch to fill",
    )
    p_serve.add_argument(
        "--queue-limit", type=int, default=128,
        help="admission queue bound; beyond it requests get 429",
    )
    p_serve.add_argument(
        "--timeout", type=float, default=30.0,
        help="per-request budget in seconds (exceeded: 504)",
    )
    p_serve.add_argument(
        "--max-steps-cap", type=int, default=10_000_000,
        help="ceiling on client-requested interpreter steps",
    )
    p_serve.add_argument(
        "--save-every", type=int, default=0,
        help="persist the database every N ingests (0: only on drain)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=1,
        help="worker processes; >1 boots a consistent-hash routing "
        "front door over N database shards",
    )
    p_serve.add_argument(
        "--trace-out", metavar="PATH",
        help="append tracing spans as JSONL here while the service runs",
    )
    p_serve.add_argument(
        "--calibration", metavar="PATH",
        help="load this calibration artifact: enables model=calibrated "
        "queries (ns units) and GET /calibration",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_call = sub.add_parser(
        "call", help="talk to a running profiling service"
    )
    p_call.add_argument("--host", default="127.0.0.1")
    p_call.add_argument("--port", type=int, default=8437)
    p_call.add_argument("--timeout", type=float, default=60.0)
    p_call.add_argument(
        "--retries", type=int, default=0,
        help="retry 429/503 responses this many times, honoring the "
        "server's retry_after_ms hint",
    )
    p_call.add_argument(
        "--backoff", type=float, default=0.05,
        help="base retry sleep in seconds (doubles per attempt)",
    )
    call_sub = p_call.add_subparsers(dest="endpoint", required=True)

    call_sub.add_parser("health", help="GET /healthz")
    call_sub.add_parser("metrics", help="GET /metrics")

    c_compile = call_sub.add_parser(
        "compile", help="compile a file on the service"
    )
    c_compile.add_argument("file")
    c_compile.add_argument("--key", help="register the source under this key")
    c_compile.add_argument(
        "--plan", choices=["smart", "naive"], default="smart"
    )
    c_compile.add_argument(
        "--verify", action="store_true",
        help="run the artifact verifier server-side",
    )

    c_profile = call_sub.add_parser(
        "profile", help="profile a file on the service"
    )
    c_profile.add_argument("file")
    c_profile.add_argument("--runs", type=int, default=1)
    c_profile.add_argument("--seed", type=int, default=0)
    c_profile.add_argument("--inputs", help="comma-separated INPUT() vector")
    c_profile.add_argument(
        "--plan", choices=["smart", "naive"], default="smart"
    )
    c_profile.add_argument("--verify", action="store_true")
    c_profile.add_argument(
        "--loop-variance", choices=sorted(_LOOP_VARIANCE), default="zero"
    )
    c_profile.add_argument(
        "--backend", choices=list(BACKENDS), default="auto",
    )
    c_profile.add_argument(
        "--ingest", metavar="KEY",
        help="also accumulate the result into the service database",
    )
    c_profile.add_argument(
        "--full", action="store_true",
        help="include the raw TOTAL_FREQ profile in the output",
    )

    c_ingest = call_sub.add_parser(
        "ingest",
        help="profile a file locally and POST the raw delta to the service",
    )
    c_ingest.add_argument("key", help="profile database key")
    c_ingest.add_argument("file")
    c_ingest.add_argument("--runs", type=int, default=1)
    c_ingest.add_argument("--seed", type=int, default=0)
    c_ingest.add_argument("--inputs", help="comma-separated INPUT() vector")

    c_query = call_sub.add_parser(
        "query", help="Definition-3 frequencies + variance for a key"
    )
    c_query.add_argument("key")
    c_query.add_argument(
        "--loop-variance", choices=sorted(_LOOP_VARIANCE), default="zero"
    )
    c_query.add_argument(
        "--model", choices=[*sorted(_MODELS), "calibrated"], default="scalar"
    )

    c_profiles = call_sub.add_parser(
        "profiles",
        help="GET /profiles — every key (sharded services merge all "
        "workers' slices)",
    )
    c_profiles.add_argument(
        "--analyze", action="store_true",
        help="include per-key Definition-3 analysis",
    )
    c_profiles.add_argument(
        "--raw", action="store_true",
        help="include each key's raw TOTAL_FREQ profile",
    )
    c_profiles.add_argument(
        "--loop-variance", choices=sorted(_LOOP_VARIANCE), default="zero"
    )
    c_profiles.add_argument(
        "--model", choices=[*sorted(_MODELS), "calibrated"], default="scalar"
    )

    call_sub.add_parser(
        "calibration",
        help="GET /calibration — the service's loaded calibration artifact",
    )

    c_chunks = call_sub.add_parser(
        "chunks",
        help="Kruskal-Weiss chunk-size advice for a key's profiled loops",
    )
    c_chunks.add_argument("key")
    c_chunks.add_argument("--processors", type=int, default=8)
    c_chunks.add_argument("--overhead", type=float, default=10.0)
    c_chunks.add_argument(
        "--model", choices=[*sorted(_MODELS), "calibrated"], default="scalar"
    )
    c_chunks.add_argument(
        "--loop-variance", choices=sorted(_LOOP_VARIANCE), default="profiled"
    )
    p_call.set_defaults(func=_cmd_call)

    p_trace = sub.add_parser(
        "trace",
        help="print a per-stage latency tree for one pipeline pass",
    )
    p_trace.add_argument(
        "file", help="minifort source file or built-in workload name"
    )
    p_trace.add_argument("--runs", type=int, default=1)
    p_trace.add_argument("--inputs", help="comma-separated INPUT() vector")
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.add_argument(
        "--plan", choices=["smart", "naive"], default="smart"
    )
    p_trace.add_argument("--model", choices=sorted(_MODELS), default="scalar")
    p_trace.add_argument(
        "--mode", choices=["counters", "paths"], default="counters",
        help="profiling instrumentation: Definition-3 counters or "
        "Ball–Larus path registers (default: counters)",
    )
    p_trace.add_argument(
        "--loop-variance", choices=sorted(_LOOP_VARIANCE), default="zero"
    )
    p_trace.add_argument(
        "--trace-out", metavar="PATH",
        help="also append the raw spans as JSONL here",
    )
    p_trace.add_argument(
        "--chrome-trace", metavar="PATH",
        help="also write the spans as a Chrome trace-event JSON file "
        "(load in Perfetto or chrome://tracing)",
    )
    p_trace.add_argument(
        "--dump-source", action="store_true",
        help="print the codegen backend's emitted Python source for "
        "the chosen plan and model instead of tracing a run",
    )
    p_trace.set_defaults(func=_cmd_trace)

    p_validate = sub.add_parser(
        "validate",
        help="measure wall clock, calibrate the cost model, score "
        "TIME/VAR predictions",
    )
    p_validate.add_argument(
        "files", nargs="*",
        help="minifort source files or built-in workload names",
    )
    p_validate.add_argument(
        "--builtin", action="store_true",
        help="measure every built-in workload",
    )
    p_validate.add_argument(
        "--only", metavar="NAMES",
        help="with --builtin: comma-separated subset of builtins",
    )
    p_validate.add_argument(
        "--generate", type=int, default=0, metavar="N",
        help="also measure N seeded generator programs",
    )
    p_validate.add_argument(
        "--gen-seed", type=int, default=1000,
        help="first generator seed (default 1000)",
    )
    p_validate.add_argument(
        "--command", dest="command_argv", nargs=argparse.REMAINDER,
        metavar="ARGV",
        help="measure an arbitrary external command instead of programs "
        "(everything after --command is the argv)",
    )
    p_validate.add_argument(
        "--trials", type=int, default=5,
        help="timed runs per subject (default 5)",
    )
    p_validate.add_argument(
        "--warmup", type=int, default=2,
        help="discarded warmup runs per subject (default 2)",
    )
    p_validate.add_argument(
        "--backend", choices=list(BACKENDS), default="auto",
        help="execution engine for the timed runs (default: auto)",
    )
    p_validate.add_argument("--seed", type=int, default=0)
    p_validate.add_argument(
        "--inputs", help="fixed comma-separated INPUT() vector"
    )
    p_validate.add_argument(
        "--input-dist",
        choices=["constant", "poisson", "geometric", "uniform"],
        help="draw per-trial INPUT() vectors from this Section-5 "
        "trip-count distribution instead of fixed --inputs",
    )
    p_validate.add_argument(
        "--input-mean", type=float, default=8.0,
        help="mean of the --input-dist draws (default 8)",
    )
    p_validate.add_argument(
        "--input-count", type=int, default=1,
        help="entries per drawn INPUT() vector (default 1)",
    )
    p_validate.add_argument("--max-steps", type=int, default=10_000_000)
    p_validate.add_argument(
        "--calibrate", metavar="OUT",
        help="fit the cost model against the measurements and save the "
        "calibration artifact here (needs >= 9 subjects)",
    )
    p_validate.add_argument(
        "--calibration", metavar="PATH",
        help="load this calibration artifact and score its TIME/VAR "
        "predictions against the measurements",
    )
    p_validate.add_argument(
        "--ridge", type=float, default=1e-9,
        help="ridge damping for the calibration fit",
    )
    p_validate.add_argument(
        "--json", metavar="PATH",
        help="write measurements/calibration/scores as JSON "
        "('-' for stdout)",
    )
    p_validate.add_argument(
        "--trace-out", metavar="PATH",
        help="append validate.* tracing spans as JSONL here",
    )
    p_validate.set_defaults(func=_cmd_validate)

    p_plan = sub.add_parser(
        "plan", help="show counter placement plans (smart vs naive)"
    )
    p_plan.add_argument("file")
    p_plan.add_argument("--proc", help="only this procedure")
    p_plan.add_argument(
        "--naive", action="store_true", help="show the naive plan instead"
    )
    p_plan.set_defaults(func=_cmd_plan)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
