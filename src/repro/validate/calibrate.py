"""Least-squares calibration of the abstract cost model.

The machine models in :mod:`repro.costs.model` price operations in
abstract cycles; the paper's TIME/VAR come out in the same abstract
unit.  Calibration fits those prices against *measured* wall-clock so
predictions come out in nanoseconds on the machine that ran the
measurement.

The trick that makes this cheap: TIME is **linear in the cost
vector**, so running :func:`repro.pipeline.analyze` under a one-hot
machine model (one cost-field group set to 1.0, everything else 0)
yields the expected per-run *count* of that operation group.  Those
counts form the rows of a design matrix; ordinary least squares
(ridge-damped for conditioning, with active-set clamping so no price
goes negative) against the measured per-run mean gives ns-per-group
prices plus a constant per-run harness overhead ("run_overhead", the
intercept — process/driver costs no operation count explains).

Cost fields are fitted in :data:`FEATURE_GROUPS` rather than
individually: with ~a dozen corpus programs, 17 free prices would
interpolate the data exactly and mean nothing, while 8 grouped prices
plus the intercept leave real residuals and an honest R².

The result is a versioned :class:`CalibrationProfile` artifact
(machine fingerprint, per-program residuals, R²) that
``analysis/time.py``/``analysis/variance.py`` consume transparently:
:meth:`CalibrationProfile.machine_model` is an ordinary
:class:`MachineModel` whose "cycles" are nanoseconds, so TIME is ns
and VAR is ns² with no analysis changes at all.
"""

from __future__ import annotations

import json
import math
import os
import platform
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.costs.model import MachineModel
from repro.errors import ReproError
from repro.obs import span

#: Bump when the artifact schema changes; loaders reject newer majors.
CALIBRATION_VERSION = 1

#: Cost-model fields fitted together, one price per group.  The
#: ``counter_update`` field is deliberately absent: calibration times
#: *uninstrumented* runs, which execute no counter updates, so its
#: price is unidentifiable here and stays 0 in the calibrated model.
FEATURE_GROUPS: dict[str, tuple[str, ...]] = {
    "mem": ("load", "store", "array_index"),
    "int_alu": ("const", "int_add", "compare", "logical", "branch"),
    "int_muldiv": ("int_mul", "int_div"),
    "fp_add": ("fp_add",),
    "fp_muldiv": ("fp_mul", "fp_div", "power"),
    "call": ("call_overhead",),
    "intrinsic": ("intrinsic_default",),
    "print": ("print_item",),
}

#: The intercept pseudo-feature: 1.0 per run, prices fixed per-run
#: harness overhead that no operation count explains.
INTERCEPT = "run_overhead"

_ALL_COST_FIELDS = (
    "load", "store", "const", "int_add", "int_mul", "int_div",
    "fp_add", "fp_mul", "fp_div", "power", "compare", "logical",
    "branch", "call_overhead", "array_index", "print_item",
    "intrinsic_default", "counter_update",
)


class CalibrationError(ReproError):
    """A calibration could not be fitted or a profile not loaded."""


def one_hot_model(group: str) -> MachineModel:
    """A machine model that counts one feature group instead of costing it.

    Every cost field is zero except the group's fields, which are 1.0
    (``intrinsic_costs`` stays empty so every intrinsic falls through
    to ``intrinsic_default``).  ``analyze(...).total_time`` under this
    model is the expected per-run execution count of the group.
    """
    if group not in FEATURE_GROUPS:
        raise CalibrationError(f"unknown feature group {group!r}")
    zeros = {name: 0.0 for name in _ALL_COST_FIELDS}
    for name in FEATURE_GROUPS[group]:
        zeros[name] = 1.0
    return MachineModel(name=f"one-hot:{group}", intrinsic_costs={}, **zeros)


def feature_counts(program, profile) -> dict[str, float]:
    """Expected per-run operation counts by feature group.

    One TIME analysis per group under the matching one-hot model;
    the intercept feature is always 1.0.
    """
    from repro.pipeline import analyze

    counts = {INTERCEPT: 1.0}
    for group in FEATURE_GROUPS:
        counts[group] = analyze(program, profile, one_hot_model(group)).total_time
    return counts


@dataclass
class CalibrationSample:
    """One corpus program's features and measured wall clock."""

    label: str
    features: dict[str, float]
    measured_mean_ns: float
    measured_var_ns2: float = 0.0
    trials: int = 0


def machine_fingerprint() -> dict:
    """Where a calibration was taken — prices are machine-specific."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "processor": platform.processor(),
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count() or 1,
    }


def _solve(matrix: list[list[float]], rhs: list[float]) -> list[float]:
    """Solve a small dense linear system by Gaussian elimination."""
    n = len(rhs)
    aug = [list(row) + [rhs[i]] for i, row in enumerate(matrix)]
    for col in range(n):
        pivot = max(range(col, n), key=lambda r: abs(aug[r][col]))
        if abs(aug[pivot][col]) < 1e-30:
            raise CalibrationError("singular normal equations in fit")
        aug[col], aug[pivot] = aug[pivot], aug[col]
        inv = 1.0 / aug[col][col]
        for r in range(n):
            if r == col:
                continue
            factor = aug[r][col] * inv
            if factor == 0.0:
                continue
            for c in range(col, n + 1):
                aug[r][c] -= factor * aug[col][c]
    return [aug[i][n] / aug[i][i] for i in range(n)]


def _least_squares(
    design: list[list[float]],
    y: list[float],
    names: list[str],
    ridge: float,
) -> dict[str, float]:
    """Ridge-damped nonnegative least squares over named columns.

    Nonnegativity by active-set clamping: solve, drop any column whose
    price came out negative (a price below zero is physically
    meaningless — it means the column is collinear with others on this
    corpus), re-solve on the survivors until all prices are >= 0.
    """
    active = list(range(len(names)))
    coeffs = {name: 0.0 for name in names}
    while active:
        k = len(active)
        xtx = [[0.0] * k for _ in range(k)]
        xty = [0.0] * k
        for row, target in zip(design, y):
            for i, ci in enumerate(active):
                xty[i] += row[ci] * target
                for j, cj in enumerate(active):
                    xtx[i][j] += row[ci] * row[cj]
        # Equilibrate to unit diagonal before damping: columns differ
        # by many orders of magnitude (the intercept column is tiny
        # under relative weighting), and a shared absolute ridge would
        # bias the small columns hard.  On the scaled system the same
        # ridge is relative for every column.
        d = [
            1.0 / math.sqrt(xtx[i][i]) if xtx[i][i] > 0.0 else 1.0
            for i in range(k)
        ]
        scaled = [
            [xtx[i][j] * d[i] * d[j] for j in range(k)] for i in range(k)
        ]
        for i in range(k):
            scaled[i][i] += ridge
        solution = _solve(scaled, [xty[i] * d[i] for i in range(k)])
        solution = [z * d[i] for i, z in enumerate(solution)]
        negatives = [i for i, value in enumerate(solution) if value < 0.0]
        if not negatives:
            for i, ci in enumerate(active):
                coeffs[names[ci]] = solution[i]
            return coeffs
        drop = {active[i] for i in negatives}
        active = [ci for ci in active if ci not in drop]
    return coeffs


@dataclass
class CalibrationProfile:
    """A fitted, versioned price vector: abstract ops -> nanoseconds.

    ``coefficients_ns`` maps each :data:`FEATURE_GROUPS` group to its
    fitted ns price; ``intercept_ns`` is the per-run harness overhead.
    ``residuals`` keeps the per-program fit quality that produced
    ``r_squared`` so a loaded artifact is auditable.
    """

    coefficients_ns: dict[str, float]
    intercept_ns: float = 0.0
    r_squared: float = 0.0
    residuals: list[dict] = field(default_factory=list)
    fingerprint: dict = field(default_factory=machine_fingerprint)
    backend: str = "auto"
    trials: int = 0
    warmup: int = 0
    created_at: float = field(default_factory=time.time)
    version: int = CALIBRATION_VERSION

    def predict(self, features: dict[str, float]) -> float:
        """Predicted per-run nanoseconds for a feature-count vector."""
        total = self.intercept_ns * features.get(INTERCEPT, 1.0)
        for group, price in self.coefficients_ns.items():
            total += price * features.get(group, 0.0)
        return total

    def machine_model(self) -> MachineModel:
        """An ordinary :class:`MachineModel` priced in nanoseconds.

        Feeding it to :func:`repro.pipeline.analyze` makes TIME come
        out in ns and VAR in ns² with no analysis changes.  The
        model's TIME excludes :attr:`intercept_ns` (fixed per-run
        harness overhead is not an operation); use
        :meth:`predicted_time_ns` when comparing against wall clock.
        ``counter_update`` stays 0: uninstrumented timing cannot
        price it.
        """
        costs = {name: 0.0 for name in _ALL_COST_FIELDS}
        for group, fields in FEATURE_GROUPS.items():
            price = self.coefficients_ns.get(group, 0.0)
            for name in fields:
                costs[name] = price
        return MachineModel(
            name=f"calibrated ({self.fingerprint.get('machine', '?')}, ns)",
            intrinsic_costs={},
            **costs,
        )

    def analyze(self, program, profile, *, loop_variance="profiled"):
        """TIME/VAR analysis in calibrated units (TIME ns, VAR ns²)."""
        from repro.pipeline import analyze

        return analyze(
            program, profile, self.machine_model(), loop_variance=loop_variance
        )

    def predicted_time_ns(self, program, profile) -> float:
        """Calibrated mean per-run wall clock, intercept included."""
        analysis = self.analyze(program, profile, loop_variance="zero")
        return analysis.total_time + self.intercept_ns

    def predicted_var_ns2(
        self, program, profile, *, loop_variance="profiled"
    ) -> float:
        """Calibrated per-run VAR in ns² (intercept is constant: no VAR)."""
        return self.analyze(
            program, profile, loop_variance=loop_variance
        ).total_var

    # -- persistence ----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "created_at": self.created_at,
            "fingerprint": dict(self.fingerprint),
            "backend": self.backend,
            "trials": self.trials,
            "warmup": self.warmup,
            "coefficients_ns": dict(self.coefficients_ns),
            "intercept_ns": self.intercept_ns,
            "r_squared": self.r_squared,
            "residuals": [dict(r) for r in self.residuals],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CalibrationProfile":
        version = int(data.get("version", 0))
        if version > CALIBRATION_VERSION:
            raise CalibrationError(
                f"calibration artifact is version {version}; this build "
                f"reads up to {CALIBRATION_VERSION}"
            )
        if "coefficients_ns" not in data:
            raise CalibrationError("calibration artifact lacks coefficients_ns")
        return cls(
            coefficients_ns={
                str(k): float(v) for k, v in data["coefficients_ns"].items()
            },
            intercept_ns=float(data.get("intercept_ns", 0.0)),
            r_squared=float(data.get("r_squared", 0.0)),
            residuals=list(data.get("residuals", [])),
            fingerprint=dict(data.get("fingerprint", {})),
            backend=str(data.get("backend", "auto")),
            trials=int(data.get("trials", 0)),
            warmup=int(data.get("warmup", 0)),
            created_at=float(data.get("created_at", 0.0)),
            version=version or CALIBRATION_VERSION,
        )

    def save(self, path: str | Path) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    @classmethod
    def load(cls, path: str | Path) -> "CalibrationProfile":
        try:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise CalibrationError(f"no calibration artifact at {path}")
        except json.JSONDecodeError as exc:
            raise CalibrationError(f"calibration artifact {path} is not JSON: {exc}")
        return cls.from_dict(data)


def fit_calibration(
    samples: list[CalibrationSample],
    *,
    ridge: float = 1e-9,
    weighting: str = "relative",
    backend: str = "auto",
    trials: int = 0,
    warmup: int = 0,
) -> CalibrationProfile:
    """Fit group prices to measured wall clock over a corpus.

    ``weighting="relative"`` (the default) scales every equation by
    1/measured, minimizing *relative* rather than absolute error —
    otherwise the corpus's longest programs dominate the fit and the
    intercept absorbs overhead the short programs never pay.
    ``weighting="none"`` is plain least squares.
    """
    if weighting not in ("relative", "none"):
        raise CalibrationError(
            f"unknown weighting {weighting!r}; expected 'relative' or 'none'"
        )
    names = [INTERCEPT] + list(FEATURE_GROUPS)
    if len(samples) < len(names):
        raise CalibrationError(
            f"calibration needs at least {len(names)} corpus programs "
            f"for {len(names)} prices; got {len(samples)}"
        )
    with span("validate.fit", attrs={"samples": len(samples)}):
        design, y = [], []
        for sample in samples:
            weight = (
                1.0 / abs(sample.measured_mean_ns)
                if weighting == "relative" and sample.measured_mean_ns
                else 1.0
            )
            design.append(
                [weight * sample.features.get(name, 0.0) for name in names]
            )
            y.append(weight * sample.measured_mean_ns)
        coeffs = _least_squares(design, y, names, ridge)

        profile = CalibrationProfile(
            coefficients_ns={g: coeffs[g] for g in FEATURE_GROUPS},
            intercept_ns=coeffs[INTERCEPT],
            backend=backend,
            trials=trials,
            warmup=warmup,
        )
        measured = [sample.measured_mean_ns for sample in samples]
        mean_y = sum(measured) / len(measured)
        ss_tot = sum((v - mean_y) ** 2 for v in measured)
        ss_res = 0.0
        for sample in samples:
            predicted = profile.predict(sample.features)
            ss_res += (predicted - sample.measured_mean_ns) ** 2
            error = (
                abs(predicted - sample.measured_mean_ns)
                / abs(sample.measured_mean_ns)
                if sample.measured_mean_ns
                else 0.0
            )
            profile.residuals.append(
                {
                    "label": sample.label,
                    "measured_ns": sample.measured_mean_ns,
                    "predicted_ns": predicted,
                    "relative_error": error,
                }
            )
        profile.r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0.0 else 1.0
    return profile
