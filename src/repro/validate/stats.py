"""Small-sample statistics for the validation observatory.

The measurement harness times a program N times and needs interval
estimates, not just point estimates:

* the **mean** gets a Student-t confidence interval
  ``x̄ ± t_{1-α/2, n-1} · s/√n``;
* the **variance** gets the chi-square interval
  ``[(n-1)s²/χ²_{1-α/2, n-1}, (n-1)s²/χ²_{α/2, n-1}]``.

Both quantile functions are computed from first principles (regularized
incomplete beta/gamma via Lentz continued fractions, inverted by
bisection) because the toolchain is stdlib-only — no scipy.  Accuracy
is pinned against published table values in
``tests/validate/test_stats.py``.

The scoring side lives here too: relative error, z-scores and
CI-coverage predicates used by :class:`repro.validate.scorer`.
"""

from __future__ import annotations

import math

_EPS = 3e-14
_FPMIN = 1e-300
_MAX_ITER = 500


def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta (Lentz's method)."""
    qab = a + b
    qap = a + 1.0
    qam = a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < _FPMIN:
        d = _FPMIN
    d = 1.0 / d
    h = d
    for m in range(1, _MAX_ITER + 1):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < _FPMIN:
            d = _FPMIN
        c = 1.0 + aa / c
        if abs(c) < _FPMIN:
            c = _FPMIN
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < _FPMIN:
            d = _FPMIN
        c = 1.0 + aa / c
        if abs(c) < _FPMIN:
            c = _FPMIN
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < _EPS:
            return h
    return h  # pragma: no cover - converges long before _MAX_ITER


def incomplete_beta(a: float, b: float, x: float) -> float:
    """The regularized incomplete beta function I_x(a, b)."""
    if not 0.0 <= x <= 1.0:
        raise ValueError(f"x must be in [0, 1], got {x}")
    if x == 0.0 or x == 1.0:
        return x
    ln_front = (
        math.lgamma(a + b)
        - math.lgamma(a)
        - math.lgamma(b)
        + a * math.log(x)
        + b * math.log1p(-x)
    )
    front = math.exp(ln_front)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def _gamma_p(a: float, x: float) -> float:
    """The regularized lower incomplete gamma P(a, x)."""
    if x < 0.0 or a <= 0.0:
        raise ValueError(f"need x >= 0 and a > 0, got x={x}, a={a}")
    if x == 0.0:
        return 0.0
    if x < a + 1.0:
        # Series representation.
        term = 1.0 / a
        total = term
        ap = a
        for _ in range(_MAX_ITER):
            ap += 1.0
            term *= x / ap
            total += term
            if abs(term) < abs(total) * _EPS:
                break
        return total * math.exp(-x + a * math.log(x) - math.lgamma(a))
    # Continued fraction for Q(a, x) = 1 - P(a, x).
    b = x + 1.0 - a
    c = 1.0 / _FPMIN
    d = 1.0 / b
    h = d
    for i in range(1, _MAX_ITER + 1):
        an = -i * (i - a)
        b += 2.0
        d = an * d + b
        if abs(d) < _FPMIN:
            d = _FPMIN
        c = b + an / c
        if abs(c) < _FPMIN:
            c = _FPMIN
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < _EPS:
            break
    q = math.exp(-x + a * math.log(x) - math.lgamma(a)) * h
    return 1.0 - q


# -- CDFs ---------------------------------------------------------------


def t_cdf(t: float, df: float) -> float:
    """CDF of Student's t distribution with ``df`` degrees of freedom."""
    if df <= 0:
        raise ValueError(f"degrees of freedom must be > 0, got {df}")
    x = df / (df + t * t)
    tail = 0.5 * incomplete_beta(df / 2.0, 0.5, x)
    return 1.0 - tail if t >= 0 else tail


def chi2_cdf(x: float, df: float) -> float:
    """CDF of the chi-square distribution with ``df`` degrees of freedom."""
    if df <= 0:
        raise ValueError(f"degrees of freedom must be > 0, got {df}")
    if x <= 0.0:
        return 0.0
    return _gamma_p(df / 2.0, x / 2.0)


def _invert(cdf, p: float, lo: float, hi: float) -> float:
    """Bisection inverse of a monotone CDF on a bracketing interval."""
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if cdf(mid) < p:
            lo = mid
        else:
            hi = mid
        if hi - lo <= 1e-12 * max(1.0, abs(hi)):
            break
    return 0.5 * (lo + hi)


def t_quantile(p: float, df: float) -> float:
    """The p-quantile of Student's t with ``df`` degrees of freedom."""
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0, 1), got {p}")
    if p == 0.5:
        return 0.0
    if p < 0.5:
        return -t_quantile(1.0 - p, df)
    hi = 2.0
    while t_cdf(hi, df) < p:
        hi *= 2.0
        if hi > 1e12:  # pragma: no cover - defensive
            break
    return _invert(lambda t: t_cdf(t, df), p, 0.0, hi)


def chi2_quantile(p: float, df: float) -> float:
    """The p-quantile of chi-square with ``df`` degrees of freedom."""
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0, 1), got {p}")
    hi = max(4.0 * df, 16.0)
    while chi2_cdf(hi, df) < p:
        hi *= 2.0
        if hi > 1e15:  # pragma: no cover - defensive
            break
    return _invert(lambda x: chi2_cdf(x, df), p, 0.0, hi)


# -- sample moments and intervals ---------------------------------------


def sample_mean(samples: list[float]) -> float:
    if not samples:
        raise ValueError("need at least one sample")
    return math.fsum(samples) / len(samples)


def sample_variance(samples: list[float]) -> float:
    """Unbiased (n-1) sample variance; 0.0 for a single sample."""
    n = len(samples)
    if n == 0:
        raise ValueError("need at least one sample")
    if n == 1:
        return 0.0
    mean = sample_mean(samples)
    return math.fsum((x - mean) ** 2 for x in samples) / (n - 1)


def mean_interval(
    samples: list[float], confidence: float = 0.95
) -> tuple[float, float]:
    """Student-t confidence interval for the population mean."""
    n = len(samples)
    if n < 2:
        raise ValueError("a mean interval needs at least 2 samples")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    mean = sample_mean(samples)
    std_err = math.sqrt(sample_variance(samples) / n)
    t = t_quantile(0.5 + confidence / 2.0, n - 1)
    return mean - t * std_err, mean + t * std_err


def variance_interval(
    samples: list[float], confidence: float = 0.95
) -> tuple[float, float]:
    """Chi-square confidence interval for the population variance."""
    n = len(samples)
    if n < 2:
        raise ValueError("a variance interval needs at least 2 samples")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    s2 = sample_variance(samples)
    alpha = 1.0 - confidence
    scale = (n - 1) * s2
    return (
        scale / chi2_quantile(1.0 - alpha / 2.0, n - 1),
        scale / chi2_quantile(alpha / 2.0, n - 1),
    )


# -- scoring ------------------------------------------------------------


def relative_error(predicted: float, measured: float) -> float:
    """|predicted − measured| / |measured| (inf when measured is 0)."""
    if measured == 0.0:
        return 0.0 if predicted == 0.0 else math.inf
    return abs(predicted - measured) / abs(measured)


def z_score(predicted: float, samples: list[float]) -> float:
    """Standardized distance of a prediction from the sample mean.

    ``(predicted − x̄) / (s/√n)`` — how many standard errors the
    prediction sits from the measured mean.  Returns 0.0 when the
    sample shows no variance and the prediction matches the mean
    exactly; ±inf when it does not.
    """
    n = len(samples)
    if n < 2:
        raise ValueError("a z-score needs at least 2 samples")
    mean = sample_mean(samples)
    std_err = math.sqrt(sample_variance(samples) / n)
    if std_err == 0.0:
        if predicted == mean:
            return 0.0
        return math.copysign(math.inf, predicted - mean)
    return (predicted - mean) / std_err


def covers(interval: tuple[float, float], value: float) -> bool:
    """Whether a (lo, hi) confidence interval contains ``value``."""
    lo, hi = interval
    return lo <= value <= hi
