"""The validation observatory: measure, calibrate, score.

The rest of the repo *predicts* average execution time and variance
in abstract cost units; this package closes the loop against reality:

* :mod:`repro.validate.measure` — wall-clock measurement harness
  (warmup + trials under ``perf_counter_ns``, programs on any
  backend or arbitrary external commands, §5 input sampling);
* :mod:`repro.validate.stats` — small-sample statistics from first
  principles (Student-t / chi-square intervals, z-scores);
* :mod:`repro.validate.calibrate` — least-squares fit of the
  abstract op-cost vector to measured nanoseconds, persisted as a
  versioned :class:`CalibrationProfile`;
* :mod:`repro.validate.corpus` — the calibration corpus (builtins +
  generated programs) and the end-to-end driver;
* :mod:`repro.validate.scorer` — continuous accuracy scoring
  exported as ``repro_validation_*`` metrics and ``validate.*`` spans.
"""

from repro.validate.calibrate import (
    CALIBRATION_VERSION,
    CalibrationError,
    CalibrationProfile,
    CalibrationSample,
    FEATURE_GROUPS,
    feature_counts,
    fit_calibration,
    machine_fingerprint,
    one_hot_model,
)
from repro.validate.corpus import (
    DEFAULT_INPUTS,
    corpus_sources,
    measure_corpus,
    run_calibration,
)
from repro.validate.measure import (
    INPUT_DISTRIBUTIONS,
    Measurement,
    MeasurementError,
    ProgramMeasurement,
    measure_callable,
    measure_command,
    measure_program,
    sample_inputs,
)
from repro.validate.scorer import (
    AccuracyScore,
    AccuracyScorer,
    ERROR_BUCKETS,
    median_relative_error,
)

__all__ = [
    "CALIBRATION_VERSION",
    "CalibrationError",
    "CalibrationProfile",
    "CalibrationSample",
    "FEATURE_GROUPS",
    "feature_counts",
    "fit_calibration",
    "machine_fingerprint",
    "one_hot_model",
    "DEFAULT_INPUTS",
    "corpus_sources",
    "measure_corpus",
    "run_calibration",
    "INPUT_DISTRIBUTIONS",
    "Measurement",
    "MeasurementError",
    "ProgramMeasurement",
    "measure_callable",
    "measure_command",
    "measure_program",
    "sample_inputs",
    "AccuracyScore",
    "AccuracyScorer",
    "ERROR_BUCKETS",
    "median_relative_error",
]
