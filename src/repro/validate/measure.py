"""The wall-clock measurement harness.

The paper *predicts* TIME and VAR; this module *measures* them.  A
measurement runs a subject N times — warmup runs first (they pay
one-time costs: backend lowering, OS caches) and are discarded, then
``trials`` timed runs under ``time.perf_counter_ns`` — and fits the
empirical mean and variance with confidence intervals
(:mod:`repro.validate.stats`).

Three kinds of subject:

* :func:`measure_program` — a compiled minifort program on any
  execution backend, one seed per trial.  Alongside the *plain* timed
  runs it takes one instrumented profiling pass over the same run
  specs (smart counter plan, loop second moments recorded), so the
  measured trip-count distributions can feed the Section-5 VAR(FREQ)
  machinery and the calibration fit knows exactly which operations
  the timed runs executed;
* :func:`measure_command` — an arbitrary external command,
  subprocess-style (the shape of the SNIPPETS exemplars: time a real
  executable over repeated runs, report mean/std);
* :func:`measure_callable` — any nullary/indexed callable, the
  primitive the other two are built on.

``sample_inputs`` draws INPUT() vectors from the Section-5 trip-count
distributions (Poisson / geometric / uniform), so a measurement can
exercise the same input randomness the VAR(FREQ) models assume.
"""

from __future__ import annotations

import math
import subprocess
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.analysis.distributions import LoopDistribution
from repro.errors import ReproError
from repro.obs import span
from repro.validate import stats


class MeasurementError(ReproError):
    """A measurement could not be taken (bad config, failing command)."""


@dataclass
class Measurement:
    """Empirical wall-clock distribution of one measured subject.

    ``samples_ns`` holds one wall-clock duration (nanoseconds) per
    timed trial, in trial order; warmup runs are not included.
    """

    label: str
    samples_ns: list[float] = field(default_factory=list)
    warmup: int = 0

    @property
    def trials(self) -> int:
        return len(self.samples_ns)

    @property
    def mean_ns(self) -> float:
        return stats.sample_mean(self.samples_ns)

    @property
    def var_ns2(self) -> float:
        """Unbiased sample variance, in ns²."""
        return stats.sample_variance(self.samples_ns)

    @property
    def std_ns(self) -> float:
        return math.sqrt(self.var_ns2)

    def mean_ci(self, confidence: float = 0.95) -> tuple[float, float]:
        """Student-t confidence interval for the true mean (ns)."""
        return stats.mean_interval(self.samples_ns, confidence)

    def var_ci(self, confidence: float = 0.95) -> tuple[float, float]:
        """Chi-square confidence interval for the true variance (ns²)."""
        return stats.variance_interval(self.samples_ns, confidence)

    def as_dict(self) -> dict:
        out: dict = {
            "label": self.label,
            "trials": self.trials,
            "warmup": self.warmup,
            "mean_ns": self.mean_ns,
            "var_ns2": self.var_ns2,
            "std_ns": self.std_ns,
            "samples_ns": list(self.samples_ns),
        }
        if self.trials >= 2:
            out["mean_ci95_ns"] = list(self.mean_ci())
            out["var_ci95_ns2"] = list(self.var_ci())
        return out


def measure_callable(
    fn: Callable[[int], object],
    *,
    trials: int,
    warmup: int = 0,
    label: str = "callable",
    clock: Callable[[], int] = time.perf_counter_ns,
) -> Measurement:
    """Time ``fn(trial_index)`` over warmup + timed trials.

    Warmup calls receive negative indices (−warmup … −1) so subjects
    that vary behavior by trial can tell the phases apart.
    """
    if trials < 1:
        raise MeasurementError("a measurement needs at least 1 trial")
    if warmup < 0:
        raise MeasurementError("warmup cannot be negative")
    measurement = Measurement(label=label, warmup=warmup)
    with span("validate.measure", attrs={"label": label, "trials": trials}):
        for i in range(-warmup, trials):
            started = clock()
            fn(i)
            elapsed = clock() - started
            if i >= 0:
                measurement.samples_ns.append(float(elapsed))
    return measurement


# -- INPUT() sampling from the Section-5 distributions -------------------

#: Accepted ``--input-dist`` spellings.
INPUT_DISTRIBUTIONS = ("constant", "poisson", "geometric", "uniform")


def sample_inputs(
    distribution: str | LoopDistribution,
    mean: float,
    count: int,
    rng,
) -> tuple[float, ...]:
    """Draw an INPUT() vector from a Section-5 trip-count distribution.

    Each of the ``count`` entries is an independent draw with the given
    mean: Poisson(mean), the geometric iterate-again law with mean
    iterations ``mean`` (Section 5's ``VAR = m(m-1)`` model), or
    uniform over ``{0, …, 2·mean}``.  ``constant`` rounds the mean.
    """
    if isinstance(distribution, LoopDistribution):
        distribution = distribution.value
    if distribution not in INPUT_DISTRIBUTIONS:
        raise MeasurementError(
            f"unknown input distribution {distribution!r}; "
            f"expected one of {list(INPUT_DISTRIBUTIONS)}"
        )
    if mean < 0:
        raise MeasurementError("input mean must be >= 0")

    def draw() -> float:
        if distribution == "constant":
            return float(round(mean))
        if distribution == "poisson":
            # Knuth's product-of-uniforms method.
            limit = math.exp(-mean)
            k, product = 0, rng.random()
            while product > limit:
                k += 1
                product *= rng.random()
            return float(k)
        if distribution == "geometric":
            # Iterations of an iterate-again loop with mean ``mean``:
            # continue with probability p = 1 - 1/m (Section 5).
            if mean <= 1.0:
                return 1.0
            p = 1.0 - 1.0 / mean
            k = 1
            while rng.random() < p:
                k += 1
            return float(k)
        return float(rng.randint(0, int(round(2 * mean))))

    return tuple(draw() for _ in range(count))


# -- measuring compiled programs ----------------------------------------


@dataclass
class ProgramMeasurement:
    """A program's timed runs plus the matching instrumented profile.

    ``measurement`` times *uninstrumented* executions; ``profile`` is
    accumulated over the **same run specs** by a separate instrumented
    pass, so Definition-3 frequencies (and, with ``loop_moments``, the
    E[FREQ²] second moments behind profiled VAR(FREQ)) describe
    exactly the operation mix of the timed runs.
    """

    label: str
    measurement: Measurement
    run_specs: list[dict]
    backend: str
    profile: object | None = None

    def as_dict(self) -> dict:
        return {
            "label": self.label,
            "backend": self.backend,
            "runs": len(self.run_specs),
            "measurement": self.measurement.as_dict(),
        }


def measure_program(
    program,
    *,
    trials: int,
    warmup: int = 2,
    backend: str = "auto",
    seed: int = 0,
    inputs: tuple[float, ...] = (),
    input_sampler: Callable[[int], tuple[float, ...]] | None = None,
    max_steps: int = 10_000_000,
    label: str = "program",
    with_profile: bool = True,
    loop_moments: bool = True,
    clock: Callable[[], int] = time.perf_counter_ns,
) -> ProgramMeasurement:
    """Measure a :class:`~repro.pipeline.CompiledProgram`'s wall clock.

    Trial ``i`` runs with seed ``seed + i`` and inputs from
    ``input_sampler(seed + i)`` when a sampler is given (see
    :func:`sample_inputs`), otherwise the fixed ``inputs`` vector —
    so programs that branch on RAND() or INPUT() are measured over the
    same run distribution the paper's TIME/VAR averages describe.
    """
    from repro.pipeline import profile_program, run_program

    specs = []
    for i in range(trials):
        spec: dict = {"seed": seed + i}
        spec["inputs"] = (
            input_sampler(seed + i) if input_sampler is not None else inputs
        )
        specs.append(spec)

    def run_once(index: int) -> None:
        # Warmup runs re-use the first trial's spec: they exist to pay
        # lowering/caching costs, not to widen the run distribution.
        spec = specs[max(index, 0)]
        run_program(
            program,
            seed=spec["seed"],
            inputs=tuple(spec["inputs"]),
            backend=backend,
            max_steps=max_steps,
        )

    measurement = measure_callable(
        run_once, trials=trials, warmup=warmup, label=label, clock=clock
    )
    profile = None
    if with_profile:
        with span("validate.profile", attrs={"label": label}):
            profile, _stats = profile_program(
                program,
                runs=[dict(spec) for spec in specs],
                record_loop_moments=loop_moments,
                max_steps=max_steps,
                backend=backend if not loop_moments else "auto",
            )
    return ProgramMeasurement(
        label=label,
        measurement=measurement,
        run_specs=specs,
        backend=backend,
        profile=profile,
    )


def measure_command(
    argv: Sequence[str],
    *,
    trials: int,
    warmup: int = 1,
    label: str | None = None,
    clock: Callable[[], int] = time.perf_counter_ns,
) -> Measurement:
    """Measure an arbitrary external command, subprocess-style.

    Each trial is one ``subprocess.run`` of ``argv`` with stdout and
    stderr swallowed; a non-zero exit status fails the measurement
    (a crashing subject would otherwise report nonsense timings).
    """
    argv = list(argv)
    if not argv:
        raise MeasurementError("measure_command needs a non-empty argv")

    def run_once(_index: int) -> None:
        result = subprocess.run(
            argv,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        if result.returncode != 0:
            raise MeasurementError(
                f"command {argv!r} exited with {result.returncode}"
            )

    return measure_callable(
        run_once,
        trials=trials,
        warmup=warmup,
        label=label or " ".join(argv),
        clock=clock,
    )
