"""Continuous accuracy scoring of TIME/VAR predictions.

The :class:`AccuracyScorer` closes the paper's loop: for each program
it takes the calibrated predictions (TIME in ns, VAR in ns²) and the
measured wall-clock distribution, and computes

* **relative error** of predicted TIME vs the measured mean, and of
  predicted VAR vs the measured sample variance;
* the **z-score** of the TIME prediction — how many standard errors
  it sits from the measured mean;
* **CI coverage** — whether TIME lands in the Student-t interval for
  the mean and VAR in the chi-square interval for the variance.

Every score is exported through the process metrics registry as
``repro_validation_*`` series (per-program gauges plus one pooled
relative-error histogram) and recorded under ``validate.score``
spans, so a dashboard scraping ``/metrics`` watches prediction
accuracy drift in real time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.obs import metrics, span
from repro.validate import stats
from repro.validate.calibrate import CalibrationProfile
from repro.validate.measure import ProgramMeasurement

#: Relative-error histogram buckets: 1% to "off by 4x".
ERROR_BUCKETS = (0.01, 0.025, 0.05, 0.1, 0.15, 0.25, 0.5, 1.0, 2.0, 4.0)


@dataclass
class AccuracyScore:
    """How one program's predictions compare to its measurement."""

    label: str
    trials: int
    measured_mean_ns: float
    measured_var_ns2: float
    predicted_time_ns: float
    predicted_var_ns2: float
    time_relative_error: float
    var_relative_error: float
    time_z_score: float
    time_in_ci: bool
    var_in_ci: bool
    mean_ci_ns: tuple[float, float]
    var_ci_ns2: tuple[float, float]
    confidence: float = 0.95

    def as_dict(self) -> dict:
        def _json_safe(value: float) -> float | None:
            return None if math.isinf(value) or math.isnan(value) else value

        return {
            "label": self.label,
            "trials": self.trials,
            "confidence": self.confidence,
            "measured_mean_ns": self.measured_mean_ns,
            "measured_var_ns2": self.measured_var_ns2,
            "predicted_time_ns": self.predicted_time_ns,
            "predicted_var_ns2": self.predicted_var_ns2,
            "time_relative_error": _json_safe(self.time_relative_error),
            "var_relative_error": _json_safe(self.var_relative_error),
            "time_z_score": _json_safe(self.time_z_score),
            "time_in_ci": self.time_in_ci,
            "var_in_ci": self.var_in_ci,
            "mean_ci_ns": list(self.mean_ci_ns),
            "var_ci_ns2": list(self.var_ci_ns2),
        }


class AccuracyScorer:
    """Scores calibrated predictions and exports the results.

    Bind a scorer to a :class:`CalibrationProfile`; each
    :meth:`score` computes one program's accuracy and publishes it to
    the current metrics registry.
    """

    def __init__(
        self,
        calibration: CalibrationProfile,
        *,
        confidence: float = 0.95,
        loop_variance="profiled",
    ):
        self.calibration = calibration
        self.confidence = confidence
        self.loop_variance = loop_variance

    # -- metric handles (get-or-create against the current registry) ----

    @staticmethod
    def _gauges():
        return {
            "time_rel": metrics.gauge(
                "repro_validation_time_relative_error",
                "Relative error of calibrated TIME vs measured mean.",
                labels=("program",),
            ),
            "var_rel": metrics.gauge(
                "repro_validation_var_relative_error",
                "Relative error of calibrated VAR vs sample variance.",
                labels=("program",),
            ),
            "time_z": metrics.gauge(
                "repro_validation_time_z_score",
                "Standard errors between calibrated TIME and measured mean.",
                labels=("program",),
            ),
            "time_in_ci": metrics.gauge(
                "repro_validation_time_in_ci",
                "1 when calibrated TIME lies in the measured mean CI.",
                labels=("program",),
            ),
            "var_in_ci": metrics.gauge(
                "repro_validation_var_in_ci",
                "1 when calibrated VAR lies in the measured variance CI.",
                labels=("program",),
            ),
        }

    def score(
        self, label: str, program, measured: ProgramMeasurement
    ) -> AccuracyScore:
        """Score one measured program against its calibrated prediction."""
        if measured.profile is None:
            raise ValueError(
                f"measurement {label!r} has no instrumented profile; "
                "measure with with_profile=True"
            )
        samples = measured.measurement.samples_ns
        if len(samples) < 2:
            raise ValueError(f"scoring {label!r} needs at least 2 trials")
        with span("validate.score", attrs={"program": label}):
            predicted_time = self.calibration.predicted_time_ns(
                program, measured.profile
            )
            predicted_var = self.calibration.predicted_var_ns2(
                program, measured.profile, loop_variance=self.loop_variance
            )
            mean_ci = stats.mean_interval(samples, self.confidence)
            var_ci = stats.variance_interval(samples, self.confidence)
            score = AccuracyScore(
                label=label,
                trials=len(samples),
                measured_mean_ns=stats.sample_mean(samples),
                measured_var_ns2=stats.sample_variance(samples),
                predicted_time_ns=predicted_time,
                predicted_var_ns2=predicted_var,
                time_relative_error=stats.relative_error(
                    predicted_time, stats.sample_mean(samples)
                ),
                var_relative_error=stats.relative_error(
                    predicted_var, stats.sample_variance(samples)
                ),
                time_z_score=stats.z_score(predicted_time, samples),
                time_in_ci=stats.covers(mean_ci, predicted_time),
                var_in_ci=stats.covers(var_ci, predicted_var),
                mean_ci_ns=mean_ci,
                var_ci_ns2=var_ci,
                confidence=self.confidence,
            )
            self._publish(score)
        return score

    def score_corpus(
        self, measured: list[tuple[str, object, ProgramMeasurement]]
    ) -> list[AccuracyScore]:
        """Score every ``(label, program, measurement)`` triple."""
        return [
            self.score(label, program, item) for label, program, item in measured
        ]

    def _publish(self, score: AccuracyScore) -> None:
        gauges = self._gauges()
        label = score.label
        if math.isfinite(score.time_relative_error):
            gauges["time_rel"].set(score.time_relative_error, program=label)
            metrics.histogram(
                "repro_validation_relative_error",
                "Pooled TIME relative error across scored programs.",
                buckets=ERROR_BUCKETS,
            ).observe(score.time_relative_error)
        if math.isfinite(score.var_relative_error):
            gauges["var_rel"].set(score.var_relative_error, program=label)
        if math.isfinite(score.time_z_score):
            gauges["time_z"].set(score.time_z_score, program=label)
        gauges["time_in_ci"].set(1.0 if score.time_in_ci else 0.0, program=label)
        gauges["var_in_ci"].set(1.0 if score.var_in_ci else 0.0, program=label)
        metrics.counter(
            "repro_validation_scores_total",
            "Accuracy scores computed since process start.",
        ).inc()


def median_relative_error(scores: list[AccuracyScore]) -> float:
    """Median TIME relative error — the headline accuracy number."""
    if not scores:
        raise ValueError("no scores to summarize")
    errors = sorted(score.time_relative_error for score in scores)
    n = len(errors)
    middle = n // 2
    if n % 2:
        return errors[middle]
    return 0.5 * (errors[middle - 1] + errors[middle])
