"""The calibration corpus and the end-to-end calibration driver.

A least-squares fit of 9 prices needs a corpus whose operation mixes
span the feature space: the builtins contribute real kernels
(Livermore loops, CFD, sorting, root finding, GOTO-heavy control
flow) and the seeded :class:`ProgramGenerator` fills in as many more
shapes as requested.  :func:`run_calibration` measures every corpus
program with the harness, extracts feature counts from the matching
instrumented profiles, and fits a :class:`CalibrationProfile`.
"""

from __future__ import annotations

from repro.obs import span
from repro.validate.calibrate import (
    CalibrationProfile,
    CalibrationSample,
    feature_counts,
    fit_calibration,
)
from repro.validate.measure import ProgramMeasurement, measure_program

#: INPUT() vectors for builtins that read inputs; everything else
#: runs with an empty input vector.
DEFAULT_INPUTS: dict[str, tuple[float, ...]] = {
    "newton": (9.0,),
    "irreducible": (7.0,),
}


def corpus_sources(
    *,
    builtins: bool = True,
    generated: int = 6,
    gen_seed: int = 1000,
    only: tuple[str, ...] | None = None,
) -> list[tuple[str, str]]:
    """``(label, source)`` pairs for the calibration corpus.

    ``only`` restricts the builtins to named ones (the CI smoke job
    calibrates on 3); generated programs are appended after the
    builtins with labels ``gen-<seed>``.
    """
    from repro.workloads import builtin_sources
    from repro.workloads.generators import ProgramGenerator

    pairs: list[tuple[str, str]] = []
    if builtins:
        for label, source in builtin_sources():
            if only is not None and label not in only:
                continue
            pairs.append((label, source))
    for i in range(generated):
        seed = gen_seed + i
        pairs.append((f"gen-{seed}", ProgramGenerator(seed).source()))
    return pairs


def measure_corpus(
    sources: list[tuple[str, str]],
    *,
    trials: int = 5,
    warmup: int = 2,
    backend: str = "auto",
    seed: int = 0,
    max_steps: int = 10_000_000,
    loop_moments: bool = True,
    progress=None,
) -> list[tuple[str, object, ProgramMeasurement]]:
    """Compile and measure every corpus program.

    Returns ``(label, CompiledProgram, ProgramMeasurement)`` triples;
    ``progress(label, measurement)`` is called after each program so
    the CLI can narrate long corpus runs.
    """
    from repro.pipeline import compile_source

    results = []
    with span("validate.corpus", attrs={"programs": len(sources)}):
        for label, source in sources:
            program = compile_source(source)
            measured = measure_program(
                program,
                trials=trials,
                warmup=warmup,
                backend=backend,
                seed=seed,
                inputs=DEFAULT_INPUTS.get(label, ()),
                max_steps=max_steps,
                label=label,
                loop_moments=loop_moments,
            )
            if progress is not None:
                progress(label, measured)
            results.append((label, program, measured))
    return results


def run_calibration(
    sources: list[tuple[str, str]] | None = None,
    *,
    trials: int = 5,
    warmup: int = 2,
    backend: str = "auto",
    seed: int = 0,
    max_steps: int = 10_000_000,
    ridge: float = 1e-9,
    progress=None,
) -> tuple[CalibrationProfile, list[tuple[str, object, ProgramMeasurement]]]:
    """Measure a corpus and fit the cost model against it.

    Returns the fitted profile plus the raw per-program measurements
    (so callers can score accuracy without re-measuring).
    """
    if sources is None:
        sources = corpus_sources()
    measured = measure_corpus(
        sources,
        trials=trials,
        warmup=warmup,
        backend=backend,
        seed=seed,
        max_steps=max_steps,
        progress=progress,
    )
    samples = [
        CalibrationSample(
            label=label,
            features=feature_counts(program, item.profile),
            measured_mean_ns=item.measurement.mean_ns,
            measured_var_ns2=item.measurement.var_ns2,
            trials=item.measurement.trials,
        )
        for label, program, item in measured
    ]
    profile = fit_calibration(
        samples, ridge=ridge, backend=backend, trials=trials, warmup=warmup
    )
    return profile, measured
