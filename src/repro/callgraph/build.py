"""Call graph construction and bottom-up ordering.

The paper's rule 2 (``COST(call) = TIME(START_callee)``) requires
visiting procedures bottom-up in the call graph.  Recursive procedures
form strongly connected components; the interprocedural driver applies
the geometric-closure extension to those (the paper defers recursion to
[Sar87, Sar89]).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang import ast
from repro.lang.symbols import INTRINSICS, CheckedProgram


@dataclass
class CallGraph:
    """Static call graph over a program's procedures."""

    #: caller -> {callee -> number of textual call sites}.
    calls: dict[str, dict[str, int]] = field(default_factory=dict)
    #: Strongly connected components in *bottom-up* order: every
    #: component is listed after all components it calls into.
    sccs: list[list[str]] = field(default_factory=list)

    def callees(self, name: str) -> list[str]:
        return sorted(self.calls.get(name, {}))

    def callers(self, name: str) -> list[str]:
        return sorted(
            caller for caller, callees in self.calls.items() if name in callees
        )

    def is_recursive(self, name: str) -> bool:
        """True when ``name`` is in a cycle (including self-recursion)."""
        for scc in self.sccs:
            if name in scc:
                return len(scc) > 1 or name in self.calls.get(name, {})
        return False

    def bottom_up(self) -> list[str]:
        """All procedures, callees before callers."""
        return [name for scc in self.sccs for name in scc]


def _call_sites(proc: ast.Procedure, checked: CheckedProgram) -> dict[str, int]:
    """Callee -> number of textual call sites in ``proc``."""
    table = checked.tables[proc.name]
    sites: dict[str, int] = {}

    def visit_expr(expr: ast.Expr) -> None:
        for node in ast.walk_expr(expr):
            if isinstance(node, ast.FuncCall):
                info = table.lookup(node.name)
                if info is not None and info.is_array:
                    continue
                if node.name in INTRINSICS:
                    continue
                sites[node.name] = sites.get(node.name, 0) + 1

    for stmt in proc.walk_statements():
        if isinstance(stmt, ast.CallStmt):
            sites[stmt.name] = sites.get(stmt.name, 0) + 1
        for expr in ast.stmt_expressions(stmt):
            visit_expr(expr)
    return sites


def _tarjan_sccs(
    nodes: list[str], succ: dict[str, dict[str, int]]
) -> list[list[str]]:
    """Tarjan's SCC algorithm (iterative); emits SCCs bottom-up."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = [0]

    for root in nodes:
        if root in index:
            continue
        work: list[tuple[str, list[str], int]] = [
            (root, sorted(succ.get(root, {})), 0)
        ]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, targets, i = work.pop()
            advanced = False
            while i < len(targets):
                target = targets[i]
                i += 1
                if target not in index:
                    index[target] = lowlink[target] = counter[0]
                    counter[0] += 1
                    stack.append(target)
                    on_stack.add(target)
                    work.append((node, targets, i))
                    work.append((target, sorted(succ.get(target, {})), 0))
                    advanced = True
                    break
                if target in on_stack:
                    lowlink[node] = min(lowlink[node], index[target])
            if advanced:
                continue
            if lowlink[node] == index[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(sorted(component))
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return sccs


def build_call_graph(checked: CheckedProgram) -> CallGraph:
    """Build the call graph of a checked program."""
    graph = CallGraph()
    names = sorted(checked.unit.procedures)
    for name in names:
        graph.calls[name] = _call_sites(checked.unit.procedures[name], checked)
    graph.sccs = _tarjan_sccs(names, graph.calls)
    return graph
