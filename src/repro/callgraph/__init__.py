"""Call graphs: construction, SCC condensation, bottom-up ordering."""

from repro.callgraph.build import CallGraph, build_call_graph

__all__ = ["CallGraph", "build_call_graph"]
