"""Architecture cost models and per-node COST estimation.

The paper assumes "the (average) local execution time of each node ...
has already been estimated, and is stored as COST(u)" and notes that
the same frequency information can be reused for different target
architectures.  This package provides table-driven machine models and
the static estimator that assigns COST(u) to CFG nodes.
"""

from repro.costs.model import MachineModel, OPTIMIZING_MACHINE, SCALAR_MACHINE
from repro.costs.estimate import CostEstimator, node_cost

__all__ = [
    "MachineModel",
    "SCALAR_MACHINE",
    "OPTIMIZING_MACHINE",
    "CostEstimator",
    "node_cost",
]
