"""Static COST(u) estimation for CFG nodes.

COST(u) is the *local* execution time of node u on the target machine:
it excludes the time spent in called procedures, which the
interprocedural analysis adds later via the paper's rule 2
(``COST(call) = TIME(START_callee)``).  To support that rule, the
estimator also reports the user procedures each node invokes
(a CALL statement, or user FUNCTIONs inside expressions).

The same estimator doubles as the interpreter's dynamic cost charger:
the interpreter charges exactly ``node_cost(u)`` cycles per execution
of u, which makes the analytical identity

    TIME(START) × runs  ==  total interpreted cost

hold exactly — the key cross-validation invariant of this repo.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AnalysisError
from repro.lang import ast
from repro.lang.symbols import INTRINSICS, CheckedProgram, SymbolTable
from repro.cfg.graph import CFGNode, ControlFlowGraph, StmtKind
from repro.costs.model import MachineModel


def expr_type(
    expr: ast.Expr, table: SymbolTable, checked: CheckedProgram
) -> ast.Type:
    """The static type of an expression (INTEGER / REAL / LOGICAL)."""
    if isinstance(expr, ast.IntLit):
        return ast.Type.INTEGER
    if isinstance(expr, ast.RealLit):
        return ast.Type.REAL
    if isinstance(expr, (ast.LogicalLit,)):
        return ast.Type.LOGICAL
    if isinstance(expr, ast.StringLit):
        return ast.Type.INTEGER  # strings only appear in PRINT
    if isinstance(expr, ast.VarRef):
        if expr.name in table.constants:
            value = table.constants[expr.name]
            return ast.Type.INTEGER if isinstance(value, int) else ast.Type.REAL
        info = table.lookup(expr.name)
        if info is None:
            from repro.lang.symbols import implicit_type

            return implicit_type(expr.name)
        return info.type
    if isinstance(expr, ast.ArrayRef):
        info = table.lookup(expr.name)
        return info.type if info else ast.Type.REAL
    if isinstance(expr, ast.FuncCall):
        info = table.lookup(expr.name)
        if info is not None and info.is_array:
            return info.type
        if expr.name in INTRINSICS:
            result = INTRINSICS[expr.name][2]
            if result == "integer":
                return ast.Type.INTEGER
            if result == "real":
                return ast.Type.REAL
            # "match": promoted type of the arguments.
            arg_types = [expr_type(a, table, checked) for a in expr.args]
            if all(t is ast.Type.INTEGER for t in arg_types):
                return ast.Type.INTEGER
            return ast.Type.REAL
        callee = checked.unit.procedures.get(expr.name)
        if callee is not None and callee.return_type is not None:
            return callee.return_type
        return ast.Type.REAL
    if isinstance(expr, ast.Unary):
        if expr.op is ast.UnOp.NOT:
            return ast.Type.LOGICAL
        return expr_type(expr.operand, table, checked)
    if isinstance(expr, ast.Binary):
        if expr.op.is_comparison or expr.op.is_logical:
            return ast.Type.LOGICAL
        left = expr_type(expr.left, table, checked)
        right = expr_type(expr.right, table, checked)
        if left is ast.Type.INTEGER and right is ast.Type.INTEGER:
            return ast.Type.INTEGER
        return ast.Type.REAL
    raise AnalysisError(f"cannot type expression {expr!r}")


@dataclass
class NodeCost:
    """Static cost summary of one CFG node."""

    local: float
    #: User procedures this node calls (with multiplicity): the
    #: interprocedural pass adds TIME(START_callee) per entry.
    calls: list[str]


class CostEstimator:
    """Assigns COST(u) to CFG nodes for a given machine model."""

    def __init__(self, checked: CheckedProgram, model: MachineModel):
        self.checked = checked
        self.model = model

    # -- expressions -----------------------------------------------------

    def expr_cost(self, expr: ast.Expr, table: SymbolTable) -> NodeCost:
        model = self.model
        if isinstance(expr, (ast.IntLit, ast.RealLit, ast.LogicalLit, ast.StringLit)):
            return NodeCost(model.const, [])
        if isinstance(expr, ast.VarRef):
            if expr.name in table.constants:
                return NodeCost(model.const, [])
            return NodeCost(model.load, [])
        if isinstance(expr, ast.ArrayRef):
            cost = model.load + model.array_index * len(expr.indices)
            calls: list[str] = []
            for index in expr.indices:
                sub = self.expr_cost(index, table)
                cost += sub.local
                calls += sub.calls
            return NodeCost(cost, calls)
        if isinstance(expr, ast.FuncCall):
            info = table.lookup(expr.name)
            if info is not None and info.is_array:
                # Really an array reference.
                ref = ast.ArrayRef(expr.line, expr.name, expr.args)
                return self.expr_cost(ref, table)
            cost = 0.0
            calls = []
            for arg in expr.args:
                sub = self.expr_cost(arg, table)
                cost += sub.local
                calls += sub.calls
            if expr.name in INTRINSICS:
                cost += model.intrinsic(expr.name)
            else:
                cost += model.call_overhead
                calls.append(expr.name)
            return NodeCost(cost, calls)
        if isinstance(expr, ast.Unary):
            sub = self.expr_cost(expr.operand, table)
            if expr.op is ast.UnOp.NOT:
                op_cost = model.logical
            elif expr.op is ast.UnOp.POS:
                op_cost = 0.0
            else:
                operand_type = expr_type(expr.operand, table, self.checked)
                op_cost = (
                    model.int_add
                    if operand_type is ast.Type.INTEGER
                    else model.fp_add
                )
            return NodeCost(sub.local + op_cost, sub.calls)
        if isinstance(expr, ast.Binary):
            left = self.expr_cost(expr.left, table)
            right = self.expr_cost(expr.right, table)
            op_cost = self._binop_cost(expr, table)
            return NodeCost(
                left.local + right.local + op_cost, left.calls + right.calls
            )
        raise AnalysisError(f"cannot cost expression {expr!r}")

    def _binop_cost(self, expr: ast.Binary, table: SymbolTable) -> float:
        model = self.model
        op = expr.op
        if op.is_comparison:
            return model.compare
        if op.is_logical:
            return model.logical
        if op is ast.BinOp.POW:
            return model.power
        result = expr_type(expr, table, self.checked)
        is_int = result is ast.Type.INTEGER
        if op in (ast.BinOp.ADD, ast.BinOp.SUB):
            return model.int_add if is_int else model.fp_add
        if op is ast.BinOp.MUL:
            return model.int_mul if is_int else model.fp_mul
        return model.int_div if is_int else model.fp_div

    # -- nodes -------------------------------------------------------------

    def node_cost(self, node: CFGNode, proc_name: str) -> NodeCost:
        """COST(u) for one CFG node, plus its call sites."""
        model = self.model
        table = self.checked.tables[proc_name]
        kind = node.kind
        if kind in _ZERO_COST_KINDS:
            return NodeCost(0.0, [])
        if kind is StmtKind.ASSIGN:
            stmt = node.stmt
            assert isinstance(stmt, ast.Assign)
            value = self.expr_cost(stmt.value, table)
            cost = value.local + model.store
            calls = list(value.calls)
            if isinstance(stmt.target, ast.ArrayRef):
                cost += model.array_index * len(stmt.target.indices)
                for index in stmt.target.indices:
                    sub = self.expr_cost(index, table)
                    cost += sub.local
                    calls += sub.calls
            return NodeCost(cost, calls)
        if kind in (StmtKind.IF, StmtKind.WHILE_TEST):
            cond = self.expr_cost(node.cond, table)
            return NodeCost(cond.local + model.branch, cond.calls)
        if kind is StmtKind.CGOTO:
            sel = self.expr_cost(node.cond, table)
            return NodeCost(sel.local + model.branch, sel.calls)
        if kind is StmtKind.AIF:
            value = self.expr_cost(node.cond, table)
            # Sign dispatch: two compares plus the branch.
            return NodeCost(
                value.local + 2 * model.compare + model.branch, value.calls
            )
        if kind is StmtKind.CALL:
            stmt = node.stmt
            assert isinstance(stmt, ast.CallStmt)
            cost = model.call_overhead
            calls = [stmt.name]
            for arg in stmt.args:
                if isinstance(arg, ast.VarRef):
                    continue  # by-reference: no evaluation
                sub = self.expr_cost(arg, table)
                cost += sub.local
                calls += sub.calls
            return NodeCost(cost, calls)
        if kind is StmtKind.PRINT:
            stmt = node.stmt
            assert isinstance(stmt, ast.PrintStmt)
            cost = model.print_item * max(1, len(stmt.items))
            calls = []
            for item in stmt.items:
                sub = self.expr_cost(item, table)
                cost += sub.local
                calls += sub.calls
            return NodeCost(cost, calls)
        if kind is StmtKind.DO_INIT:
            stmt = node.stmt
            assert isinstance(stmt, ast.DoLoop)
            cost = 2 * model.store + model.int_add + model.int_div
            calls = []
            exprs = [stmt.start, stmt.stop] + (
                [stmt.step] if stmt.step is not None else []
            )
            for expr in exprs:
                sub = self.expr_cost(expr, table)
                cost += sub.local
                calls += sub.calls
            return NodeCost(cost, calls)
        if kind is StmtKind.DO_TEST:
            return NodeCost(model.compare + model.branch, [])
        if kind is StmtKind.DO_INCR:
            return NodeCost(2 * model.int_add + model.store, [])
        if kind is StmtKind.STOP:
            return NodeCost(0.0, [])
        raise AnalysisError(f"no cost rule for node kind {kind}")

    def cfg_costs(
        self, cfg: ControlFlowGraph, proc_name: str
    ) -> dict[int, NodeCost]:
        """COST(u) for every node of one procedure's CFG."""
        return {
            node.id: self.node_cost(node, proc_name) for node in cfg
        }


_ZERO_COST_KINDS = frozenset(
    {
        StmtKind.ENTRY,
        StmtKind.EXIT,
        StmtKind.NOOP,
        StmtKind.START,
        StmtKind.STOP_NODE,
        StmtKind.PREHEADER,
        StmtKind.POSTEXIT,
    }
)


def node_cost(
    node: CFGNode,
    proc_name: str,
    checked: CheckedProgram,
    model: MachineModel,
) -> NodeCost:
    """Convenience wrapper: COST(u) of one node."""
    return CostEstimator(checked, model).node_cost(node, proc_name)
