"""Table-driven machine cost models.

Costs are abstract cycles.  Two reference machines stand in for the
paper's "compiler optimization OFF/ON" configurations on the IBM 3090:
the optimizing machine executes compute operations several times
faster (register reuse, vectorization), while the cost of a profiling
counter update is the same on both — counter updates are memory
increments the optimizer cannot remove.  This reproduces the paper's
Table-1 effect that profiling overhead is *relatively* larger on
optimized code.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class MachineModel:
    """Abstract per-operation cycle costs for one target machine."""

    name: str
    load: float = 2.0
    store: float = 2.0
    const: float = 1.0
    int_add: float = 1.0
    int_mul: float = 4.0
    int_div: float = 8.0
    fp_add: float = 3.0
    fp_mul: float = 5.0
    fp_div: float = 10.0
    power: float = 25.0
    compare: float = 1.0
    logical: float = 1.0
    branch: float = 2.0
    call_overhead: float = 15.0
    array_index: float = 2.0
    print_item: float = 20.0
    intrinsic_default: float = 12.0
    intrinsic_costs: dict[str, float] = field(default_factory=dict)
    #: Cost of one profiling counter update (a memory increment); the
    #: same on optimized and unoptimized machines.
    counter_update: float = 2.0

    def intrinsic(self, name: str) -> float:
        return self.intrinsic_costs.get(name, self.intrinsic_default)


#: "Compiler optimization OFF": a plain scalar machine.
SCALAR_MACHINE = MachineModel(
    name="scalar (optimization OFF)",
    intrinsic_costs={
        "SQRT": 20.0,
        "EXP": 30.0,
        "LOG": 30.0,
        "SIN": 30.0,
        "COS": 30.0,
        "ATAN": 35.0,
        "MOD": 9.0,
        "MIN": 2.0,
        "MAX": 2.0,
        "ABS": 1.0,
        "SIGN": 2.0,
        "INT": 1.0,
        "NINT": 2.0,
        "REAL": 1.0,
        "FLOAT": 1.0,
        "IRAND": 12.0,
        "RAND": 10.0,
        "INPUT": 4.0,
    },
)

#: "Compiler optimization ON": register reuse and vector pipelines make
#: compute much cheaper; counter updates do not speed up.
OPTIMIZING_MACHINE = MachineModel(
    name="optimizing (optimization ON)",
    load=0.5,
    store=0.5,
    const=0.0,
    int_add=0.5,
    int_mul=1.0,
    int_div=3.0,
    fp_add=0.5,
    fp_mul=0.5,
    fp_div=3.0,
    power=8.0,
    compare=0.5,
    logical=0.5,
    branch=1.0,
    call_overhead=8.0,
    array_index=0.5,
    print_item=15.0,
    intrinsic_default=6.0,
    intrinsic_costs={
        "SQRT": 8.0,
        "EXP": 12.0,
        "LOG": 12.0,
        "SIN": 12.0,
        "COS": 12.0,
        "ATAN": 14.0,
        "MOD": 4.0,
        "MIN": 1.0,
        "MAX": 1.0,
        "ABS": 0.5,
        "SIGN": 1.0,
        "INT": 0.5,
        "NINT": 1.0,
        "REAL": 0.5,
        "FLOAT": 0.5,
        "IRAND": 6.0,
        "RAND": 5.0,
        "INPUT": 2.0,
    },
    counter_update=2.0,
)
