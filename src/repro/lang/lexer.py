"""Line-oriented lexer for minifort.

The lexer is deliberately forgiving about layout: it accepts free-form
source, treats ``!`` as an end-of-line comment, treats a full line whose
first non-blank character is ``C`` followed by a space (or ``*`` in
column one) as a comment line, and is case-insensitive for keywords,
names and dot-operators.

Statement labels (``10 CONTINUE``) are ordinary INT tokens at the start
of a line; the parser decides whether a leading integer is a label.
"""

from __future__ import annotations

from repro.errors import LexError
from repro.lang.tokens import (
    DOT_OPERATORS,
    KEYWORDS,
    MODERN_OPERATORS,
    Token,
    TokenKind,
)

_SINGLE_CHAR = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    ",": TokenKind.COMMA,
    ":": TokenKind.COLON,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "/": TokenKind.SLASH,
}


class Lexer:
    """Tokenizes minifort source text into a flat list of tokens.

    NEWLINE tokens delimit statements; consecutive blank/comment lines
    collapse to a single NEWLINE.  The token stream always ends with a
    single EOF token.
    """

    def __init__(self, source: str):
        self.source = source
        self.tokens: list[Token] = []

    def tokenize(self) -> list[Token]:
        """Return the full token list for the source text.

        A line whose last non-blank character is ``&`` continues onto
        the next line (free-form Fortran style).
        """
        last_line = 0
        pending = ""
        pending_line = 0
        for lineno, raw in enumerate(self.source.splitlines(), start=1):
            line = self._strip_comment(raw)
            if not line.strip():
                continue
            if pending:
                line = pending + " " + line.strip()
                lineno = pending_line
                pending = ""
            stripped = line.rstrip()
            if stripped.endswith("&"):
                pending = stripped[:-1]
                pending_line = lineno
                continue
            self._lex_line(line, lineno)
            self.tokens.append(Token(TokenKind.NEWLINE, "\n", lineno))
            last_line = max(last_line, lineno)
        if pending:
            raise LexError("continuation '&' at end of file", pending_line)
        self.tokens.append(Token(TokenKind.EOF, "", last_line + 1))
        return self.tokens

    @staticmethod
    def _strip_comment(raw: str) -> str:
        # Fixed-form-style comment lines: '*' or 'C ' in column one.
        if raw[:1] == "*":
            return ""
        if raw[:1] in {"C", "c"} and (len(raw) == 1 or raw[1] in " \t"):
            return ""
        if raw.lstrip()[:1] == "!":
            return ""
        # An end-of-line "!" comment (never inside a string literal).
        in_string = False
        for i, ch in enumerate(raw):
            if ch == "'":
                in_string = not in_string
            elif ch == "!" and not in_string:
                return raw[:i]
        return raw

    def _lex_line(self, line: str, lineno: int) -> None:
        i = 0
        n = len(line)
        while i < n:
            ch = line[i]
            if ch in " \t\r":
                i += 1
                continue
            if ch == "'":
                i = self._lex_string(line, i, lineno)
                continue
            if ch.isdigit() or (ch == "." and i + 1 < n and line[i + 1].isdigit()):
                i = self._lex_number(line, i, lineno)
                continue
            if ch == ".":
                i = self._lex_dot_operator(line, i, lineno)
                continue
            if ch.isalpha() or ch == "_":
                i = self._lex_name(line, i, lineno)
                continue
            two = line[i : i + 2]
            if two == "**":
                self._emit(TokenKind.POWER, "**", lineno)
                i += 2
                continue
            if two in MODERN_OPERATORS:
                self._emit(MODERN_OPERATORS[two], two, lineno)
                i += 2
                continue
            if ch in "<>":
                self._emit(MODERN_OPERATORS[ch], ch, lineno)
                i += 1
                continue
            if ch == "=" and two == "==":
                self._emit(TokenKind.EQ, "==", lineno)
                i += 2
                continue
            if ch == "=":
                self._emit(TokenKind.EQUALS, "=", lineno)
                i += 1
                continue
            if ch == "*":
                self._emit(TokenKind.STAR, "*", lineno)
                i += 1
                continue
            if ch in _SINGLE_CHAR:
                self._emit(_SINGLE_CHAR[ch], ch, lineno)
                i += 1
                continue
            raise LexError(f"unexpected character {ch!r}", lineno)

    def _lex_string(self, line: str, start: int, lineno: int) -> int:
        i = start + 1
        chars: list[str] = []
        while i < len(line):
            if line[i] == "'":
                # Doubled quote is an escaped quote, Fortran style.
                if i + 1 < len(line) and line[i + 1] == "'":
                    chars.append("'")
                    i += 2
                    continue
                self._emit(TokenKind.STRING, "".join(chars), lineno)
                return i + 1
            chars.append(line[i])
            i += 1
        raise LexError("unterminated string literal", lineno)

    def _lex_number(self, line: str, start: int, lineno: int) -> int:
        i = start
        n = len(line)
        while i < n and line[i].isdigit():
            i += 1
        is_real = False
        if i < n and line[i] == ".":
            # `1.5`, `1.` and `1.E3` are reals, but `1.GE.` is INT then
            # a dot-operator: look ahead for a letter sequence ending in
            # another dot.
            if not self._dot_starts_operator(line, i):
                is_real = True
                i += 1
                while i < n and line[i].isdigit():
                    i += 1
        if i < n and line[i] in "eEdD" and self._has_exponent(line, i):
            is_real = True
            i += 1
            if i < n and line[i] in "+-":
                i += 1
            while i < n and line[i].isdigit():
                i += 1
        text = line[start:i].upper().replace("D", "E")
        kind = TokenKind.REAL if is_real else TokenKind.INT
        self._emit(kind, text, lineno)
        return i

    @staticmethod
    def _dot_starts_operator(line: str, i: int) -> bool:
        """True when the ``.`` at index ``i`` begins a ``.XX.`` operator."""
        j = i + 1
        while j < len(line) and line[j].isalpha():
            j += 1
        return j > i + 1 and j < len(line) and line[j] == "." and (
            line[i + 1 : j].upper() in DOT_OPERATORS
        )

    @staticmethod
    def _has_exponent(line: str, i: int) -> bool:
        j = i + 1
        if j < len(line) and line[j] in "+-":
            j += 1
        return j < len(line) and line[j].isdigit()

    def _lex_dot_operator(self, line: str, start: int, lineno: int) -> int:
        j = start + 1
        while j < len(line) and line[j].isalpha():
            j += 1
        name = line[start + 1 : j].upper()
        if j >= len(line) or line[j] != "." or name not in DOT_OPERATORS:
            raise LexError(f"malformed dot operator {line[start:j + 1]!r}", lineno)
        self._emit(DOT_OPERATORS[name], f".{name}.", lineno)
        return j + 1

    def _lex_name(self, line: str, start: int, lineno: int) -> int:
        i = start
        while i < len(line) and (line[i].isalnum() or line[i] == "_"):
            i += 1
        text = line[start:i].upper()
        if text in KEYWORDS:
            self._emit(TokenKind.KEYWORD, text, lineno)
        else:
            self._emit(TokenKind.NAME, text, lineno)
        return i

    def _emit(self, kind: TokenKind, value: str, lineno: int) -> None:
        self.tokens.append(Token(kind, value, lineno))


def tokenize(source: str) -> list[Token]:
    """Tokenize minifort source text; convenience wrapper over Lexer."""
    return Lexer(source).tokenize()
