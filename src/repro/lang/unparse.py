"""Render AST expressions and statements back to compact source text.

Used for CFG node labels, Figure-3-style reports and error messages.
The output is canonicalized (upper case, minimal spacing), not a
round-trippable pretty printer.
"""

from __future__ import annotations

from repro.lang import ast

_BINOP_TEXT = {
    ast.BinOp.ADD: "+",
    ast.BinOp.SUB: "-",
    ast.BinOp.MUL: "*",
    ast.BinOp.DIV: "/",
    ast.BinOp.POW: "**",
    ast.BinOp.LT: ".LT.",
    ast.BinOp.LE: ".LE.",
    ast.BinOp.GT: ".GT.",
    ast.BinOp.GE: ".GE.",
    ast.BinOp.EQ: ".EQ.",
    ast.BinOp.NE: ".NE.",
    ast.BinOp.AND: ".AND.",
    ast.BinOp.OR: ".OR.",
}

_PRECEDENCE = {
    ast.BinOp.OR: 1,
    ast.BinOp.AND: 2,
    ast.BinOp.LT: 4,
    ast.BinOp.LE: 4,
    ast.BinOp.GT: 4,
    ast.BinOp.GE: 4,
    ast.BinOp.EQ: 4,
    ast.BinOp.NE: 4,
    ast.BinOp.ADD: 5,
    ast.BinOp.SUB: 5,
    ast.BinOp.MUL: 6,
    ast.BinOp.DIV: 6,
    ast.BinOp.POW: 8,
}


def unparse_expr(expr: ast.Expr, parent_prec: int = 0) -> str:
    """Render an expression with minimal parenthesization."""
    if isinstance(expr, ast.IntLit):
        return str(expr.value)
    if isinstance(expr, ast.RealLit):
        return repr(expr.value)
    if isinstance(expr, ast.LogicalLit):
        return ".TRUE." if expr.value else ".FALSE."
    if isinstance(expr, ast.StringLit):
        return f"'{expr.value}'"
    if isinstance(expr, ast.VarRef):
        return expr.name
    if isinstance(expr, ast.ArrayRef):
        args = ", ".join(unparse_expr(i) for i in expr.indices)
        return f"{expr.name}({args})"
    if isinstance(expr, ast.FuncCall):
        args = ", ".join(unparse_expr(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, ast.Unary):
        op = {"-": "-", "+": "+", ".NOT.": ".NOT. "}[expr.op.value]
        inner = unparse_expr(expr.operand, 7)
        text = f"{op}{inner}"
        return f"({text})" if parent_prec > 7 else text
    if isinstance(expr, ast.Binary):
        prec = _PRECEDENCE[expr.op]
        if expr.op is ast.BinOp.POW:
            # ** is right-associative: parenthesize a POW on the left.
            left = unparse_expr(expr.left, prec + 1)
            right = unparse_expr(expr.right, prec)
        else:
            left = unparse_expr(expr.left, prec)
            right = unparse_expr(expr.right, prec + 1)
        text = f"{left} {_BINOP_TEXT[expr.op]} {right}"
        return f"({text})" if parent_prec > prec else text
    raise TypeError(f"cannot unparse {expr!r}")


def stmt_text(stmt: ast.Stmt) -> str:
    """A one-line summary of a statement for display purposes."""
    if isinstance(stmt, ast.Assign):
        return f"{unparse_expr(stmt.target)} = {unparse_expr(stmt.value)}"
    if isinstance(stmt, ast.LogicalIf):
        return f"IF ({unparse_expr(stmt.cond)}) {stmt_text(stmt.stmt)}"
    if isinstance(stmt, ast.IfBlock):
        return f"IF ({unparse_expr(stmt.arms[0][0])}) THEN"
    if isinstance(stmt, ast.DoLoop):
        step = f", {unparse_expr(stmt.step)}" if stmt.step is not None else ""
        return (
            f"DO {stmt.var} = {unparse_expr(stmt.start)}, "
            f"{unparse_expr(stmt.stop)}{step}"
        )
    if isinstance(stmt, ast.DoWhile):
        return f"DO WHILE ({unparse_expr(stmt.cond)})"
    if isinstance(stmt, ast.Goto):
        return f"GOTO {stmt.target}"
    if isinstance(stmt, ast.ArithmeticIf):
        return (
            f"IF ({unparse_expr(stmt.expr)}) "
            f"{stmt.negative}, {stmt.zero}, {stmt.positive}"
        )
    if isinstance(stmt, ast.ComputedGoto):
        targets = ", ".join(str(t) for t in stmt.targets)
        return f"GOTO ({targets}), {unparse_expr(stmt.selector)}"
    if isinstance(stmt, ast.CallStmt):
        if stmt.args:
            args = ", ".join(unparse_expr(a) for a in stmt.args)
            return f"CALL {stmt.name}({args})"
        return f"CALL {stmt.name}"
    if isinstance(stmt, ast.ReturnStmt):
        return "RETURN"
    if isinstance(stmt, ast.StopStmt):
        return "STOP"
    if isinstance(stmt, ast.ContinueStmt):
        return "CONTINUE"
    if isinstance(stmt, ast.PrintStmt):
        return "PRINT *"
    if isinstance(stmt, ast.Declaration):
        names = ", ".join(name for name, _ in stmt.names)
        return f"{stmt.type.value} {names}"
    if isinstance(stmt, ast.ParameterStmt):
        return "PARAMETER"
    return type(stmt).__name__
