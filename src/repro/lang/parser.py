"""Recursive-descent parser for minifort.

The parser consumes the token stream produced by
:mod:`repro.lang.lexer` and builds the AST of :mod:`repro.lang.ast`.
It is statement-oriented: every statement occupies one source line, and
block constructs (IF/THEN/ENDIF, DO/ENDDO, labelled DO) consume the
following lines until their terminator.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.lang import ast
from repro.lang.lexer import tokenize
from repro.lang.tokens import Token, TokenKind

_COMPARISON_OPS = {
    TokenKind.LT: ast.BinOp.LT,
    TokenKind.LE: ast.BinOp.LE,
    TokenKind.GT: ast.BinOp.GT,
    TokenKind.GE: ast.BinOp.GE,
    TokenKind.EQ: ast.BinOp.EQ,
    TokenKind.NE: ast.BinOp.NE,
}

_TYPE_KEYWORDS = {
    "INTEGER": ast.Type.INTEGER,
    "REAL": ast.Type.REAL,
    "LOGICAL": ast.Type.LOGICAL,
}


class Parser:
    """Parses a token list into a :class:`repro.lang.ast.ProgramUnit`."""

    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token stream helpers ------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def _check(self, kind: TokenKind, value: str | None = None) -> bool:
        token = self._peek()
        if token.kind is not kind:
            return False
        return value is None or token.value == value

    def _match(self, kind: TokenKind, value: str | None = None) -> Token | None:
        if self._check(kind, value):
            return self._advance()
        return None

    def _expect(self, kind: TokenKind, value: str | None = None) -> Token:
        token = self._peek()
        if not self._check(kind, value):
            wanted = value or kind.value
            raise ParseError(
                f"expected {wanted!r}, found {token.value!r}", token.line
            )
        return self._advance()

    def _expect_newline(self) -> None:
        token = self._peek()
        if token.kind is TokenKind.EOF:
            return
        if token.kind is not TokenKind.NEWLINE:
            raise ParseError(
                f"unexpected trailing tokens starting at {token.value!r}",
                token.line,
            )
        while self._match(TokenKind.NEWLINE):
            pass

    def _skip_newlines(self) -> None:
        while self._match(TokenKind.NEWLINE):
            pass

    # -- program structure ---------------------------------------------------

    def parse_program(self) -> ast.ProgramUnit:
        """Parse a whole source file into a ProgramUnit."""
        procedures: dict[str, ast.Procedure] = {}
        self._skip_newlines()
        while not self._check(TokenKind.EOF):
            proc = self._parse_procedure()
            if proc.name in procedures:
                raise ParseError(f"duplicate procedure {proc.name}", proc.line)
            procedures[proc.name] = proc
            self._skip_newlines()
        if not procedures:
            raise ParseError("empty program", 1)
        return ast.ProgramUnit(procedures)

    def _parse_procedure(self) -> ast.Procedure:
        token = self._peek()
        return_type: ast.Type | None = None
        if token.kind is TokenKind.KEYWORD and token.value in _TYPE_KEYWORDS:
            if self._peek(1).kind is TokenKind.KEYWORD and (
                self._peek(1).value == "FUNCTION"
            ):
                return_type = _TYPE_KEYWORDS[self._advance().value]
                token = self._peek()
        if token.kind is not TokenKind.KEYWORD or token.value not in {
            "PROGRAM",
            "SUBROUTINE",
            "FUNCTION",
        }:
            raise ParseError(
                f"expected PROGRAM/SUBROUTINE/FUNCTION, found {token.value!r}",
                token.line,
            )
        kind = ast.ProcKind(self._advance().value)
        name = self._expect(TokenKind.NAME).value
        params: list[str] = []
        if self._match(TokenKind.LPAREN):
            if not self._check(TokenKind.RPAREN):
                params.append(self._expect(TokenKind.NAME).value)
                while self._match(TokenKind.COMMA):
                    params.append(self._expect(TokenKind.NAME).value)
            self._expect(TokenKind.RPAREN)
        if kind is ast.ProcKind.FUNCTION and return_type is None:
            return_type = ast.Type.REAL
        self._expect_newline()
        body = self._parse_block(until=_END_OF_PROCEDURE)
        self._expect(TokenKind.KEYWORD, "END")
        self._expect_newline()
        return ast.Procedure(
            kind=kind,
            name=name,
            params=params,
            body=body,
            line=token.line,
            return_type=return_type,
        )

    # -- statement blocks ----------------------------------------------------

    def _parse_block(
        self, until, stop_label: int | None = None
    ) -> list[ast.Stmt]:
        """Parse statements until ``until(self)`` says stop.

        ``stop_label``: when set (labelled DO), the statement carrying
        that label terminates the block and is *included* in it.
        """
        stmts: list[ast.Stmt] = []
        while True:
            self._skip_newlines()
            token = self._peek()
            if token.kind is TokenKind.EOF:
                raise ParseError("unexpected end of file inside a block", token.line)
            if until(self):
                return stmts
            stmt = self._parse_statement()
            stmts.append(stmt)
            if stop_label is not None and stmt.label == stop_label:
                return stmts

    def _parse_statement(self) -> ast.Stmt:
        label: int | None = None
        if self._check(TokenKind.INT):
            label = int(self._advance().value)
        stmt = self._parse_unlabelled_statement()
        stmt.label = label
        return stmt

    def _parse_unlabelled_statement(self) -> ast.Stmt:
        token = self._peek()
        if token.kind is TokenKind.KEYWORD:
            handler = _STATEMENT_HANDLERS.get(token.value)
            if handler is None:
                raise ParseError(
                    f"unexpected keyword {token.value!r}", token.line
                )
            return handler(self)
        if token.kind is TokenKind.NAME:
            return self._parse_assignment()
        raise ParseError(f"cannot start a statement with {token.value!r}", token.line)

    # -- individual statements -----------------------------------------------

    def _parse_declaration(self) -> ast.Stmt:
        token = self._advance()
        decl_type = _TYPE_KEYWORDS[token.value]
        names: list[tuple[str, tuple[int, ...]]] = []
        while True:
            name = self._expect(TokenKind.NAME).value
            dims: tuple[int, ...] = ()
            if self._match(TokenKind.LPAREN):
                sizes = [int(self._expect(TokenKind.INT).value)]
                while self._match(TokenKind.COMMA):
                    sizes.append(int(self._expect(TokenKind.INT).value))
                self._expect(TokenKind.RPAREN)
                dims = tuple(sizes)
            names.append((name, dims))
            if not self._match(TokenKind.COMMA):
                break
        self._expect_newline()
        return ast.Declaration(token.line, type=decl_type, names=names)

    def _parse_parameter(self) -> ast.Stmt:
        token = self._advance()
        self._expect(TokenKind.LPAREN)
        bindings: list[tuple[str, ast.Expr]] = []
        while True:
            name = self._expect(TokenKind.NAME).value
            self._expect(TokenKind.EQUALS)
            bindings.append((name, self._parse_expression()))
            if not self._match(TokenKind.COMMA):
                break
        self._expect(TokenKind.RPAREN)
        self._expect_newline()
        return ast.ParameterStmt(token.line, bindings=bindings)

    def _parse_assignment(self) -> ast.Stmt:
        token = self._peek()
        target = self._parse_designator()
        self._expect(TokenKind.EQUALS)
        value = self._parse_expression()
        self._expect_newline()
        return ast.Assign(token.line, target=target, value=value)

    def _parse_designator(self) -> ast.VarRef | ast.ArrayRef:
        token = self._expect(TokenKind.NAME)
        if self._match(TokenKind.LPAREN):
            indices = [self._parse_expression()]
            while self._match(TokenKind.COMMA):
                indices.append(self._parse_expression())
            self._expect(TokenKind.RPAREN)
            return ast.ArrayRef(token.line, token.value, tuple(indices))
        return ast.VarRef(token.line, token.value)

    def _parse_if(self) -> ast.Stmt:
        token = self._advance()
        self._expect(TokenKind.LPAREN)
        cond = self._parse_expression()
        self._expect(TokenKind.RPAREN)
        if self._check(TokenKind.INT):
            # Arithmetic IF: three labels for negative / zero / positive.
            negative = int(self._expect(TokenKind.INT).value)
            self._expect(TokenKind.COMMA)
            zero = int(self._expect(TokenKind.INT).value)
            self._expect(TokenKind.COMMA)
            positive = int(self._expect(TokenKind.INT).value)
            self._expect_newline()
            return ast.ArithmeticIf(
                token.line,
                expr=cond,
                negative=negative,
                zero=zero,
                positive=positive,
            )
        if not self._match(TokenKind.KEYWORD, "THEN"):
            inner = self._parse_simple_statement_for_logical_if()
            return ast.LogicalIf(token.line, cond=cond, stmt=inner)
        self._expect_newline()
        arms: list[tuple[ast.Expr, list[ast.Stmt]]] = []
        body = self._parse_block(until=_END_OF_IF_ARM)
        arms.append((cond, body))
        else_body: list[ast.Stmt] = []
        while True:
            if self._is_elseif():
                self._consume_elseif()
                self._expect(TokenKind.LPAREN)
                arm_cond = self._parse_expression()
                self._expect(TokenKind.RPAREN)
                self._expect(TokenKind.KEYWORD, "THEN")
                self._expect_newline()
                arms.append((arm_cond, self._parse_block(until=_END_OF_IF_ARM)))
                continue
            if self._check(TokenKind.KEYWORD, "ELSE"):
                self._advance()
                self._expect_newline()
                else_body = self._parse_block(until=_END_OF_IF_ARM)
                if not self._is_endif():
                    bad = self._peek()
                    raise ParseError("expected ENDIF after ELSE block", bad.line)
            break
        self._consume_endif()
        self._expect_newline()
        return ast.IfBlock(token.line, arms=arms, else_body=else_body)

    def _parse_simple_statement_for_logical_if(self) -> ast.Stmt:
        token = self._peek()
        stmt = self._parse_unlabelled_statement()
        if isinstance(
            stmt,
            (ast.IfBlock, ast.LogicalIf, ast.DoLoop, ast.DoWhile, ast.Declaration),
        ):
            raise ParseError("illegal statement in logical IF", token.line)
        return stmt

    def _is_elseif(self) -> bool:
        if self._check(TokenKind.KEYWORD, "ELSEIF"):
            return True
        return self._check(TokenKind.KEYWORD, "ELSE") and self._peek(1).kind is (
            TokenKind.KEYWORD
        ) and self._peek(1).value == "IF"

    def _consume_elseif(self) -> None:
        if self._match(TokenKind.KEYWORD, "ELSEIF"):
            return
        self._expect(TokenKind.KEYWORD, "ELSE")
        self._expect(TokenKind.KEYWORD, "IF")

    def _is_endif(self) -> bool:
        if self._check(TokenKind.KEYWORD, "ENDIF"):
            return True
        return self._check(TokenKind.KEYWORD, "END") and self._peek(1).kind is (
            TokenKind.KEYWORD
        ) and self._peek(1).value == "IF"

    def _consume_endif(self) -> None:
        if self._match(TokenKind.KEYWORD, "ENDIF"):
            return
        self._expect(TokenKind.KEYWORD, "END")
        self._expect(TokenKind.KEYWORD, "IF")

    def _is_enddo(self) -> bool:
        if self._check(TokenKind.KEYWORD, "ENDDO"):
            return True
        return self._check(TokenKind.KEYWORD, "END") and self._peek(1).kind is (
            TokenKind.KEYWORD
        ) and self._peek(1).value == "DO"

    def _consume_enddo(self) -> None:
        if self._match(TokenKind.KEYWORD, "ENDDO"):
            return
        self._expect(TokenKind.KEYWORD, "END")
        self._expect(TokenKind.KEYWORD, "DO")

    def _parse_do(self) -> ast.Stmt:
        token = self._advance()
        if self._match(TokenKind.KEYWORD, "WHILE"):
            self._expect(TokenKind.LPAREN)
            cond = self._parse_expression()
            self._expect(TokenKind.RPAREN)
            self._expect_newline()
            body = self._parse_block(until=_END_OF_DO)
            self._consume_enddo()
            self._expect_newline()
            return ast.DoWhile(token.line, cond=cond, body=body)

        terminator: int | None = None
        if self._check(TokenKind.INT):
            terminator = int(self._advance().value)
        var = self._expect(TokenKind.NAME).value
        self._expect(TokenKind.EQUALS)
        start = self._parse_expression()
        self._expect(TokenKind.COMMA)
        stop = self._parse_expression()
        step: ast.Expr | None = None
        if self._match(TokenKind.COMMA):
            step = self._parse_expression()
        self._expect_newline()
        if terminator is None:
            body = self._parse_block(until=_END_OF_DO)
            self._consume_enddo()
            self._expect_newline()
        else:
            body = self._parse_block(until=_NEVER, stop_label=terminator)
            if not body or body[-1].label != terminator:
                raise ParseError(
                    f"labelled DO missing terminator label {terminator}", token.line
                )
        return ast.DoLoop(
            token.line, var=var, start=start, stop=stop, step=step, body=body
        )

    def _parse_goto(self) -> ast.Stmt:
        token = self._advance()
        if self._match(TokenKind.LPAREN):
            targets = [int(self._expect(TokenKind.INT).value)]
            while self._match(TokenKind.COMMA):
                targets.append(int(self._expect(TokenKind.INT).value))
            self._expect(TokenKind.RPAREN)
            self._match(TokenKind.COMMA)
            selector = self._parse_expression()
            self._expect_newline()
            return ast.ComputedGoto(token.line, targets=targets, selector=selector)
        target = int(self._expect(TokenKind.INT).value)
        self._expect_newline()
        return ast.Goto(token.line, target=target)

    def _parse_call(self) -> ast.Stmt:
        token = self._advance()
        name = self._expect(TokenKind.NAME).value
        args: list[ast.Expr] = []
        if self._match(TokenKind.LPAREN):
            if not self._check(TokenKind.RPAREN):
                args.append(self._parse_expression())
                while self._match(TokenKind.COMMA):
                    args.append(self._parse_expression())
            self._expect(TokenKind.RPAREN)
        self._expect_newline()
        return ast.CallStmt(token.line, name=name, args=args)

    def _parse_return(self) -> ast.Stmt:
        token = self._advance()
        self._expect_newline()
        return ast.ReturnStmt(token.line)

    def _parse_stop(self) -> ast.Stmt:
        token = self._advance()
        self._expect_newline()
        return ast.StopStmt(token.line)

    def _parse_continue(self) -> ast.Stmt:
        token = self._advance()
        self._expect_newline()
        return ast.ContinueStmt(token.line)

    def _parse_print(self) -> ast.Stmt:
        token = self._advance()
        self._expect(TokenKind.STAR)
        items: list[ast.Expr] = []
        while self._match(TokenKind.COMMA):
            items.append(self._parse_expression())
        self._expect_newline()
        return ast.PrintStmt(token.line, items=items)

    # -- expressions -----------------------------------------------------

    def _parse_expression(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self._check(TokenKind.OR):
            op_token = self._advance()
            right = self._parse_and()
            left = ast.Binary(op_token.line, ast.BinOp.OR, left, right)
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_not()
        while self._check(TokenKind.AND):
            op_token = self._advance()
            right = self._parse_not()
            left = ast.Binary(op_token.line, ast.BinOp.AND, left, right)
        return left

    def _parse_not(self) -> ast.Expr:
        if self._check(TokenKind.NOT):
            op_token = self._advance()
            return ast.Unary(op_token.line, ast.UnOp.NOT, self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expr:
        left = self._parse_additive()
        if self._peek().kind in _COMPARISON_OPS:
            op_token = self._advance()
            right = self._parse_additive()
            return ast.Binary(
                op_token.line, _COMPARISON_OPS[op_token.kind], left, right
            )
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while self._peek().kind in (TokenKind.PLUS, TokenKind.MINUS):
            op_token = self._advance()
            op = ast.BinOp.ADD if op_token.kind is TokenKind.PLUS else ast.BinOp.SUB
            right = self._parse_multiplicative()
            left = ast.Binary(op_token.line, op, left, right)
        return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while self._peek().kind in (TokenKind.STAR, TokenKind.SLASH):
            op_token = self._advance()
            op = ast.BinOp.MUL if op_token.kind is TokenKind.STAR else ast.BinOp.DIV
            right = self._parse_unary()
            left = ast.Binary(op_token.line, op, left, right)
        return left

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.MINUS:
            self._advance()
            return ast.Unary(token.line, ast.UnOp.NEG, self._parse_unary())
        if token.kind is TokenKind.PLUS:
            self._advance()
            return ast.Unary(token.line, ast.UnOp.POS, self._parse_unary())
        return self._parse_power()

    def _parse_power(self) -> ast.Expr:
        base = self._parse_primary()
        if self._check(TokenKind.POWER):
            op_token = self._advance()
            # `**` is right-associative; exponent may itself be unary.
            exponent = self._parse_unary()
            return ast.Binary(op_token.line, ast.BinOp.POW, base, exponent)
        return base

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.INT:
            self._advance()
            return ast.IntLit(token.line, int(token.value))
        if token.kind is TokenKind.REAL:
            self._advance()
            return ast.RealLit(token.line, float(token.value))
        if token.kind is TokenKind.STRING:
            self._advance()
            return ast.StringLit(token.line, token.value)
        if token.kind is TokenKind.TRUE:
            self._advance()
            return ast.LogicalLit(token.line, True)
        if token.kind is TokenKind.FALSE:
            self._advance()
            return ast.LogicalLit(token.line, False)
        if token.kind is TokenKind.LPAREN:
            self._advance()
            inner = self._parse_expression()
            self._expect(TokenKind.RPAREN)
            return inner
        # The REAL/INTEGER type keywords double as conversion intrinsics
        # inside expressions: `REAL(I)`, `INT(X)` (INT is a plain name).
        if (
            token.kind is TokenKind.KEYWORD
            and token.value in {"REAL", "INTEGER"}
            and self._peek(1).kind is TokenKind.LPAREN
        ):
            self._advance()
            self._expect(TokenKind.LPAREN)
            arg = self._parse_expression()
            self._expect(TokenKind.RPAREN)
            name = "REAL" if token.value == "REAL" else "INT"
            return ast.FuncCall(token.line, name, (arg,))
        if token.kind is TokenKind.NAME:
            self._advance()
            if self._match(TokenKind.LPAREN):
                args: list[ast.Expr] = []
                if not self._check(TokenKind.RPAREN):
                    args.append(self._parse_expression())
                    while self._match(TokenKind.COMMA):
                        args.append(self._parse_expression())
                self._expect(TokenKind.RPAREN)
                # FuncCall vs ArrayRef is resolved by the symbol checker.
                return ast.FuncCall(token.line, token.value, tuple(args))
            return ast.VarRef(token.line, token.value)
        raise ParseError(f"unexpected token {token.value!r} in expression", token.line)


# -- block terminator predicates --------------------------------------------


def _END_OF_PROCEDURE(parser: Parser) -> bool:
    if not parser._check(TokenKind.KEYWORD, "END"):
        return False
    nxt = parser._peek(1)
    # `END IF` / `END DO` belong to their blocks, a bare END ends the unit.
    return not (nxt.kind is TokenKind.KEYWORD and nxt.value in {"IF", "DO"})


def _END_OF_IF_ARM(parser: Parser) -> bool:
    return (
        parser._is_endif()
        or parser._is_elseif()
        or parser._check(TokenKind.KEYWORD, "ELSE")
    )


def _END_OF_DO(parser: Parser) -> bool:
    return parser._is_enddo()


def _NEVER(parser: Parser) -> bool:
    return False


#: Dispatch table from statement-leading keyword to parser method.
_STATEMENT_HANDLERS = {
    "INTEGER": Parser._parse_declaration,
    "REAL": Parser._parse_declaration,
    "LOGICAL": Parser._parse_declaration,
    "PARAMETER": Parser._parse_parameter,
    "IF": Parser._parse_if,
    "DO": Parser._parse_do,
    "GOTO": Parser._parse_goto,
    "CALL": Parser._parse_call,
    "RETURN": Parser._parse_return,
    "STOP": Parser._parse_stop,
    "CONTINUE": Parser._parse_continue,
    "PRINT": Parser._parse_print,
}


def parse_program(source: str) -> ast.ProgramUnit:
    """Parse minifort source text into a ProgramUnit (no symbol checks)."""
    return Parser(tokenize(source)).parse_program()
