"""Abstract syntax tree for minifort.

The AST is a plain dataclass hierarchy.  Expressions and statements
carry the source line they came from; statements additionally carry an
optional numeric statement label (the GOTO target namespace).

Only constructs that the paper's framework exercises are modelled:
assignments, logical and block IFs, DO loops (counted and WHILE),
GOTO / computed GOTO, CALL / RETURN / STOP / CONTINUE / PRINT, and
declarations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Type(enum.Enum):
    """Static types of the language."""

    INTEGER = "INTEGER"
    REAL = "REAL"
    LOGICAL = "LOGICAL"


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    """Base class for expression nodes."""

    line: int


@dataclass(frozen=True)
class IntLit(Expr):
    value: int


@dataclass(frozen=True)
class RealLit(Expr):
    value: float


@dataclass(frozen=True)
class LogicalLit(Expr):
    value: bool


@dataclass(frozen=True)
class StringLit(Expr):
    value: str


@dataclass(frozen=True)
class VarRef(Expr):
    """A bare scalar variable reference."""

    name: str


@dataclass(frozen=True)
class ArrayRef(Expr):
    """An array element reference ``A(I)`` or ``A(I, J)``."""

    name: str
    indices: tuple[Expr, ...]


@dataclass(frozen=True)
class FuncCall(Expr):
    """A call to an intrinsic or user FUNCTION inside an expression.

    The parser cannot always distinguish ``F(I)`` (call) from an array
    reference; the symbol checker rewrites ambiguous ``FuncCall`` nodes
    into ``ArrayRef`` when the name is a declared array.
    """

    name: str
    args: tuple[Expr, ...]


class BinOp(enum.Enum):
    """Binary operators, grouped by family for cost estimation."""

    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    POW = "**"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    EQ = "=="
    NE = "/="
    AND = ".AND."
    OR = ".OR."

    @property
    def is_comparison(self) -> bool:
        return self in _COMPARISONS

    @property
    def is_logical(self) -> bool:
        return self in (BinOp.AND, BinOp.OR)


_COMPARISONS = frozenset(
    {BinOp.LT, BinOp.LE, BinOp.GT, BinOp.GE, BinOp.EQ, BinOp.NE}
)


@dataclass(frozen=True)
class Binary(Expr):
    op: BinOp
    left: Expr
    right: Expr


class UnOp(enum.Enum):
    NEG = "-"
    POS = "+"
    NOT = ".NOT."


@dataclass(frozen=True)
class Unary(Expr):
    op: UnOp
    operand: Expr


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    """Base class for statement nodes."""

    line: int
    label: int | None = field(default=None, kw_only=True)


@dataclass
class Declaration(Stmt):
    """``INTEGER I, J, A(10)`` — one entry per declared name."""

    type: Type = Type.INTEGER
    names: list[tuple[str, tuple[int, ...]]] = field(default_factory=list)


@dataclass
class ParameterStmt(Stmt):
    """``PARAMETER (N = 100)`` — compile-time named constants."""

    bindings: list[tuple[str, Expr]] = field(default_factory=list)


@dataclass
class Assign(Stmt):
    """Assignment to a scalar or array element."""

    target: VarRef | ArrayRef = None  # type: ignore[assignment]
    value: Expr = None  # type: ignore[assignment]


@dataclass
class IfBlock(Stmt):
    """Block IF with optional ELSEIF arms and ELSE body.

    ``arms`` is a list of (condition, body) pairs — the IF arm followed
    by any ELSEIF arms; ``else_body`` may be empty.
    """

    arms: list[tuple[Expr, list[Stmt]]] = field(default_factory=list)
    else_body: list[Stmt] = field(default_factory=list)


@dataclass
class LogicalIf(Stmt):
    """One-armed logical IF: ``IF (cond) stmt`` where stmt is simple."""

    cond: Expr = None  # type: ignore[assignment]
    stmt: Stmt = None  # type: ignore[assignment]


@dataclass
class DoLoop(Stmt):
    """Counted DO loop.

    Either a labelled form ``DO 10 I = 1, N`` terminated by the
    statement labelled 10 (inclusive), or the ``DO I = 1, N ... ENDDO``
    form; both parse into the same node with the body inlined.
    """

    var: str = ""
    start: Expr = None  # type: ignore[assignment]
    stop: Expr = None  # type: ignore[assignment]
    step: Expr | None = None
    body: list[Stmt] = field(default_factory=list)


@dataclass
class DoWhile(Stmt):
    """``DO WHILE (cond) ... ENDDO``."""

    cond: Expr = None  # type: ignore[assignment]
    body: list[Stmt] = field(default_factory=list)


@dataclass
class Goto(Stmt):
    target: int = 0


@dataclass
class ArithmeticIf(Stmt):
    """``IF (expr) l1, l2, l3`` — branch on sign: negative/zero/positive."""

    expr: Expr = None  # type: ignore[assignment]
    negative: int = 0
    zero: int = 0
    positive: int = 0

    @property
    def targets(self) -> tuple[int, int, int]:
        return (self.negative, self.zero, self.positive)


@dataclass
class ComputedGoto(Stmt):
    """``GOTO (10, 20, 30), I`` — falls through when I out of range."""

    targets: list[int] = field(default_factory=list)
    selector: Expr = None  # type: ignore[assignment]


@dataclass
class CallStmt(Stmt):
    name: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class ReturnStmt(Stmt):
    pass


@dataclass
class StopStmt(Stmt):
    pass


@dataclass
class ContinueStmt(Stmt):
    """``CONTINUE`` — a labelled no-op, frequent GOTO target."""


@dataclass
class PrintStmt(Stmt):
    """``PRINT *, items`` — output is collected by the interpreter."""

    items: list[Expr] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Procedures and program units
# ---------------------------------------------------------------------------


class ProcKind(enum.Enum):
    PROGRAM = "PROGRAM"
    SUBROUTINE = "SUBROUTINE"
    FUNCTION = "FUNCTION"


@dataclass
class Procedure:
    """One program unit: the main PROGRAM, a SUBROUTINE or a FUNCTION.

    For FUNCTIONs, the return value is assigned to the function's own
    name inside the body, Fortran style; ``return_type`` records the
    declared type.
    """

    kind: ProcKind
    name: str
    params: list[str]
    body: list[Stmt]
    line: int
    return_type: Type | None = None

    def walk_statements(self):
        """Yield every statement in the body, recursively (pre-order)."""
        yield from _walk(self.body)


def _walk(stmts: list[Stmt]):
    for stmt in stmts:
        yield stmt
        if isinstance(stmt, IfBlock):
            for _, body in stmt.arms:
                yield from _walk(body)
            yield from _walk(stmt.else_body)
        elif isinstance(stmt, (DoLoop, DoWhile)):
            yield from _walk(stmt.body)
        elif isinstance(stmt, LogicalIf):
            yield from _walk([stmt.stmt])


@dataclass
class ProgramUnit:
    """A whole source file: a set of procedures keyed by name."""

    procedures: dict[str, Procedure]

    @property
    def main(self) -> Procedure:
        """The entry procedure (the PROGRAM unit)."""
        for proc in self.procedures.values():
            if proc.kind is ProcKind.PROGRAM:
                return proc
        raise KeyError("program has no PROGRAM unit")


def walk_expr(expr: Expr):
    """Yield ``expr`` and every sub-expression, pre-order."""
    yield expr
    if isinstance(expr, Binary):
        yield from walk_expr(expr.left)
        yield from walk_expr(expr.right)
    elif isinstance(expr, Unary):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, (FuncCall, ArrayRef)):
        for arg in (expr.args if isinstance(expr, FuncCall) else expr.indices):
            yield from walk_expr(arg)


def stmt_expressions(stmt: Stmt):
    """Yield the top-level expressions appearing directly in ``stmt``.

    Nested statements (IF bodies etc.) are not descended into; use
    :meth:`Procedure.walk_statements` for that.
    """
    if isinstance(stmt, Assign):
        if isinstance(stmt.target, ArrayRef):
            yield from stmt.target.indices
        yield stmt.value
    elif isinstance(stmt, IfBlock):
        for cond, _ in stmt.arms:
            yield cond
    elif isinstance(stmt, LogicalIf):
        yield stmt.cond
    elif isinstance(stmt, DoLoop):
        yield stmt.start
        yield stmt.stop
        if stmt.step is not None:
            yield stmt.step
    elif isinstance(stmt, DoWhile):
        yield stmt.cond
    elif isinstance(stmt, ComputedGoto):
        yield stmt.selector
    elif isinstance(stmt, ArithmeticIf):
        yield stmt.expr
    elif isinstance(stmt, CallStmt):
        yield from stmt.args
    elif isinstance(stmt, PrintStmt):
        yield from stmt.items
