"""Token kinds and the Token record for the minifort lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenKind(enum.Enum):
    """Lexical categories produced by :class:`repro.lang.lexer.Lexer`."""

    # Literals and names.
    INT = "int"
    REAL = "real"
    STRING = "string"
    NAME = "name"
    KEYWORD = "keyword"

    # Punctuation.
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    EQUALS = "="
    COLON = ":"

    # Arithmetic operators.
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    POWER = "**"

    # Relational operators (normalized: `.GE.` and `>=` both lex to GE).
    LT = ".LT."
    LE = ".LE."
    GT = ".GT."
    GE = ".GE."
    EQ = ".EQ."
    NE = ".NE."

    # Logical operators and constants.
    AND = ".AND."
    OR = ".OR."
    NOT = ".NOT."
    TRUE = ".TRUE."
    FALSE = ".FALSE."

    # Structure.
    NEWLINE = "newline"
    EOF = "eof"


#: Reserved words.  A NAME whose upper-cased spelling appears here is
#: emitted as a KEYWORD token instead.
KEYWORDS = frozenset(
    {
        "PROGRAM",
        "SUBROUTINE",
        "FUNCTION",
        "END",
        "INTEGER",
        "REAL",
        "LOGICAL",
        "DIMENSION",
        "IF",
        "THEN",
        "ELSE",
        "ELSEIF",
        "ENDIF",
        "DO",
        "WHILE",
        "ENDDO",
        "GOTO",
        "CONTINUE",
        "CALL",
        "RETURN",
        "STOP",
        "PRINT",
        "PARAMETER",
    }
)

#: Mapping from Fortran dot-operator spellings to token kinds.
DOT_OPERATORS = {
    "LT": TokenKind.LT,
    "LE": TokenKind.LE,
    "GT": TokenKind.GT,
    "GE": TokenKind.GE,
    "EQ": TokenKind.EQ,
    "NE": TokenKind.NE,
    "AND": TokenKind.AND,
    "OR": TokenKind.OR,
    "NOT": TokenKind.NOT,
    "TRUE": TokenKind.TRUE,
    "FALSE": TokenKind.FALSE,
}

#: Mapping from modern comparison spellings to the same token kinds.
MODERN_OPERATORS = {
    "<": TokenKind.LT,
    "<=": TokenKind.LE,
    ">": TokenKind.GT,
    ">=": TokenKind.GE,
    "==": TokenKind.EQ,
    "/=": TokenKind.NE,
}


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``value`` holds the normalized spelling: keywords and names are
    upper-cased, numeric literals keep their source spelling.
    """

    kind: TokenKind
    value: str
    line: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.value!r}, line={self.line})"
