"""minifort: a Fortran-77-style mini language.

This package is the frontend substrate for the reproduction: a lexer,
recursive-descent parser, AST, and symbol/type checker for a small
Fortran-like language rich enough to express the paper's examples, the
Livermore-loop kernels and a SIMPLE-like CFD code — including the
unstructured control flow (labels, GOTO, computed GOTO) that motivates
the control-dependence-based framework.

Typical use::

    from repro.lang import parse_program
    unit = parse_program(source_text)
    main = unit.procedures["MAIN"]
"""

from repro.lang.lexer import Lexer, tokenize
from repro.lang.parser import Parser, parse_program
from repro.lang import ast
from repro.lang.symbols import check_program, SymbolTable

__all__ = [
    "Lexer",
    "tokenize",
    "Parser",
    "parse_program",
    "ast",
    "check_program",
    "SymbolTable",
]
