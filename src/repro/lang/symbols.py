"""Symbol tables and semantic checking for minifort.

The checker performs:

* construction of a per-procedure :class:`SymbolTable` (parameters,
  declarations, PARAMETER constants, Fortran implicit typing for
  undeclared names: I..N are INTEGER, everything else REAL);
* disambiguation of ``NAME(args)`` expressions into array references,
  intrinsic calls or user-function calls (rewriting the AST in place is
  avoided — a rewritten statement list is produced);
* arity/usage checks for arrays, intrinsics, CALL targets and GOTO
  labels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SemanticError
from repro.lang import ast

#: Intrinsic functions: name -> (min_arity, max_arity, result kind).
#: Result kind "match" means "same as the (promoted) argument type".
INTRINSICS: dict[str, tuple[int, int, str]] = {
    "MOD": (2, 2, "match"),
    "MIN": (2, 8, "match"),
    "MAX": (2, 8, "match"),
    "ABS": (1, 1, "match"),
    "SIGN": (2, 2, "match"),
    "SQRT": (1, 1, "real"),
    "EXP": (1, 1, "real"),
    "LOG": (1, 1, "real"),
    "SIN": (1, 1, "real"),
    "COS": (1, 1, "real"),
    "ATAN": (1, 1, "real"),
    "INT": (1, 1, "integer"),
    "NINT": (1, 1, "integer"),
    "REAL": (1, 1, "real"),
    "FLOAT": (1, 1, "real"),
    # Deterministic pseudo-random sources provided by the interpreter;
    # these stand in for data-dependent branch behaviour.
    "IRAND": (2, 2, "integer"),
    "RAND": (0, 0, "real"),
    # Reads element i of the run's input vector (1-based).
    "INPUT": (1, 1, "real"),
}


@dataclass
class VarInfo:
    """Static information about one variable in a procedure."""

    name: str
    type: ast.Type
    dims: tuple[int, ...] = ()
    is_param: bool = False
    declared_line: int | None = None

    @property
    def is_array(self) -> bool:
        return bool(self.dims)


@dataclass
class SymbolTable:
    """All names visible inside one procedure."""

    proc_name: str
    variables: dict[str, VarInfo] = field(default_factory=dict)
    constants: dict[str, int | float] = field(default_factory=dict)
    labels: set[int] = field(default_factory=set)

    def lookup(self, name: str) -> VarInfo | None:
        return self.variables.get(name)

    def ensure_scalar(self, name: str, line: int | None = None) -> VarInfo:
        """Return the VarInfo for ``name``, implicitly declaring scalars."""
        info = self.variables.get(name)
        if info is None:
            info = VarInfo(name, implicit_type(name), declared_line=line)
            self.variables[name] = info
        return info


def implicit_type(name: str) -> ast.Type:
    """Fortran implicit typing: names starting I..N are INTEGER."""
    return ast.Type.INTEGER if name[:1] in "IJKLMN" else ast.Type.REAL


@dataclass
class CheckedProgram:
    """A parsed program plus its per-procedure symbol tables."""

    unit: ast.ProgramUnit
    tables: dict[str, SymbolTable]

    @property
    def main(self) -> ast.Procedure:
        return self.unit.main


class _ProcedureChecker:
    def __init__(self, proc: ast.Procedure, unit: ast.ProgramUnit):
        self.proc = proc
        self.unit = unit
        self.table = SymbolTable(proc_name=proc.name)

    def check(self) -> SymbolTable:
        self._collect_declarations()
        self._collect_labels()
        for stmt in self.proc.walk_statements():
            self._check_statement(stmt)
        return self.table

    # -- declaration pass --------------------------------------------------

    def _collect_declarations(self) -> None:
        proc = self.proc
        for param in proc.params:
            self.table.variables[param] = VarInfo(
                param, implicit_type(param), is_param=True
            )
        if proc.kind is ast.ProcKind.FUNCTION:
            # The function name acts as the return-value variable.
            self.table.variables[proc.name] = VarInfo(
                proc.name, proc.return_type or ast.Type.REAL
            )
        for stmt in proc.walk_statements():
            if isinstance(stmt, ast.Declaration):
                self._apply_declaration(stmt)
            elif isinstance(stmt, ast.ParameterStmt):
                self._apply_parameter(stmt)

    def _apply_declaration(self, stmt: ast.Declaration) -> None:
        for name, dims in stmt.names:
            existing = self.table.variables.get(name)
            if existing is not None and existing.declared_line is not None:
                raise SemanticError(f"{name} declared twice", stmt.line)
            if existing is not None and existing.is_param:
                # Re-typing / dimensioning a parameter is allowed.
                existing.type = stmt.type
                existing.dims = dims
                existing.declared_line = stmt.line
                continue
            if name == self.proc.name and self.proc.kind is ast.ProcKind.FUNCTION:
                self.table.variables[name].type = stmt.type
                continue
            self.table.variables[name] = VarInfo(
                name, stmt.type, dims=dims, declared_line=stmt.line
            )

    def _apply_parameter(self, stmt: ast.ParameterStmt) -> None:
        for name, expr in stmt.bindings:
            if name in self.table.constants:
                raise SemanticError(f"constant {name} bound twice", stmt.line)
            self.table.constants[name] = self._const_eval(expr)

    def _const_eval(self, expr: ast.Expr) -> int | float:
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.RealLit):
            return expr.value
        if isinstance(expr, ast.VarRef) and expr.name in self.table.constants:
            return self.table.constants[expr.name]
        if isinstance(expr, ast.Unary) and expr.op is ast.UnOp.NEG:
            return -self._const_eval(expr.operand)
        if isinstance(expr, ast.Binary):
            left = self._const_eval(expr.left)
            right = self._const_eval(expr.right)
            ops = {
                ast.BinOp.ADD: lambda a, b: a + b,
                ast.BinOp.SUB: lambda a, b: a - b,
                ast.BinOp.MUL: lambda a, b: a * b,
                ast.BinOp.DIV: _const_div,
                ast.BinOp.POW: lambda a, b: a**b,
            }
            if expr.op in ops:
                return ops[expr.op](left, right)
        raise SemanticError("PARAMETER value is not a constant expression", expr.line)

    def _collect_labels(self) -> None:
        for stmt in self.proc.walk_statements():
            if stmt.label is not None:
                if stmt.label in self.table.labels:
                    raise SemanticError(
                        f"duplicate statement label {stmt.label}", stmt.line
                    )
                self.table.labels.add(stmt.label)

    # -- usage pass ---------------------------------------------------------

    def _check_statement(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Goto):
            self._check_label(stmt.target, stmt.line)
        elif isinstance(stmt, ast.ComputedGoto):
            for target in stmt.targets:
                self._check_label(target, stmt.line)
        elif isinstance(stmt, ast.ArithmeticIf):
            for target in stmt.targets:
                self._check_label(target, stmt.line)
        elif isinstance(stmt, ast.CallStmt):
            self._check_call(stmt)
        elif isinstance(stmt, ast.Assign):
            self._check_assign_target(stmt.target)
        elif isinstance(stmt, ast.DoLoop):
            info = self.table.ensure_scalar(stmt.var, stmt.line)
            if info.is_array:
                raise SemanticError(
                    f"DO variable {stmt.var} is an array", stmt.line
                )
        if isinstance(stmt, ast.CallStmt):
            # Whole arrays may be passed (by reference) as call args.
            for arg in stmt.args:
                self._check_expr(arg, array_ok=True)
        else:
            for expr in ast.stmt_expressions(stmt):
                self._check_expr(expr)

    def _check_label(self, label: int, line: int) -> None:
        if label not in self.table.labels:
            raise SemanticError(f"GOTO target label {label} not defined", line)

    def _check_call(self, stmt: ast.CallStmt) -> None:
        callee = self.unit.procedures.get(stmt.name)
        if callee is None:
            raise SemanticError(f"CALL to unknown subroutine {stmt.name}", stmt.line)
        if callee.kind is not ast.ProcKind.SUBROUTINE:
            raise SemanticError(f"{stmt.name} is not a SUBROUTINE", stmt.line)
        if len(stmt.args) != len(callee.params):
            raise SemanticError(
                f"CALL {stmt.name}: expected {len(callee.params)} args, "
                f"got {len(stmt.args)}",
                stmt.line,
            )

    def _check_assign_target(self, target: ast.VarRef | ast.ArrayRef) -> None:
        if isinstance(target, ast.VarRef):
            info = self.table.ensure_scalar(target.name, target.line)
            if info.is_array:
                raise SemanticError(
                    f"cannot assign whole array {target.name}", target.line
                )
            if target.name in self.table.constants:
                raise SemanticError(
                    f"cannot assign to constant {target.name}", target.line
                )
        else:
            info = self.table.lookup(target.name)
            if info is None or not info.is_array:
                raise SemanticError(
                    f"{target.name} is not a declared array", target.line
                )
            if len(target.indices) != len(info.dims):
                raise SemanticError(
                    f"{target.name}: {len(info.dims)} subscripts required",
                    target.line,
                )

    def _check_expr(self, expr: ast.Expr, array_ok: bool = False) -> None:
        if isinstance(expr, ast.VarRef):
            if expr.name in self.table.constants:
                return
            info = self.table.lookup(expr.name)
            if info is not None and info.is_array:
                if not array_ok:
                    raise SemanticError(
                        f"array {expr.name} used without subscripts", expr.line
                    )
                return
            self.table.ensure_scalar(expr.name, expr.line)
        elif isinstance(expr, ast.ArrayRef):
            self._check_arrayref(expr)
            for index in expr.indices:
                self._check_expr(index)
        elif isinstance(expr, ast.FuncCall):
            self._check_funccall(expr)
            info = self.table.lookup(expr.name)
            is_user_call = (
                (info is None or not info.is_array)
                and expr.name not in INTRINSICS
            )
            for arg in expr.args:
                self._check_expr(arg, array_ok=is_user_call)
        elif isinstance(expr, ast.Binary):
            self._check_expr(expr.left)
            self._check_expr(expr.right)
        elif isinstance(expr, ast.Unary):
            self._check_expr(expr.operand)

    def _check_funccall(self, node: ast.FuncCall) -> None:
        info = self.table.lookup(node.name)
        if info is not None and info.is_array:
            if len(node.args) != len(info.dims):
                raise SemanticError(
                    f"{node.name}: {len(info.dims)} subscripts required", node.line
                )
            return  # It is really an array reference; interpreter resolves.
        if node.name in INTRINSICS:
            lo, hi, _ = INTRINSICS[node.name]
            if not lo <= len(node.args) <= hi:
                raise SemanticError(
                    f"intrinsic {node.name} takes {lo}..{hi} args, "
                    f"got {len(node.args)}",
                    node.line,
                )
            return
        callee = self.unit.procedures.get(node.name)
        if callee is not None and callee.kind is ast.ProcKind.FUNCTION:
            if len(node.args) != len(callee.params):
                raise SemanticError(
                    f"{node.name}: expected {len(callee.params)} args, "
                    f"got {len(node.args)}",
                    node.line,
                )
            return
        raise SemanticError(
            f"{node.name} is not an array, intrinsic or FUNCTION", node.line
        )

    def _check_arrayref(self, node: ast.ArrayRef) -> None:
        info = self.table.lookup(node.name)
        if info is None or not info.is_array:
            raise SemanticError(f"{node.name} is not a declared array", node.line)
        if len(node.indices) != len(info.dims):
            raise SemanticError(
                f"{node.name}: {len(info.dims)} subscripts required", node.line
            )


def _const_div(a: int | float, b: int | float):
    if isinstance(a, int) and isinstance(b, int):
        return int(a / b) if b != 0 else 0
    return a / b


def check_program(unit: ast.ProgramUnit) -> CheckedProgram:
    """Run semantic checks; returns the program with its symbol tables."""
    tables = {
        name: _ProcedureChecker(proc, unit).check()
        for name, proc in unit.procedures.items()
    }
    return CheckedProgram(unit=unit, tables=tables)
