"""Codegen execution backend: checked CFGs lowered to Python source.

The fastest of the three execution backends.  Each procedure is
emitted once as the text of a plain Python function — loops as native
``while``/``for`` constructs, scalars as locals, constants folded,
coercions inlined, counter bumps as direct ``slots[i] += 1.0`` adds —
then compiled and cached per ``(counter plan, machine model)``
variant.  Results are bit-identical to the reference interpreter.
"""

from repro.codegen.backend import CodegenBackend, codegen_backend_for
from repro.codegen.emit import MUTATIONS, EmitMeta, emit_module
from repro.fastexec.backend import UnsupportedHooksError
from repro.fastexec.exprs import LoweringError

__all__ = [
    "CodegenBackend",
    "codegen_backend_for",
    "emit_module",
    "EmitMeta",
    "MUTATIONS",
    "LoweringError",
    "UnsupportedHooksError",
]
