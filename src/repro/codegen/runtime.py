"""The execution namespace of emitted codegen modules.

Every variant a :class:`~repro.codegen.backend.CodegenBackend` emits is
``exec``'d into a namespace built by :func:`make_namespace`.  The
namespace carries two kinds of names: shared mutable *boxes* the
backend resets per run (step counter, cost accumulators, output list,
per-procedure hit arrays), and the small runtime *helpers* below, which
replicate the reference interpreter's checked operations — same
evaluation order, same error messages — for the cases the emitter does
not inline.

Helper names are underscore-prefixed so they can never collide with an
emitted ``P_<proc>`` function or ``V_<var>`` local.
"""

from __future__ import annotations

import math

from repro.errors import InterpreterError, InterpreterLimitError
from repro.interp.intrinsics import _fortran_mod, _sign
from repro.interp.machine import (
    _ProgramHalt,
    _format_value,
    _fortran_pow,
    _trunc_div,
)
from repro.interp.values import Cell, ElementRef, FortranArray, coerce
from repro.lang import ast


def _divc(a, b, line):
    """Checked division, Fortran-truncating for int/int."""
    if b == 0:
        raise InterpreterError("division by zero", line)
    if isinstance(a, int) and isinstance(b, int):
        return _trunc_div(a, b)
    return a / b


def _sqrtc(value, line):
    if value < 0:
        raise InterpreterError("SQRT of negative value", line)
    return math.sqrt(value)


def _logc(value, line):
    if value <= 0:
        raise InterpreterError("LOG of non-positive value", line)
    return math.log(value)


def _notc(value, line):
    if not isinstance(value, bool):
        raise InterpreterError(".NOT. of non-LOGICAL", line)
    return not value


def _andchk(value, line):
    if not isinstance(value, bool):
        raise InterpreterError(".AND. of non-LOGICAL", line)
    return value


def _orchk(value, line):
    if not isinstance(value, bool):
        raise InterpreterError(".OR. of non-LOGICAL", line)
    return value


def _irand(intr, a, b, line):
    lo, hi = int(a), int(b)
    if lo > hi:
        raise InterpreterError(f"IRAND({lo}, {hi}): empty range", line)
    return intr.rng.randint(lo, hi)


def _input(intr, a, line):
    index = int(a)
    if not 1 <= index <= len(intr.inputs):
        raise InterpreterError(
            f"INPUT({index}): run has {len(intr.inputs)} inputs", line
        )
    return intr.inputs[index - 1]


def _cI(value, line):
    if isinstance(value, bool):
        raise InterpreterError("cannot store LOGICAL in INTEGER", line)
    return int(value)


def _cR(value, line):
    if isinstance(value, bool):
        raise InterpreterError("cannot store LOGICAL in REAL", line)
    return float(value)


def _cL(value, line):
    if not isinstance(value, bool):
        raise InterpreterError("cannot store number in LOGICAL", line)
    return value


def _get1(data, k, dim, name, line):
    """Inlined-shape 1-D element load with the reference bounds check."""
    if 1 <= k <= dim:
        return data[k - 1]
    raise InterpreterError(
        f"{name}: subscript {k} out of bounds 1..{dim}", line
    )


def _getn(array, indices, name, line):
    """Generic element load (parameter or multi-dim arrays)."""
    if not isinstance(array, FortranArray):
        raise InterpreterError(f"{name} is not an array", line)
    return array.get(indices, line)


def _setn(array, indices, value, name, line):
    if not isinstance(array, FortranArray):
        raise InterpreterError(f"{name} is not an array", line)
    array.set(indices, value, line)


def _eref(array, indices, line):
    """Bind one array element by reference (bounds-checked now)."""
    array.get(indices, line)
    return ElementRef(array, indices)


def _cellv(type_, value, line):
    """Bind one by-value actual into a fresh Cell of the param type."""
    cell = Cell(type_)
    cell.set(value, line)
    return cell


def _trip(start, stop, step):
    """The reference interpreter's DO trip count, clamped at zero."""
    span = stop - start + step
    if isinstance(span, int) and isinstance(step, int):
        trip = _trunc_div(span, step)
    else:
        trip = int(span / step)
    return max(0, trip)


def make_namespace(backend) -> dict:
    """The globals dict one emitted variant executes in.

    Box objects are owned by ``backend`` and shared across variants, so
    resetting them once per run covers every compiled module.
    """
    ns = {
        "__builtins__": {},
        # -- boxes (reset per run by the backend) ----------------------
        "_s": backend._steps,
        "_c": backend._cost,
        "_o": backend._ops_box,
        "_cc": backend._ccost_box,
        "_dep": backend._depth_box,
        "_mdb": backend._max_depth_box,
        "_msb": backend._max_steps_box,
        "_irb": backend._intr,
        "_out": backend._outputs,
        "_mvb": backend._main_vars_box,
        "_K": backend._slots_list,
        "_PC": backend._path_slots_list,
        "_PSB": backend._partials_box,
        # -- classes / singletons --------------------------------------
        "IE": InterpreterError,
        "ILE": InterpreterLimitError,
        "_HALT": _ProgramHalt,
        "Cell": Cell,
        "Array": FortranArray,
        "ERef": ElementRef,
        "_T_I": ast.Type.INTEGER,
        "_T_R": ast.Type.REAL,
        "_T_L": ast.Type.LOGICAL,
        # -- checked helpers -------------------------------------------
        "_fmt": _format_value,
        "_pow": _fortran_pow,
        "_tdiv": _trunc_div,
        "_mod": _fortran_mod,
        "_sign": _sign,
        "_coerce": coerce,
        "_divc": _divc,
        "_sqrtc": _sqrtc,
        "_logc": _logc,
        "_notc": _notc,
        "_andchk": _andchk,
        "_orchk": _orchk,
        "_irand": _irand,
        "_input": _input,
        "_cI": _cI,
        "_cR": _cR,
        "_cL": _cL,
        "_get1": _get1,
        "_getn": _getn,
        "_setn": _setn,
        "_eref": _eref,
        "_cellv": _cellv,
        "_trip": _trip,
        # -- plain math ------------------------------------------------
        "_mfmod": math.fmod,
        "_msqrt": math.sqrt,
        "_mexp": math.exp,
        "_msin": math.sin,
        "_mcos": math.cos,
        "_matan": math.atan,
        "_abs": abs,
        "_min": min,
        "_max": max,
        "_int": int,
        "_float": float,
        "_round": round,
        "_isinst": isinstance,
        "_bool": bool,
        "_dchk": backend._dchk,
        "_tuple": tuple,
        "_len": len,
    }
    for name, nh in backend._node_hits.items():
        ns[f"_NH_{name}"] = nh
    for name, eh in backend._edge_hits.items():
        ns[f"_EH_{name}"] = eh
    for name, cb in backend._call_boxes.items():
        ns[f"_CB_{name}"] = cb
    return ns
