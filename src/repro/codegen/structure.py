"""Control-flow structure recovery for the source emitter.

The emitter turns a statement-level CFG back into nested Python
``while``/``if`` blocks.  This module provides the graph facts that
drive it: reverse postorder, immediate dominators (iterative
Cooper-Harvey-Kennedy), natural loops merged per header, and immediate
postdominators (the branch-join oracle), all over the dense node
indices of a :class:`~repro.fastexec.shape.ProcShape`.

When the CFG does not fit the structured patterns (irreducible flow, a
loop with several distinct non-terminal exit targets, a join reached
twice), the emitter raises :class:`Unstructured` and falls back to a
dispatch-loop rendering of the same procedure — never to a lowering
failure, so control-flow shape alone can't force the reference
interpreter.
"""

from __future__ import annotations


class Unstructured(Exception):
    """The CFG resists structured emission; use the dispatch loop."""


class FlowInfo:
    """Derived control-flow facts over dense node indices."""

    def __init__(self, succ: dict[int, list[int]], entry: int, terminals: set[int]):
        self.succ = succ
        self.entry = entry
        self.terminals = terminals
        self.reachable = self._reach()
        self.rpo = self._rpo()
        self.rpo_pos = {n: i for i, n in enumerate(self.rpo)}
        self.pred: dict[int, list[int]] = {n: [] for n in self.reachable}
        for n in self.reachable:
            for d in succ.get(n, ()):
                if d in self.reachable:
                    self.pred[d].append(n)
        self.idom = _idoms(self.rpo, self.rpo_pos, self.pred, entry)
        self.loops = self._natural_loops()
        self.ipdom = self._ipostdoms()

    # -- basic orders --------------------------------------------------

    def _reach(self) -> set[int]:
        seen = {self.entry}
        stack = [self.entry]
        while stack:
            n = stack.pop()
            for d in self.succ.get(n, ()):
                if d not in seen:
                    seen.add(d)
                    stack.append(d)
        return seen

    def _rpo(self) -> list[int]:
        order: list[int] = []
        seen = set()
        # Iterative postorder DFS.
        stack: list[tuple[int, int]] = [(self.entry, 0)]
        seen.add(self.entry)
        while stack:
            node, i = stack[-1]
            succs = self.succ.get(node, ())
            if i < len(succs):
                stack[-1] = (node, i + 1)
                d = succs[i]
                if d not in seen:
                    seen.add(d)
                    stack.append((d, 0))
            else:
                order.append(node)
                stack.pop()
        order.reverse()
        return order

    # -- dominance -----------------------------------------------------

    def dominates(self, a: int, b: int) -> bool:
        while b is not None:
            if a == b:
                return True
            b = self.idom.get(b)
        return False

    def _natural_loops(self) -> dict[int, set[int]]:
        """Loop header -> body node set (header included), merged over
        every back edge targeting the header."""
        loops: dict[int, set[int]] = {}
        for n in self.reachable:
            for d in self.succ.get(n, ()):
                if d in self.reachable and self.dominates(d, n):
                    body = loops.setdefault(d, {d})
                    # Walk predecessors from the latch, stopping at the
                    # header.
                    stack = [n]
                    while stack:
                        m = stack.pop()
                        if m in body:
                            continue
                        body.add(m)
                        stack.extend(self.pred.get(m, ()))
        return loops

    # -- postdominance -------------------------------------------------

    def _ipostdoms(self) -> dict[int, int | None]:
        """Immediate postdominator per node, or None when a node cannot
        reach the virtual exit (then joins involving it are invalid)."""
        virtual = -1
        rsucc: dict[int, list[int]] = {n: [] for n in self.reachable}
        rsucc[virtual] = []
        for n in self.reachable:
            if n in self.terminals or not self.succ.get(n):
                rsucc[virtual].append(n)
            for d in self.succ.get(n, ()):
                if d in self.reachable:
                    rsucc.setdefault(d, []).append(n)
        # Postorder over the reversed graph from the virtual root.
        order: list[int] = []
        seen = {virtual}
        stack: list[tuple[int, int]] = [(virtual, 0)]
        while stack:
            node, i = stack[-1]
            succs = rsucc.get(node, ())
            if i < len(succs):
                stack[-1] = (node, i + 1)
                d = succs[i]
                if d not in seen:
                    seen.add(d)
                    stack.append((d, 0))
            else:
                order.append(node)
                stack.pop()
        order.reverse()  # now RPO of the reversed graph
        pos = {n: i for i, n in enumerate(order)}
        # Predecessors in the reversed graph == successors in the CFG,
        # plus terminal -> virtual.
        rpred: dict[int, list[int]] = {n: [] for n in order}
        for n, ds in rsucc.items():
            for d in ds:
                if d in pos:
                    rpred[d].append(n)
        ipdom = _idoms(order, pos, rpred, virtual)
        return {
            n: (None if ipdom.get(n) in (None, virtual) else ipdom.get(n))
            for n in self.reachable
            if n != virtual
        }


def _idoms(
    rpo: list[int],
    rpo_pos: dict[int, int],
    pred: dict[int, list[int]],
    entry: int,
) -> dict[int, int | None]:
    """Iterative immediate-dominator computation (CHK algorithm)."""
    idom: dict[int, int | None] = {entry: entry}
    changed = True
    while changed:
        changed = False
        for n in rpo:
            if n == entry:
                continue
            new = None
            for p in pred.get(n, ()):
                if p not in idom:
                    continue
                if new is None:
                    new = p
                else:
                    new = _intersect(new, p, idom, rpo_pos)
            if new is not None and idom.get(n) != new:
                idom[n] = new
                changed = True
    idom[entry] = None
    return idom


def _intersect(a: int, b: int, idom: dict, rpo_pos: dict) -> int:
    while a != b:
        while rpo_pos[a] > rpo_pos[b]:
            a = idom[a]
        while rpo_pos[b] > rpo_pos[a]:
            b = idom[b]
    return a
