"""Source emission: one checked CFG -> one Python function's text.

Each procedure lowers to a ``def P_<name>(...)`` whose body replays the
reference interpreter's observable semantics exactly — same evaluation
order, same error messages, same float accumulation order for costs —
but with loops as native ``while`` blocks, scalars as Python locals,
constants folded, coercions inlined, and counter bumps emitted as
``slots[i] += 1.0`` (Opt-3 batched trip additions stay one add per
loop entry).  Control flow that resists structuring falls back to a
dispatch loop over the same per-node code, never to a lowering
failure; :class:`~repro.fastexec.exprs.LoweringError` is reserved for
the same call-shape conditions the threaded backend rejects.

Emission is per *variant*: the cost constants of one machine model and
the slot table of one counter plan are folded into the text, so a
variant is keyed by ``(plan_fingerprint, model)``.

The ``mutation`` hook deliberately miscompiles one site (used by the
mutation-kill suite to prove the conformance harness and the REP4xx
audit actually catch emitter bugs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.graph import StmtKind
from repro.codegen.structure import FlowInfo, Unstructured
from repro.fastexec.exprs import LoweringError
from repro.fastexec.shape import ProcShape
from repro.lang import ast
from repro.lang.symbols import INTRINSICS

#: Seeded miscompile modes for the mutation-kill tests.
MUTATIONS = (
    "slot-off-by-one",
    "drop-node-bump",
    "drop-edge-bump",
    "dup-node-bump",
    "drop-coercion",
    "wrong-loop-bound",
    "swap-branch",
    "off-by-one-bounds",
    "drop-zero-div",
    "drop-cost",
)

_TERMINALS = (StmtKind.EXIT, StmtKind.STOP)

_SIMPLE_OPS = {
    ast.BinOp.ADD: "+",
    ast.BinOp.SUB: "-",
    ast.BinOp.MUL: "*",
    ast.BinOp.LT: "<",
    ast.BinOp.LE: "<=",
    ast.BinOp.GT: ">",
    ast.BinOp.GE: ">=",
    ast.BinOp.EQ: "==",
    ast.BinOp.NE: "!=",
}

_TYPE_CH = {
    ast.Type.INTEGER: "I",
    ast.Type.REAL: "R",
    ast.Type.LOGICAL: "L",
}

_TYPE_NAME = {
    ast.Type.INTEGER: "_T_I",
    ast.Type.REAL: "_T_R",
    ast.Type.LOGICAL: "_T_L",
}


def _lit(value) -> str:
    """A literal whose evaluation reproduces ``value`` exactly."""
    return repr(value)


_FOLDERS = {
    ast.BinOp.ADD: lambda a, b: a + b,
    ast.BinOp.SUB: lambda a, b: a - b,
    ast.BinOp.MUL: lambda a, b: a * b,
    ast.BinOp.LT: lambda a, b: a < b,
    ast.BinOp.LE: lambda a, b: a <= b,
    ast.BinOp.GT: lambda a, b: a > b,
    ast.BinOp.GE: lambda a, b: a >= b,
    ast.BinOp.EQ: lambda a, b: a == b,
    ast.BinOp.NE: lambda a, b: a != b,
}


def _fold(op, a, b):
    """Fold a non-raising operator exactly as the runtime would."""
    return _FOLDERS[op](a, b)


@dataclass
class EV:
    """An emitted expression: code string plus hoisting facts.

    ``frozen`` means re-evaluating the string later in the same node
    cannot raise, has no side effects, and cannot observe state a user
    call or our own emitted statements may change (literals, temps,
    raw locals and pure arithmetic over them).
    """

    code: str
    frozen: bool = False
    const: object = None
    has_const: bool = False


@dataclass
class _Loop:
    header: int
    after: int | None
    body: set[int]


@dataclass
class EmitMeta:
    """What the backend and the checker audit need to know per proc."""

    mode: dict[str, str] = field(default_factory=dict)
    #: proc -> [(slot, kind, where)] in textual order, one entry per
    #: emitted ``slots[`` bump site (duplicates possible for inlined
    #: terminals and for the slow-path replays of fused blocks).
    bumps: dict[str, list[tuple]] = field(default_factory=dict)
    #: proc -> original node ids reachable under the reference's
    #: last-wins dispatch (what structured emission covers).
    reachable: dict[str, set] = field(default_factory=dict)
    #: proc -> [(node id, label)] branch arms the optimizer pruned.
    #: Their slots stay in the table but are provably never bumped
    #: (static FREQ 0); the REP405 audit excludes them.
    pruned_edges: dict[str, list[tuple]] = field(default_factory=dict)
    #: proc -> [(kind, where, *constants)] in textual order, one entry
    #: per emitted path-register site (path-mode variants only):
    #: ``("inc", (nid, label), k)``, ``("flush", (nid, label), bump,
    #: reset)``, ``("exit", nid)``, ``("stop", nid)``, ``("partial",
    #: nid)``.  Duplicates possible, like ``bumps``.
    path_sites: dict[str, list[tuple]] = field(default_factory=dict)
    lines: int = 0
    mutation_applied: bool = False


class ProcEmitter:
    """Emits one procedure's function definition."""

    def __init__(
        self,
        checked,
        shapes: dict[str, ProcShape],
        shape: ProcShape,
        *,
        plan_table=None,
        paths=None,
        costs: list | None = None,
        cu: float | None = None,
        mutation: str | None = None,
        meta: EmitMeta | None = None,
        opts=None,
    ):
        self.checked = checked
        self.shapes = shapes
        self.shape = shape
        self.table = checked.tables[shape.name]
        self.constants = self.table.constants
        self.procedures = checked.unit.procedures
        self.plan = plan_table  # ProcSlotTable or None
        self.paths = paths  # ProcPathPlan or None (exclusive with plan)
        #: Original node id currently being emitted — the suspension
        #: marker the path-mode call-site guards record in partials.
        self.cur_nid = None
        self.costs = costs
        self.cu = cu
        self.mutation = mutation
        self.meta = meta if meta is not None else EmitMeta()
        # Basic-block fusion batches the step charge and the hit
        # counters per straight-line run.  Disabled for mutated
        # emissions: a seeded miscompile must land in always-live
        # code, not in the cold budget-exhaustion replay.
        self.fuse = mutation is None

        self.buf: list[str] = []
        self.ind = 0
        self._tmp = 0
        self.hits_used: set[int] = set()
        self.edges_used: set[int] = set()
        self.trips_used: set[int] = set()
        #: Declared-shape 1-D dummy arrays whose accesses took the
        #: inline fast path; the prologue unpacks their data list.
        self.param_arrays: set[str] = set()
        self.blocks: list[tuple[list[int], list[int]]] = []
        self.uses_ir = False
        self.uses_rnd = False
        self.uses_slots = False
        self.boxed = self._boxed_locals()

        cfg = shape.cfg
        self.kind = {}
        self.node_line = {}
        self.node_stmt = {}
        self.node_cond = {}
        self.node_trip = {}
        for i, nid in enumerate(shape.node_ids):
            node = cfg.nodes[nid]
            self.kind[i] = node.kind
            self.node_line[i] = node.line
            self.node_stmt[i] = node.stmt
            self.node_cond[i] = node.cond
            self.node_trip[i] = node.trip_var
        # The reference dispatch table: every edge, last wins.
        dispatch = {(e.src, e.label): e.dst for e in cfg.edges}
        self.succ_by_label: dict[int, list[tuple[str, int]]] = {}
        for i, nid in enumerate(shape.node_ids):
            pairs = []
            for label in self._labels_of(i):
                dst = dispatch.get((nid, label))
                if dst is None:
                    raise LoweringError(
                        f"{shape.name}: node {nid} has no {label!r} successor"
                    )
                pairs.append((label, shape.dense[dst]))
            self.succ_by_label[i] = pairs
        # Dataflow-planned pruning (``optimize=True``): a forced branch
        # keeps its condition evaluation but loses the untaken arms (a
        # single-successor node emits no if/elif tree); a dead store
        # keeps its charge, cost and counters but loses the store.
        # Pruned arms are recorded so the REP405 audit knows their
        # planned edge slots legitimately have no bump site.
        self.dead_stores: set[int] = set()
        self.meta.pruned_edges.setdefault(shape.name, [])
        if opts is not None and not opts.empty:
            for i, nid in enumerate(shape.node_ids):
                forced = opts.forced.get(nid)
                if forced is not None and len(self.succ_by_label[i]) > 1:
                    kept = [
                        (label, d)
                        for label, d in self.succ_by_label[i]
                        if label == forced
                    ]
                    if len(kept) == 1:
                        self.meta.pruned_edges[shape.name].extend(
                            (nid, label)
                            for label, _d in self.succ_by_label[i]
                            if label != forced
                        )
                        self.succ_by_label[i] = kept
                if (
                    nid in opts.dead_stores
                    and self.kind[i] is StmtKind.ASSIGN
                ):
                    self.dead_stores.add(i)

    # -- small infrastructure ------------------------------------------

    def line(self, text: str) -> None:
        self.buf.append("    " * self.ind + text)

    def temp(self) -> str:
        self._tmp += 1
        return f"_t{self._tmp}"

    def _mut(self, name: str) -> bool:
        """True exactly once per module for the requested mutation."""
        if self.mutation == name and not self.meta.mutation_applied:
            self.meta.mutation_applied = True
            return True
        return False

    def _labels_of(self, i: int):
        kind = self.kind[i]
        if kind in _TERMINALS:
            return ()
        if kind in (StmtKind.IF, StmtKind.WHILE_TEST, StmtKind.DO_TEST):
            return ("T", "F")
        if kind is StmtKind.AIF:
            return ("LT", "EQ", "GT")
        if kind is StmtKind.CGOTO:
            n = len(self.node_stmt[i].targets)
            return tuple(f"C{k}" for k in range(1, n + 1)) + ("U",)
        return ("U",)

    def _boxed_locals(self) -> set[str]:
        """Non-param scalars that must live in Cells (passed by ref)."""
        boxed: set[str] = set()

        def mark(args):
            for arg in args:
                if (
                    isinstance(arg, ast.VarRef)
                    and arg.name not in self.constants
                ):
                    info = self.table.lookup(arg.name)
                    if info is not None and not info.is_array:
                        boxed.add(arg.name)

        proc = self.shape.proc
        for stmt in proc.walk_statements():
            if isinstance(stmt, ast.CallStmt):
                mark(stmt.args)
            for expr in ast.stmt_expressions(stmt):
                for sub in ast.walk_expr(expr):
                    if isinstance(sub, ast.FuncCall) and self._is_user_call(
                        sub.name
                    ):
                        mark(sub.args)
        return boxed

    def _is_user_call(self, name: str) -> bool:
        info = self.table.lookup(name)
        if info is not None and info.is_array:
            return False
        if name in INTRINSICS and name not in self.procedures:
            return False
        return True

    # -- variable access -----------------------------------------------

    def _vinfo(self, name: str):
        return self.table.lookup(name)

    def _is_param(self, name: str) -> bool:
        info = self._vinfo(name)
        return info is not None and info.is_param

    def _read_scalar(self, name: str) -> EV:
        if self._is_param(name) or name in self.boxed:
            return EV(f"V_{name}.value", False)
        return EV(f"V_{name}", True)

    def _ty(self, e) -> str | None:
        """Static value type: 'I'/'R'/'L'/'S' or None when unknown."""
        if isinstance(e, ast.IntLit):
            return "I"
        if isinstance(e, ast.RealLit):
            return "R"
        if isinstance(e, ast.LogicalLit):
            return "L"
        if isinstance(e, ast.StringLit):
            return "S"
        if isinstance(e, ast.VarRef):
            if e.name in self.constants:
                value = self.constants[e.name]
                if isinstance(value, bool):
                    return "L"
                if isinstance(value, int):
                    return "I"
                if isinstance(value, float):
                    return "R"
                return None
            info = self._vinfo(e.name)
            if info is None or info.is_array:
                return None
            return _TYPE_CH.get(info.type)
        if isinstance(e, ast.ArrayRef):
            info = self._vinfo(e.name)
            return _TYPE_CH.get(info.type) if info is not None else None
        if isinstance(e, ast.FuncCall):
            info = self._vinfo(e.name)
            if info is not None and info.is_array:
                return _TYPE_CH.get(info.type)
            if e.name in INTRINSICS and e.name not in self.procedures:
                return self._intrinsic_ty(e)
            callee = self.procedures.get(e.name)
            if callee is not None and callee.kind is ast.ProcKind.FUNCTION:
                ret = self.checked.tables[e.name].lookup(e.name)
                if ret is not None:
                    return _TYPE_CH.get(ret.type)
            return None
        if isinstance(e, ast.Unary):
            if e.op is ast.UnOp.NOT:
                return "L"
            inner = self._ty(e.operand)
            if e.op is ast.UnOp.POS:
                return inner
            return inner if inner in ("I", "R") else None
        if isinstance(e, ast.Binary):
            op = e.op
            if op.is_comparison or op.is_logical:
                return "L"
            lt, rt = self._ty(e.left), self._ty(e.right)
            if lt not in ("I", "R") or rt not in ("I", "R"):
                return None
            if op is ast.BinOp.POW:
                return "I" if (lt, rt) == ("I", "I") else "R"
            if op is ast.BinOp.DIV:
                return "I" if (lt, rt) == ("I", "I") else "R"
            return "I" if (lt, rt) == ("I", "I") else "R"
        return None

    def _intrinsic_ty(self, e: ast.FuncCall) -> str | None:
        name, n = e.name, len(e.args)
        args = [self._ty(a) for a in e.args]
        if name == "MOD" and n == 2:
            if args == ["I", "I"]:
                return "I"
            if all(a in ("I", "R") for a in args):
                return "R" if "R" in args else "I"
            return None
        if name in ("MIN", "MAX") and n >= 1:
            if all(a == "I" for a in args):
                return "I"
            if all(a == "R" for a in args):
                return "R"
            return None
        if name == "ABS" and n == 1:
            return args[0] if args[0] in ("I", "R") else None
        if name == "SIGN" and n == 2:
            if args[0] in ("I", "R") and args[1] in ("I", "R"):
                return args[0]
            return None
        if name in ("SQRT", "EXP", "LOG", "SIN", "COS", "ATAN") and n == 1:
            return "R"
        if name in ("INT", "NINT") and n == 1:
            return "I"
        if name in ("REAL", "FLOAT") and n == 1:
            return "R"
        if name == "IRAND" and n == 2:
            return "I"
        if name == "RAND" and n == 0:
            return "R"
        return None

    def _stmtful(self, e) -> bool:
        """Will ``ex(e)`` emit statements (calls or checked loads)?"""
        if isinstance(e, (ast.ArrayRef,)):
            return True
        if isinstance(e, ast.FuncCall):
            info = self._vinfo(e.name)
            if info is not None and info.is_array:
                return True
            if self._is_user_call(e.name):
                return True
            return any(self._stmtful(a) for a in e.args)
        if isinstance(e, ast.Unary):
            return self._stmtful(e.operand)
        if isinstance(e, ast.Binary):
            return self._stmtful(e.left) or self._stmtful(e.right)
        return False

    def _has_call(self, e) -> bool:
        for sub in ast.walk_expr(e):
            if isinstance(sub, ast.FuncCall) and self._is_user_call(sub.name):
                return True
        return False

    # -- expressions ----------------------------------------------------

    def _hoist(self, ev: EV) -> EV:
        if ev.frozen:
            return ev
        t = self.temp()
        self.line(f"{t} = {ev.code}")
        return EV(t, True, ev.const, ev.has_const)

    def ex_list(self, exprs) -> list[EV]:
        """Emit a list of expressions preserving reference order."""
        out: list[EV] = []
        for e in exprs:
            if self._stmtful(e):
                # Statements follow: force everything pending that the
                # statements could affect (or outrace in raising).
                out = [self._hoist(ev) for ev in out]
            out.append(self.ex(e))
        return out

    def ex(self, e) -> EV:
        if isinstance(e, (ast.IntLit, ast.RealLit, ast.LogicalLit)):
            return EV(_lit(e.value), True, e.value, True)
        if isinstance(e, ast.StringLit):
            return EV(_lit(e.value), True, e.value, True)
        if isinstance(e, ast.VarRef):
            if e.name in self.constants:
                value = self.constants[e.name]
                return EV(_lit(value), True, value, True)
            info = self._vinfo(e.name)
            if info is not None and info.is_array:
                # The reference reads ``slot.value`` and crashes with
                # AttributeError; reproduce the same crash shape.
                return EV(f"V_{e.name}.value", False)
            return self._read_scalar(e.name)
        if isinstance(e, ast.ArrayRef):
            return self._element_get(e.name, e.indices, e.line)
        if isinstance(e, ast.FuncCall):
            info = self._vinfo(e.name)
            if info is not None and info.is_array:
                return self._element_get(e.name, e.args, e.line)
            if e.name in INTRINSICS and e.name not in self.procedures:
                return self._intrinsic(e)
            result = self.emit_call(e.name, list(e.args), e.line)
            return EV(result, True)
        if isinstance(e, ast.Unary):
            if e.op is ast.UnOp.POS:
                return self.ex(e.operand)
            inner = self.ex(e.operand)
            if e.op is ast.UnOp.NEG:
                return EV(f"(-{inner.code})", inner.frozen)
            if self._ty(e.operand) == "L":
                return EV(f"(not {inner.code})", inner.frozen)
            return EV(f"_notc({inner.code}, {e.line})", False)
        if isinstance(e, ast.Binary):
            return self._binary(e)
        raise LoweringError(f"cannot lower expression {e!r}")

    def _binary(self, e: ast.Binary) -> EV:
        op = e.op
        if op is ast.BinOp.AND or op is ast.BinOp.OR:
            return self._logical(e)
        parts = self.ex_list([e.left, e.right])
        left, right = parts
        sym = _SIMPLE_OPS.get(op)
        if sym is not None:
            if left.has_const and right.has_const:
                value = _fold(op, left.const, right.const)
                return EV(_lit(value), True, value, True)
            return EV(
                f"({left.code} {sym} {right.code})",
                left.frozen and right.frozen,
            )
        if op is ast.BinOp.DIV:
            if self._mut("drop-zero-div"):
                return EV(f"({left.code} / {right.code})", False)
            return EV(f"_divc({left.code}, {right.code}, {e.line})", False)
        if op is ast.BinOp.POW:
            return EV(f"_pow({left.code}, {right.code}, {e.line})", False)
        raise LoweringError(f"cannot lower operator {op}")

    def _logical(self, e: ast.Binary) -> EV:
        word = "and" if e.op is ast.BinOp.AND else "or"
        chk = "_andchk" if e.op is ast.BinOp.AND else "_orchk"
        msg = ".AND. of non-LOGICAL" if word == "and" else ".OR. of non-LOGICAL"
        lt, rt = self._ty(e.left), self._ty(e.right)
        if not self._stmtful(e.right):
            left = self.ex(e.left)
            right = self.ex(e.right)
            lc = (
                left.code
                if lt == "L"
                else f"{chk}({left.code}, {e.line})"
            )
            rc = (
                right.code
                if rt == "L"
                else f"{chk}({right.code}, {e.line})"
            )
            frozen = left.frozen and right.frozen and lt == "L" and rt == "L"
            return EV(f"({lc} {word} {rc})", frozen)
        # The right side needs statements: spell out the short circuit.
        left = self.ex(e.left)
        t = self.temp()
        self.line(f"{t} = {left.code}")
        if lt != "L":
            self.line(f"if not _isinst({t}, _bool):")
            self.line(f"    raise IE({msg!r}, {e.line})")
        self.line(f"if {t}:" if word == "and" else f"if not {t}:")
        self.ind += 1
        right = self.ex(e.right)
        self.line(f"{t} = {right.code}")
        if rt != "L":
            self.line(f"if not _isinst({t}, _bool):")
            self.line(f"    raise IE({msg!r}, {e.line})")
        self.ind -= 1
        return EV(t, True)

    def _index_codes(self, index_exprs) -> list[tuple[str, EV]]:
        """Evaluate subscripts in reference order; int-coerce each."""
        parts = self.ex_list(list(index_exprs))
        out = []
        for p, ix in zip(parts, index_exprs):
            code = p.code
            if self._ty(ix) != "I":
                code = f"_int({code})"
            if not p.frozen or self._ty(ix) != "I":
                t = self.temp()
                self.line(f"{t} = {code}")
                code = t
            out.append((code, p))
        return out

    def _bounds_checks(
        self, name, info, codes, line, *, runtime: bool
    ) -> None:
        """Per-subscript checks in index order, like Array._offset.

        ``runtime`` means a dummy array: extents come from the actual
        array's unpacked ``V_<name>_b<k>`` locals (declared extents of
        dummies are conventionally 1s) and the message reports the
        caller's array name, not the local alias.
        """
        for k, ((code, p), dim) in enumerate(zip(codes, info.dims), 1):
            if runtime:
                b = f"V_{name}_b{k}"
                self.line(f"if not (1 <= {code} <= {b}):")
                self.line(
                    f"    raise IE('%s: subscript %d out of bounds "
                    f"1..%d' % (V_{name}.name, {code}, {b}), {line})"
                )
                continue
            if (
                p.has_const
                and isinstance(p.const, (int, float, bool))
                and 1 <= int(p.const) <= dim
            ):
                continue
            self.line(f"if not (1 <= {code} <= {dim}):")
            self.line(
                f"    raise IE('{name}: subscript %d out of bounds "
                f"1..{dim}' % {code}, {line})"
            )

    def _offset_code(self, name, info, codes, *, runtime: bool) -> str:
        """The column-major flat offset with strides folded in."""
        terms = []
        if runtime:
            strides: list[str] = []
            for k, (code, _p) in enumerate(codes, 1):
                if not strides:
                    terms.append(f"{code} - 1")
                elif len(strides) == 1:
                    terms.append(f"({code} - 1) * {strides[0]}")
                else:
                    terms.append(
                        f"({code} - 1) * ({' * '.join(strides)})"
                    )
                strides.append(f"V_{name}_b{k}")
            return " + ".join(terms)
        stride = 1
        for (code, p), dim in zip(codes, info.dims):
            if p.has_const and isinstance(p.const, (int, float, bool)):
                k = (int(p.const) - 1) * stride
                if k:
                    terms.append(str(k))
            elif stride == 1:
                terms.append(f"{code} - 1")
            else:
                terms.append(f"({code} - 1) * {stride}")
            stride *= dim
        return " + ".join(terms) if terms else "0"

    def _element_get(self, name, index_exprs, line) -> EV:
        info = self._vinfo(name)
        obj = f"V_{name}"
        if (
            info is not None
            and info.is_array
            and 1 < len(index_exprs) == len(info.dims)
        ):
            # Multi-dimensional with statically known shape: inline
            # the checks and the strided flat offset.
            codes = self._index_codes(index_exprs)
            if not info.is_param:
                self._bounds_checks(name, info, codes, line, runtime=False)
                return EV(
                    f"{obj}_d"
                    f"[{self._offset_code(name, info, codes, runtime=False)}]",
                    False,
                )
            self.param_arrays.add(name)
            t = self.temp()
            self.line(f"if {obj}_d is not None:")
            self.ind += 1
            self._bounds_checks(name, info, codes, line, runtime=True)
            self.line(
                f"{t} = {obj}_d"
                f"[{self._offset_code(name, info, codes, runtime=True)}]"
            )
            self.ind -= 1
            self.line("else:")
            idxs = ", ".join(c for c, _p in codes)
            self.line(f"    {t} = _getn({obj}, ({idxs}), {name!r}, {line})")
            return EV(t, True)
        if (
            info is not None
            and info.is_array
            and len(index_exprs) == len(info.dims) == 1
        ):
            dim = info.dims[0]
            ix = index_exprs[0]
            ev = self.ex(ix)
            in_bounds = False
            if ev.has_const and isinstance(ev.const, (int, float, bool)):
                k = int(ev.const)
                in_bounds = 1 <= k <= dim
                if not info.is_param:
                    if in_bounds:
                        return EV(f"{obj}_d[{k - 1}]", False)
                    self.line(
                        f"raise IE('{name}: subscript {k} out of bounds "
                        f"1..{dim}', {line})"
                    )
                    return EV("None", True)
            code = ev.code
            if self._ty(ix) != "I":
                code = f"_int({code})"
            if not ev.frozen or self._ty(ix) != "I":
                t = self.temp()
                self.line(f"{t} = {code}")
                code = t
            if info.is_param:
                # Rank-1 dummy array: when the actual is a matching
                # array (prologue guard), load straight from the
                # unpacked data list with its runtime extent;
                # otherwise the generic helper reproduces the
                # reference's checks and messages.
                self.param_arrays.add(name)
                t = self.temp()
                self.line(f"if {obj}_d is not None:")
                self.ind += 1
                self._bounds_checks(
                    name, info, [(code, ev)], line, runtime=True
                )
                self.line(f"{t} = {obj}_d[{code} - 1]")
                self.ind -= 1
                self.line("else:")
                self.line(
                    f"    {t} = _getn({obj}, ({code},), {name!r}, {line})"
                )
                return EV(t, True)
            lo = 0 if self._mut("off-by-one-bounds") else 1
            self.line(f"if not ({lo} <= {code} <= {dim}):")
            self.line(
                f"    raise IE('{name}: subscript %d out of bounds "
                f"1..{dim}' % {code}, {line})"
            )
            return EV(f"{obj}_d[{code} - 1]", False)
        parts = self.ex_list(list(index_exprs))
        idxs = ", ".join(
            p.code if self._ty(ix) == "I" else f"_int({p.code})"
            for p, ix in zip(parts, index_exprs)
        )
        tail = "," if len(index_exprs) == 1 else ""
        return EV(f"_getn({obj}, ({idxs}{tail}), {name!r}, {line})", False)

    def _intrinsic(self, e: ast.FuncCall) -> EV:
        name, line = e.name, e.line
        parts = self.ex_list(list(e.args))
        a = [p.code for p in parts]
        n = len(a)
        if name == "MOD" and n == 2:
            lt, rt = self._ty(e.args[0]), self._ty(e.args[1])
            if lt in ("I", "R") and rt in ("I", "R"):
                # Known numeric operands: the divisor check and the
                # int/float split of _fortran_mod resolve statically.
                pa, pb = parts
                if not pa.frozen:
                    pa = self._hoist(pa)
                if not pb.frozen:
                    pb = self._hoist(pb)
                if not (pb.has_const and pb.const != 0):
                    self.line(f"if {pb.code} == 0:")
                    self.line("    raise IE('MOD with zero divisor')")
                inner = f"_mfmod({pa.code}, {pb.code})"
                if (lt, rt) == ("I", "I"):
                    inner = f"_int({inner})"
                return EV(inner, False)
            return EV(f"_mod({a[0]}, {a[1]})", False)
        if name == "MIN":
            return EV(f"_min([{', '.join(a)}])", False)
        if name == "MAX":
            return EV(f"_max([{', '.join(a)}])", False)
        if name == "ABS" and n == 1:
            return EV(f"_abs({a[0]})", False)
        if name == "SIGN" and n == 2:
            return EV(f"_sign({a[0]}, {a[1]})", False)
        if name == "SQRT" and n == 1:
            return EV(f"_sqrtc({a[0]}, {line})", False)
        if name == "EXP" and n == 1:
            return EV(f"_mexp({a[0]})", False)
        if name == "LOG" and n == 1:
            return EV(f"_logc({a[0]}, {line})", False)
        if name == "SIN" and n == 1:
            return EV(f"_msin({a[0]})", False)
        if name == "COS" and n == 1:
            return EV(f"_mcos({a[0]})", False)
        if name == "ATAN" and n == 1:
            return EV(f"_matan({a[0]})", False)
        if name == "INT" and n == 1:
            return EV(f"_int({a[0]})", False)
        if name == "NINT" and n == 1:
            return EV(f"_int(_round({a[0]}))", False)
        if name in ("REAL", "FLOAT") and n == 1:
            return EV(f"_float({a[0]})", False)
        if name == "IRAND" and n == 2:
            self.uses_ir = True
            return EV(f"_irand(_ir, {a[0]}, {a[1]}, {line})", False)
        if name == "RAND" and n == 0:
            self.uses_rnd = True
            return EV("_rnd()", False)
        if name == "INPUT" and n == 1:
            self.uses_ir = True
            return EV(f"_input(_ir, {a[0]}, {line})", False)
        self.uses_ir = True
        return EV(f"_ir.call({name!r}, [{', '.join(a)}], {line})", False)

    # -- calls ----------------------------------------------------------

    def emit_call(self, name: str, arg_exprs: list, line) -> str:
        """Emit a user-procedure call; returns the result temp name."""
        callee = self.procedures.get(name)
        if callee is None:
            raise LoweringError(f"call to unknown procedure {name}")
        if name not in self.shapes:
            raise LoweringError(f"no lowered body for procedure {name}")
        callee_table = self.checked.tables[name]
        if len(arg_exprs) != len(callee.params):
            raise LoweringError(
                f"arity mismatch calling {name}: "
                f"{len(arg_exprs)} args for {len(callee.params)} params"
            )
        self.line("_s[0] += _d")
        self.line("_d = 0")
        self.line(f"_dchk({name!r})")
        args: list[str] = []
        dead = False
        for param, actual in zip(callee.params, arg_exprs):
            info = callee_table.lookup(param)
            if info is None:
                raise LoweringError(f"{name}: unknown param {param}")
            if dead:
                args.append("None")
                continue
            arg, dead = self._binder(info, actual, name)
            args.append(arg)
        result = self.temp()
        if dead:
            self.line(f"{result} = None")
        elif self.paths is not None:
            # If the callee STOPs, this frame is suspended mid-path:
            # record its partial prefix as _HALT unwinds (innermost
            # frames append first, matching finalize_run's order).
            self.line("try:")
            self.line(f"    {result} = P_{name}({', '.join(args)})")
            self.line("except _HALT:")
            self.line(
                f"    _PSB[0].append(({self.shape.name!r}, "
                f"{self.cur_nid}, _pr))"
            )
            self.line("    raise")
            self.line("_b = _ms - _s[0]")
        else:
            self.line(f"{result} = P_{name}({', '.join(args)})")
            self.line("_b = _ms - _s[0]")
        return result

    def _binder(self, info, actual, callee: str) -> tuple[str, bool]:
        """One argument binding; returns (arg expression, now-dead)."""
        line = actual.line
        if (
            isinstance(actual, ast.VarRef)
            and actual.name not in self.constants
        ):
            ainfo = self._vinfo(actual.name)
            if ainfo is not None and ainfo.is_array:
                if not info.is_array:
                    self.line(
                        f"raise IE('{callee}: array passed for scalar "
                        f"param {info.name}', {line})"
                    )
                    return "None", True
                return f"V_{actual.name}", False
            if info.is_array:
                self.line(
                    f"raise IE('{callee}: scalar passed for array "
                    f"param {info.name}', {line})"
                )
                return "None", True
            return f"V_{actual.name}", False
        if info.is_array:
            self.line(
                f"raise IE('{callee}: expression passed for array "
                f"param {info.name}', {line})"
            )
            return "None", True
        element = None
        if isinstance(actual, ast.ArrayRef):
            element = (actual.name, actual.indices)
        elif isinstance(actual, ast.FuncCall):
            ainfo = self._vinfo(actual.name)
            if ainfo is not None and ainfo.is_array:
                element = (actual.name, actual.args)
        if element is not None:
            aname, index_exprs = element
            parts = self.ex_list(list(index_exprs))
            idxs = ", ".join(
                p.code if self._ty(ix) == "I" else f"_int({p.code})"
                for p, ix in zip(parts, index_exprs)
            )
            tail = "," if len(index_exprs) == 1 else ""
            t = self.temp()
            self.line(f"{t} = _eref(V_{aname}, ({idxs}{tail}), {line})")
            return t, False
        value = self.ex(actual)
        t = self.temp()
        self.line(
            f"{t} = _cellv({_TYPE_NAME[info.type]}, {value.code}, {line})"
        )
        return t, False

    # -- stores ---------------------------------------------------------

    def _can_coerce(self, target_type, vty) -> bool:
        """False when a store of static type ``vty`` into the target
        must unconditionally raise (``_coerced`` would return None)."""
        if target_type is ast.Type.LOGICAL:
            return vty not in ("I", "R")
        return vty != "L"

    def _coerced(self, code: str, target_type, vty, line) -> str | None:
        """Inline coercion of ``code`` into ``target_type``.

        Returns None when the store must unconditionally raise (the
        caller emits the raise after evaluating the value).
        """
        # The mutation drops the first *real* conversion: a store that
        # already matches its target type coerces trivially, so firing
        # there would be observationally invisible.
        if target_type is ast.Type.INTEGER:
            if vty == "I":
                return code
            if self._mut("drop-coercion"):
                return code
            if vty == "R":
                return f"_int({code})"
            if vty == "L":
                return None
            return f"_cI({code}, {line})"
        if target_type is ast.Type.REAL:
            if vty == "R":
                return code
            if self._mut("drop-coercion"):
                return code
            if vty == "I":
                return f"_float({code})"
            if vty == "L":
                return None
            return f"_cR({code}, {line})"
        if vty == "L":
            return code
        if self._mut("drop-coercion"):
            return code
        if vty in ("I", "R"):
            return None
        return f"_cL({code}, {line})"

    _RAISE_MSG = {
        ast.Type.INTEGER: "cannot store LOGICAL in INTEGER",
        ast.Type.REAL: "cannot store LOGICAL in REAL",
        ast.Type.LOGICAL: "cannot store number in LOGICAL",
    }

    def _store_scalar(self, name: str, value_ev: EV, vty, line) -> None:
        if self._is_param(name):
            self.line(f"V_{name}.set({value_ev.code}, {line})")
            return
        info = self._vinfo(name)
        coerced = self._coerced(value_ev.code, info.type, vty, line)
        if coerced is None:
            if not value_ev.frozen:
                self._hoist(value_ev)
            self.line(f"raise IE({self._RAISE_MSG[info.type]!r}, {line})")
            return
        if name in self.boxed:
            self.line(f"V_{name}.value = {coerced}")
        else:
            self.line(f"V_{name} = {coerced}")

    def _emit_assign(self, stmt: ast.Assign) -> None:
        target = stmt.target
        line = stmt.line
        if isinstance(target, ast.VarRef):
            vty = self._ty(stmt.value)
            value = self.ex(stmt.value)
            self._store_scalar(target.name, value, vty, line)
            return
        # Array element store: value first, then indices, then the
        # bounds check, then the coercion — the reference's order.
        info = self._vinfo(target.name)
        vty = self._ty(stmt.value)
        value = self.ex(stmt.value)
        if not value.frozen:
            value = self._hoist(value)
        if (
            info is not None
            and info.is_array
            and 1 < len(target.indices) == len(info.dims)
            and (not info.is_param or self._can_coerce(info.type, vty))
        ):
            obj = f"V_{target.name}"
            codes = self._index_codes(target.indices)
            if info.is_param:
                self.param_arrays.add(target.name)
                coerced = self._coerced(value.code, info.type, vty, line)
                self.line(f"if {obj}_d is not None:")
                self.ind += 1
                self._bounds_checks(
                    target.name, info, codes, line, runtime=True
                )
                self.line(
                    f"{obj}_d[{self._offset_code(target.name, info, codes, runtime=True)}]"
                    f" = {coerced}"
                )
                self.ind -= 1
                self.line("else:")
                idxs = ", ".join(c for c, _p in codes)
                self.line(
                    f"    _setn({obj}, ({idxs}), {value.code}, "
                    f"{target.name!r}, {line})"
                )
                return
            self._bounds_checks(
                target.name, info, codes, line, runtime=False
            )
            coerced = self._coerced(value.code, info.type, vty, line)
            if coerced is None:
                self.line(
                    f"raise IE({self._RAISE_MSG[info.type]!r}, {line})"
                )
                return
            self.line(
                f"{obj}_d[{self._offset_code(target.name, info, codes, runtime=False)}]"
                f" = {coerced}"
            )
            return
        if (
            info is not None
            and info.is_array
            and len(target.indices) == len(info.dims) == 1
            and (not info.is_param or self._can_coerce(info.type, vty))
        ):
            dim = info.dims[0]
            ix = target.indices[0]
            ev = self.ex(ix)
            code = ev.code
            if self._ty(ix) != "I":
                code = f"_int({code})"
            if not ev.frozen or self._ty(ix) != "I":
                t = self.temp()
                self.line(f"{t} = {code}")
                code = t
            in_bounds = ev.has_const and 1 <= int(ev.const) <= dim
            if info.is_param:
                # Rank-1 dummy array (see _element_get): the fast path
                # only exists when the store cannot be an unconditional
                # type error, so the inline coercion is total and the
                # generic fallback stays bit-identical.
                self.param_arrays.add(target.name)
                obj = f"V_{target.name}"
                coerced = self._coerced(value.code, info.type, vty, line)
                self.line(f"if {obj}_d is not None:")
                self.ind += 1
                self._bounds_checks(
                    target.name, info, [(code, ev)], line, runtime=True
                )
                self.line(f"{obj}_d[{code} - 1] = {coerced}")
                self.ind -= 1
                self.line("else:")
                self.line(
                    f"    _setn({obj}, ({code},), {value.code}, "
                    f"{target.name!r}, {line})"
                )
                return
            if not in_bounds:
                self.line(f"if not (1 <= {code} <= {dim}):")
                self.line(
                    f"    raise IE('{target.name}: subscript %d out of "
                    f"bounds 1..{dim}' % {code}, {line})"
                )
            coerced = self._coerced(value.code, info.type, vty, line)
            if coerced is None:
                self.line(
                    f"raise IE({self._RAISE_MSG[info.type]!r}, {line})"
                )
                return
            self.line(f"V_{target.name}_d[{code} - 1] = {coerced}")
            return
        parts = self.ex_list(list(target.indices))
        idxs = ", ".join(
            p.code if self._ty(ix) == "I" else f"_int({p.code})"
            for p, ix in zip(parts, target.indices)
        )
        tail = "," if len(target.indices) == 1 else ""
        self.line(
            f"_setn(V_{target.name}, ({idxs}{tail}), {value.code}, "
            f"{target.name!r}, {line})"
        )

    # -- per-node bookkeeping -------------------------------------------

    def bk_charge(self) -> None:
        self.line("_d += 1")
        self.line("if _d > _b:")
        self.line("    raise ILE('exceeded %d node executions' % _ms)")

    def bk_cost(self, k: int) -> None:
        if self.costs is None:
            return
        cost = float(self.costs[k])
        # The mutation drops the first *non-zero* cost add: dropping a
        # zero add would be observationally invisible.
        if cost and self._mut("drop-cost"):
            return
        self.line(f"_c[0] += {_lit(cost)}")

    def bk_node(self, k: int) -> None:
        self.bk_charge()
        self.line(f"_h{k} += 1")
        self.hits_used.add(k)
        self.bk_cost(k)

    # -- fused straight-line blocks -------------------------------------

    #: Kinds a fused block may contain mid-run (single ``U`` successor).
    _FUSE_MID = frozenset(
        {
            StmtKind.ENTRY,
            StmtKind.NOOP,
            StmtKind.ASSIGN,
            StmtKind.PRINT,
            StmtKind.DO_INIT,
            StmtKind.DO_INCR,
        }
    )
    #: Kinds a fused block may end with (the charge covers the branch;
    #: its arms keep exact edge bookkeeping).
    _FUSE_BRANCH = frozenset(
        {
            StmtKind.IF,
            StmtKind.WHILE_TEST,
            StmtKind.DO_TEST,
            StmtKind.AIF,
            StmtKind.CGOTO,
        }
    )

    def _node_has_call(self, k: int) -> bool:
        """Whether the node's emitted code may invoke a user procedure
        (which flushes ``_d`` and consumes step budget of its own)."""
        kind = self.kind[k]
        if kind in (
            StmtKind.ENTRY,
            StmtKind.NOOP,
            StmtKind.DO_INCR,
            StmtKind.DO_TEST,
        ):
            return False
        cond = self.node_cond[k]
        if cond is not None:
            return self._has_call(cond)
        stmt = self.node_stmt[k]
        if kind is StmtKind.PRINT:
            return any(self._has_call(e) for e in stmt.items)
        if kind in (StmtKind.ASSIGN, StmtKind.DO_INIT):
            return any(
                self._has_call(e) for e in ast.stmt_expressions(stmt)
            )
        return True

    def fusable_mid(self, k: int) -> bool:
        return self.kind[k] in self._FUSE_MID and not self._node_has_call(k)

    def fusable_branch(self, k: int) -> bool:
        # A folded (forced) branch has a single successor left: it is
        # no longer a branch for emission purposes and must not end a
        # fused block (the arm heads would misalign with its one pair).
        return (
            self.kind[k] in self._FUSE_BRANCH
            and len(self.succ_by_label[k]) > 1
            and not self._node_has_call(k)
        )

    def begin_block(self, nodes: list[int], trailing_branch: bool) -> None:
        """One step-budget charge and one hit counter for a whole
        straight-line run.

        The fast path charges ``len(nodes)`` steps up front and bumps a
        single block counter; the ``finally`` flush credits every node
        (and every interior unconditional edge) of the block with the
        block count.  When the budget expires inside the block, a
        slow-path replay re-executes the run node by node with the
        reference's exact per-node checks, so the raised error — limit
        or an earlier node's own failure — is identical.  Hit counts
        can only over-count on runs that raise, and a raising run never
        surfaces its counts.
        """
        j = len(self.blocks)
        mids = nodes[:-1] if trailing_branch else nodes
        fused_edges = []
        for k in mids:
            label, _d = self.succ_by_label[k][0]
            nid = self.shape.node_ids[k]
            fused_edges.append(self.shape.edge_index[(nid, label)])
        self.blocks.append((list(nodes), fused_edges))
        n = len(nodes)
        if n == 1:
            self.bk_charge()
        else:
            self.line(f"_d += {n}")
            self.line("if _d > _b:")
            self.ind += 1
            self.line(f"_d -= {n}")
            for pos, k in enumerate(nodes):
                self.bk_charge()
                self.bk_cost(k)
                self.emit_action_body(k)
                if pos < len(nodes) - 1 or not trailing_branch:
                    label, _d2 = self.succ_by_label[k][0]
                    self.bk_edge_slot(k, label)
            # Unreachable: the last per-node charge above must raise.
            self.line("raise ILE('exceeded %d node executions' % _ms)")
            self.ind -= 1
        self.line(f"_blk{j} += 1")

    def _slot_of(self, k: int) -> int | None:
        if self.plan is None:
            return None
        return self.plan.node_slots.get(self.shape.node_ids[k])

    def bump_node(self, k: int, trip_code: str | None = None) -> None:
        """The on_node counter updates (node slot + DO_INIT batches)."""
        if self.plan is None:
            return
        nid = self.shape.node_ids[k]
        ops = 0
        cid = self.plan.node_slots.get(nid)
        if cid is not None:
            if self._mut("slot-off-by-one"):
                cid = cid + 1
            if self._mut("drop-node-bump"):
                pass
            else:
                self.line(f"slots[{cid}] += 1.0")
                self.meta.bumps[self.shape.name].append((cid, "node", nid))
                if self._mut("dup-node-bump"):
                    self.line(f"slots[{cid}] += 1.0")
                    self.meta.bumps[self.shape.name].append(
                        (cid, "node", nid)
                    )
            ops += 1
        if trip_code is not None:
            for bcid, offset in self.plan.batch_slots.get(nid, ()):
                add = trip_code if not offset else f"{trip_code} + {offset}"
                self.line(f"slots[{bcid}] += {add}")
                self.meta.bumps[self.shape.name].append((bcid, "batch", nid))
                ops += 1
        if ops:
            self.uses_slots = True
            self.line(f"_o_l += {ops}")
            if self.cu is not None:
                self.line(f"_cc[0] += {_lit(ops * self.cu)}")

    def bk_path_edge(self, k: int, label: str) -> None:
        """The on_edge path-register update: ``_pr += k`` on a non-zero
        increment (1 op) or the back-edge flush ``paths[_pr + b] += 1;
        _pr = reset`` (2 ops, one ``2*cu`` cycle add, matching the
        reference's per-event charge)."""
        if self.paths is None:
            return
        nid = self.shape.node_ids[k]
        key = (nid, label)
        flush = self.paths.flushes.get(key)
        if flush is not None:
            bump_add, reset = flush
            self.line(f"_pk = _pr + {bump_add}" if bump_add else "_pk = _pr")
            self.line("_pp[_pk] = _pp.get(_pk, 0.0) + 1.0")
            self.line(f"_pr = {reset}")
            self.line("_o_l += 2")
            if self.cu is not None:
                self.line(f"_cc[0] += {_lit(2 * self.cu)}")
            self.meta.path_sites[self.shape.name].append(
                ("flush", key, bump_add, reset)
            )
            return
        inc = self.paths.increments.get(key, 0)
        if inc:
            self.line(f"_pr += {inc}")
            self.line("_o_l += 1")
            if self.cu is not None:
                self.line(f"_cc[0] += {_lit(self.cu)}")
            self.meta.path_sites[self.shape.name].append(("inc", key, inc))

    def bk_edge_slot(self, k: int, label: str) -> None:
        """The on_edge counter update alone — for edges interior to a
        fused block, whose traversal count comes from the block
        counter instead of a per-edge local."""
        self.bk_path_edge(k, label)
        if self.plan is None:
            return
        nid = self.shape.node_ids[k]
        cid = self.plan.edge_slots.get((nid, label))
        if cid is None:
            return
        self.uses_slots = True
        self.line(f"slots[{cid}] += 1.0")
        self.meta.bumps[self.shape.name].append((cid, "edge", (nid, label)))
        self.line("_o_l += 1")
        if self.cu is not None:
            self.line(f"_cc[0] += {_lit(self.cu)}")

    def bk_edge(self, k: int, label: str) -> None:
        nid = self.shape.node_ids[k]
        eidx = self.shape.edge_index[(nid, label)]
        self.line(f"_e{eidx} += 1")
        self.edges_used.add(eidx)
        self.bk_path_edge(k, label)
        if self.plan is None:
            return
        cid = self.plan.edge_slots.get((nid, label))
        if cid is None:
            return
        if self._mut("drop-edge-bump"):
            return
        self.uses_slots = True
        self.line(f"slots[{cid}] += 1.0")
        self.meta.bumps[self.shape.name].append((cid, "edge", (nid, label)))
        self.line("_o_l += 1")
        if self.cu is not None:
            self.line(f"_cc[0] += {_lit(self.cu)}")

    # -- node actions ---------------------------------------------------

    def emit_terminal(self, k: int) -> None:
        """EXIT or STOP, inlined at a predecessor."""
        self.bk_node(k)
        if self.kind[k] is StmtKind.STOP:
            # The reference raises inside _exec_node: no hooks fire.
            if self.paths is not None:
                # Settling the halted frame costs 0 updates (the run is
                # over): a sink STOP's register is a complete path id,
                # the usual STOP leaves a partial-path prefix.  Outer
                # suspended frames add theirs as _HALT unwinds through
                # the call-site guards, innermost first.
                nid = self.shape.node_ids[k]
                if nid in self.paths.stop_sinks:
                    self.line("_pp[_pr] = _pp.get(_pr, 0.0) + 1.0")
                    self.meta.path_sites[self.shape.name].append(
                        ("stop", nid)
                    )
                else:
                    self.line(
                        f"_PSB[0].append(({self.shape.name!r}, {nid}, _pr))"
                    )
                    self.meta.path_sites[self.shape.name].append(
                        ("partial", nid)
                    )
            self.line("raise _HALT()")
            return
        self.bump_node(k)
        if self.paths is not None:
            # The on_node EXIT flush: paths[_pr] += 1 (1 update).
            self.line("_pp[_pr] = _pp.get(_pr, 0.0) + 1.0")
            self.line("_o_l += 1")
            if self.cu is not None:
                self.line(f"_cc[0] += {_lit(self.cu)}")
            self.meta.path_sites[self.shape.name].append(
                ("exit", self.shape.node_ids[k])
            )
        shape = self.shape
        if shape.ret_slot is not None:
            rname = shape.proc.name
            if self._is_param(rname) or rname in self.boxed:
                self.line(f"return V_{rname}.value")
            else:
                self.line(f"return V_{rname}")
        else:
            self.line("return None")

    def emit_action(self, k: int) -> str | None:
        """Bookkeeping + the node's effect, up to (not including) the
        outgoing-edge bookkeeping.  For branch-free kinds the node bump
        is included; returns a selector temp for branching kinds (the
        caller emits the bump + branch)."""
        self.bk_node(k)
        return self.emit_action_body(k)

    def emit_action_body(self, k: int) -> str | None:
        """The node's effect alone — no step charge, hit or cost
        bookkeeping (fused blocks emit those per block)."""
        self.cur_nid = self.shape.node_ids[k]
        kind = self.kind[k]
        line = self.node_line[k]
        if kind in (StmtKind.ENTRY, StmtKind.NOOP):
            self.bump_node(k)
            return None
        if kind is StmtKind.ASSIGN:
            if k in self.dead_stores:
                # Dataflow-planned dead store: the value is never read
                # and the RHS is provably total, so skipping both the
                # evaluation and the store is unobservable.  The step
                # charge, cost and counters still accrue (the reference
                # executes the store, so accounting must match).
                self.bump_node(k)
                return None
            self._emit_assign(self.node_stmt[k])
            self.bump_node(k)
            return None
        if kind is StmtKind.CALL:
            stmt = self.node_stmt[k]
            self.emit_call(stmt.name, list(stmt.args), stmt.line)
            self.bump_node(k)
            return None
        if kind is StmtKind.PRINT:
            stmt = self.node_stmt[k]
            parts = self.ex_list(list(stmt.items))
            if not parts:
                self.line("_out.append('')")
            elif len(parts) == 1:
                self.line(f"_out.append(_fmt({parts[0].code}))")
            else:
                fmts = ", ".join(f"_fmt({p.code})" for p in parts)
                self.line(f"_out.append(' '.join(({fmts})))")
            self.bump_node(k)
            return None
        if kind is StmtKind.DO_INIT:
            self._emit_do_init(k)
            return None
        if kind is StmtKind.DO_INCR:
            self._emit_do_incr(k)
            self.bump_node(k)
            return None
        if kind in (StmtKind.IF, StmtKind.WHILE_TEST):
            cond = self.node_cond[k]
            ev = self.ex(cond)
            t = self.temp()
            self.line(f"{t} = {ev.code}")
            if self._ty(cond) != "L":
                self.line(f"if not _isinst({t}, _bool):")
                self.line(
                    f"    raise IE('IF condition is not LOGICAL', {line})"
                )
            self.bump_node(k)
            return t
        if kind is StmtKind.DO_TEST:
            ts = self.shape.trip_slots[self.node_trip[k]]
            self.trips_used.add(ts)
            self.bump_node(k)
            return f"(_tr{ts} > 0)"
        if kind is StmtKind.AIF:
            cond = self.node_cond[k]
            ev = self.ex(cond)
            t = self.temp()
            self.line(f"{t} = {ev.code}")
            if self._ty(cond) not in ("I", "R"):
                self.line(f"if _isinst({t}, _bool):")
                self.line(
                    f"    raise IE('arithmetic IF on a LOGICAL value', "
                    f"{line})"
                )
            self.bump_node(k)
            return t
        if kind is StmtKind.CGOTO:
            selector = self.node_cond[k]
            ev = self.ex(selector)
            t = self.temp()
            code = ev.code
            if self._ty(selector) != "I":
                code = f"_int({code})"
            self.line(f"{t} = {code}")
            self.bump_node(k)
            return t
        raise LoweringError(f"cannot lower node kind {kind}")

    def _emit_do_init(self, k: int) -> None:
        stmt = self.node_stmt[k]
        line = self.node_line[k]
        exprs = [stmt.start, stmt.stop]
        if stmt.step is not None:
            exprs.append(stmt.step)
        parts = self.ex_list(exprs)
        # All three must be values before the zero check, the var set
        # and the trip computation (the var set may invalidate reads).
        codes = []
        for p in parts:
            if p.has_const:
                codes.append(p.code)
            else:
                t = self.temp()
                self.line(f"{t} = {p.code}")
                codes.append(t)
        if stmt.step is None:
            codes.append("1")
            step_ty = "I"
            step_const_nonzero = True
        else:
            sp = parts[2]
            step_ty = self._ty(stmt.step)
            step_const_nonzero = sp.has_const and sp.const != 0
        start_c, stop_c, step_c = codes
        if not step_const_nonzero:
            self.line(f"if {step_c} == 0:")
            self.line(f"    raise IE('DO loop with zero step', {line})")
        self._store_scalar(
            stmt.var, EV(start_c, True), self._ty(stmt.start), line
        )
        ts = self.shape.trip_slots[self.node_trip[k]]
        self.trips_used.add(ts)
        cstep = None
        if stmt.step is None:
            cstep = 1
        elif parts[2].has_const and type(parts[2].const) is int:
            cstep = parts[2].const
        if self._mut("wrong-loop-bound"):
            self.line(f"_tr{ts} = _trip({start_c}, {stop_c}, {step_c}) + 1")
        elif (
            cstep is not None
            and cstep > 0
            and self._ty(stmt.start) == "I"
            and self._ty(stmt.stop) == "I"
        ):
            # Integer bounds with a constant positive step: the trip
            # count is max(0, span // step) and truncating division
            # matches floor division for the positive spans that
            # survive the clamp.
            self.line(f"_tr{ts} = {stop_c} - {start_c} + {cstep}")
            if cstep == 1:
                self.line(f"if _tr{ts} < 0:")
                self.line(f"    _tr{ts} = 0")
            else:
                self.line(
                    f"_tr{ts} = _tr{ts} // {cstep} if _tr{ts} > 0 else 0"
                )
        else:
            self.line(f"_tr{ts} = _trip({start_c}, {stop_c}, {step_c})")
        self.line(f"_st{ts} = {step_c}")
        self.bump_node(k, trip_code=f"_tr{ts}")

    def _emit_do_incr(self, k: int) -> None:
        stmt = self.node_stmt[k]
        line = self.node_line[k]
        ts = self.shape.trip_slots[self.node_trip[k]]
        self.trips_used.add(ts)
        step_ty = self._ty(stmt.step) if stmt.step is not None else "I"
        var = stmt.var
        read = self._read_scalar(var)
        self._store_scalar(
            var, EV(f"{read.code} + _st{ts}", False), self._mix(var, step_ty),
            line,
        )
        self.line(f"_tr{ts} -= 1")

    def _mix(self, var: str, step_ty: str | None) -> str | None:
        """Static type of ``var + step`` for the DO increment."""
        info = self._vinfo(var)
        vt = _TYPE_CH.get(info.type) if info is not None else None
        if vt == "I" and step_ty == "I":
            return "I"
        if vt in ("I", "R") and step_ty in ("I", "R"):
            return "R" if "R" in (vt, step_ty) else "I"
        return None

    # -- branch emission shared by both body modes ----------------------

    def branch_cond(self, sel: str) -> str:
        if self._mut("swap-branch"):
            return f"(not {sel})"
        return sel

    def _arm_heads(self, k: int, sel: str) -> list[str]:
        """The if/elif/else header lines for a branching node, in the
        same order as ``succ_by_label[k]``."""
        kind = self.kind[k]
        if kind in (StmtKind.IF, StmtKind.WHILE_TEST, StmtKind.DO_TEST):
            return [f"if {self.branch_cond(sel)}:", "else:"]
        if kind is StmtKind.AIF:
            return [f"if {sel} < 0:", f"elif {sel} == 0:", "else:"]
        if kind is StmtKind.CGOTO:
            n = len(self.node_stmt[k].targets)
            heads = [f"if {sel} == 1:"]
            heads.extend(f"elif {sel} == {j}:" for j in range(2, n + 1))
            heads.append("else:")
            return heads
        raise LoweringError(f"cannot branch on node kind {kind}")

    # -- whole-procedure emission ---------------------------------------

    def emit(self) -> list[str]:
        """The complete function definition, as a list of lines."""
        self.meta.bumps.setdefault(self.shape.name, [])
        self.meta.path_sites.setdefault(self.shape.name, [])
        n_nodes = len(self.shape.node_ids)
        flow = FlowInfo(
            {
                i: [d for (_l, d) in self.succ_by_label[i]]
                for i in range(n_nodes)
            },
            self.shape.entry_idx,
            {i for i, kd in self.kind.items() if kd in _TERMINALS},
        )
        self.meta.reachable[self.shape.name] = {
            self.shape.node_ids[i] for i in flow.reachable
        }
        saved_mut = self.meta.mutation_applied
        try:
            body = self._attempt(flow, structured=True)
            mode = "structured"
        except (Unstructured, RecursionError):
            self.meta.mutation_applied = saved_mut
            self.meta.bumps[self.shape.name] = []
            self.meta.path_sites[self.shape.name] = []
            body = self._attempt(flow, structured=False)
            mode = "dispatch"
        self.meta.mode[self.shape.name] = mode
        return self._assemble(body)

    def _attempt(self, flow: FlowInfo, *, structured: bool) -> list[str]:
        self.buf = []
        self.ind = 2
        self._tmp = 0
        self.hits_used = set()
        self.edges_used = set()
        self.trips_used = set()
        self.blocks = []
        self.uses_ir = False
        self.uses_rnd = False
        self.uses_slots = False
        if structured:
            walker = _Walker(self, flow)
            walker.run()
        else:
            self._emit_dispatch(flow)
        return self.buf

    def _emit_dispatch(self, flow: FlowInfo) -> None:
        """Fallback body: a dispatch loop, every node emitted once."""
        n_nodes = len(self.shape.node_ids)
        order = list(flow.rpo) + [
            i for i in range(n_nodes) if i not in flow.reachable
        ]
        self.line(f"_n = {self.shape.entry_idx}")
        self.line("while True:")
        self.ind += 1
        kw = "if"
        for i in order:
            self.line(f"{kw} _n == {i}:")
            kw = "elif"
            self.ind += 1
            if self.kind[i] in _TERMINALS:
                self.emit_terminal(i)
                self.ind -= 1
                continue
            sel = self.emit_action(i)
            pairs = self.succ_by_label[i]
            if len(pairs) == 1:
                label, d = pairs[0]
                self.bk_edge(i, label)
                self.line(f"_n = {d}")
            else:
                for head, (label, d) in zip(self._arm_heads(i, sel), pairs):
                    self.line(head)
                    self.ind += 1
                    self.bk_edge(i, label)
                    self.line(f"_n = {d}")
                    self.ind -= 1
            self.ind -= 1
        self.ind -= 1

    def _assemble(self, body: list[str]) -> list[str]:
        shape = self.shape
        name = shape.name
        is_main = name == self.checked.unit.main.name
        params = ", ".join(f"V_{p}" for p in shape.proc.params)
        out = [f"def P_{name}({params}):"]

        def pro(text: str) -> None:
            out.append("    " + text)

        pro(f"_CB_{name}[0] += 1")
        pro("_ms = _msb[0]")
        pro("_b = _ms - _s[0]")
        pro("_d = 0")
        if self.uses_ir or self.uses_rnd:
            pro("_ir = _irb[0]")
        if self.uses_rnd:
            pro("_rnd = _ir.rng.random")
        if self.uses_slots:
            pro(f"slots = _K[{shape.index}]")
            # The counter-update tally is an exact integer sum, so it
            # can accumulate locally; the finally flush preserves the
            # events recorded so far even when the run raises.
            pro("_o_l = 0")
        if self.paths is not None:
            # The path register lives in the Python frame: call and
            # return restore it for free, exactly the per-frame
            # save/restore the reference executor performs.
            pro(f"_pp = _PC[{shape.index}]")
            pro("_pr = 0")
            pro("_o_l = 0")
        for vname in shape.names:
            info = self.table.lookup(vname)
            if info is None or info.is_param:
                continue
            if info.is_array:
                pro(
                    f"V_{vname} = Array({vname!r}, "
                    f"{_TYPE_NAME[info.type]}, {info.dims!r})"
                )
                pro(f"V_{vname}_d = V_{vname}.data")
            elif vname in self.boxed:
                pro(f"V_{vname} = Cell({_TYPE_NAME[info.type]})")
            else:
                pro(f"V_{vname} = {_lit(_zero(info.type))}")
        for pname in shape.proc.params:
            if pname not in self.param_arrays:
                continue
            info = self.table.lookup(pname)
            # Unpack the dummy array's data list and extents once per
            # call.  The guard pins what the inlined accesses assume:
            # exact class, the declared rank (strides line up) and the
            # declared element type (stores coerce inline).  Bounds
            # come from the *actual* array's extents — dummies are
            # conventionally declared with extent 1 — so any mismatch
            # in rank or type leaves the alias None and every access
            # falls back to the generic checked helpers.
            rank = len(info.dims)
            bs = ", ".join(f"V_{pname}_b{k}" for k in range(1, rank + 1))
            pro(
                f"if V_{pname}.__class__ is Array "
                f"and _len(V_{pname}.dims) == {rank} "
                f"and V_{pname}.type is {_TYPE_NAME[info.type]}:"
            )
            pro(f"    V_{pname}_d = V_{pname}.data")
            pro(f"    {bs}{',' if rank == 1 else ''} = V_{pname}.dims")
            pro("else:")
            pro(f"    V_{pname}_d = None")
        for k in sorted(self.hits_used):
            pro(f"_h{k} = 0")
        for e in sorted(self.edges_used):
            pro(f"_e{e} = 0")
        for j in range(len(self.blocks)):
            pro(f"_blk{j} = 0")
        if not is_main:
            pro("_dep[0] += 1")
        pro("try:")
        out.extend(body)
        pro("finally:")

        def fin(text: str) -> None:
            out.append("        " + text)

        if not is_main:
            fin("_dep[0] -= 1")
        fin("_s[0] += _d")
        if self.uses_slots or self.paths is not None:
            fin("_o[0] += _o_l")
        for k in sorted(self.hits_used):
            fin(f"_NH_{name}[{k}] += _h{k}")
        for e in sorted(self.edges_used):
            fin(f"_EH_{name}[{e}] += _e{e}")
        for j, (bnodes, bedges) in enumerate(self.blocks):
            for k in bnodes:
                fin(f"_NH_{name}[{k}] += _blk{j}")
            for e in bedges:
                fin(f"_EH_{name}[{e}] += _blk{j}")
        if is_main:
            fin("_mv = _mvb[0]")
            for vname in shape.names:
                info = self.table.lookup(vname)
                if info is None or info.is_array:
                    continue
                read = (
                    f"V_{vname}.value" if vname in self.boxed else f"V_{vname}"
                )
                fin(f"_mv[{vname!r}] = {read}")
        return out


def _zero(type_):
    if type_ is ast.Type.INTEGER:
        return 0
    if type_ is ast.Type.LOGICAL:
        return False
    return 0.0


class _Walker:
    """Structured body emission: loops become ``while True`` blocks,
    branches become ``if``/``elif`` trees joined at postdominators.

    Every non-terminal node is emitted exactly once; terminals (EXIT,
    STOP) are inlined wherever control reaches them.  Anything the
    walker cannot express raises :class:`Unstructured` and the caller
    re-emits the procedure as a dispatch loop.
    """

    def __init__(self, pe: ProcEmitter, flow: FlowInfo):
        self.pe = pe
        self.flow = flow
        self.emitted: set[int] = set()

    def run(self) -> None:
        self.chain(self.flow.entry, None, ())
        leftover = (
            self.flow.reachable - self.emitted - self.flow.terminals
        )
        if leftover:
            raise Unstructured()

    # -- resolution ----------------------------------------------------

    def resolve(self, d: int, stack: tuple, follow: int | None):
        """How to reach dense node ``d`` from the current position:
        ('terminal', d) inline it, ('continue',)/('break',) re-enter or
        leave the innermost loop, ('fall',) it is the local join, None
        emit it here.  Raises Unstructured for non-local jumps."""
        if d in self.flow.terminals:
            return ("terminal", d)
        if stack:
            top = stack[-1]
            if d == top.header:
                return ("continue",)
            if top.after is not None and d == top.after:
                return ("break",)
            if d not in top.body:
                raise Unstructured()
        if follow is not None and d == follow:
            return ("fall",)
        return None

    def transfer(self, r) -> None:
        if r[0] == "terminal":
            self.pe.emit_terminal(r[1])
        elif r[0] == "continue":
            self.pe.line("continue")
        elif r[0] == "break":
            self.pe.line("break")

    # -- walking -------------------------------------------------------

    def chain(
        self,
        n: int | None,
        follow: int | None,
        stack: tuple,
        skip_loop: bool = False,
    ) -> None:
        first = True
        while n is not None and n != follow:
            skip = first and skip_loop
            first = False
            if not skip:
                r = self.resolve(n, stack, follow)
                if r is not None:
                    self.transfer(r)
                    return
                if n in self.flow.loops:
                    n = self.loop(n, stack)
                    continue
            if n in self.emitted:
                raise Unstructured()
            if self.pe.fuse and self.pe.fusable_mid(n):
                n = self.block(n, stack, follow)
            else:
                self.emitted.add(n)
                n = self.step(n, stack, follow)

    def loop(self, h: int, stack: tuple) -> int | None:
        body = self.flow.loops[h]
        after = self._loop_after(h, body)
        self.pe.line("while True:")
        self.pe.ind += 1
        self.chain(h, None, stack + (_Loop(h, after, body),), skip_loop=True)
        self.pe.ind -= 1
        return after

    def _loop_after(self, h: int, body: set[int]) -> int | None:
        outs = set()
        for n in body:
            for _label, d in self.pe.succ_by_label[n]:
                if d not in body and d not in self.flow.terminals:
                    outs.add(d)
        if len(outs) > 1:
            raise Unstructured()
        return next(iter(outs)) if outs else None

    def step(
        self, n: int, stack: tuple, follow: int | None
    ) -> int | None:
        pe = self.pe
        sel = pe.emit_action(n)
        pairs = pe.succ_by_label[n]
        if len(pairs) == 1:
            label, d = pairs[0]
            pe.bk_edge(n, label)
            return d
        return self.arms(n, sel, stack)

    def arms(self, n: int, sel: str | None, stack: tuple) -> int | None:
        """Emit a branching node's if/elif/else arms; returns the join."""
        pe = self.pe
        pairs = pe.succ_by_label[n]
        join = self.flow.ipdom.get(n)
        if join is not None and join in self.flow.terminals:
            join = None
        if stack and join is not None and join not in stack[-1].body:
            # The merge point lies outside the loop: every arm must
            # leave via break/continue/terminal instead.
            join = None
        for head, (label, d) in zip(pe._arm_heads(n, sel), pairs):
            pe.line(head)
            pe.ind += 1
            pe.bk_edge(n, label)
            r = self.resolve(d, stack, join)
            if r is None:
                self.chain(d, join, stack)
            elif r[0] != "fall":
                self.transfer(r)
            pe.ind -= 1
        return join

    def block(
        self, n: int, stack: tuple, follow: int | None
    ) -> int | None:
        """Collect the maximal fusable straight-line run starting at
        ``n`` (optionally ending with a branch) and emit it as one
        fused block."""
        pe = self.pe
        nodes = [n]
        self.emitted.add(n)
        trailing = False
        cur = n
        while True:
            _label, d = pe.succ_by_label[cur][0]
            if (
                d in self.emitted
                or d in self.flow.loops
                or self.resolve(d, stack, follow) is not None
            ):
                break
            if pe.fusable_branch(d):
                nodes.append(d)
                self.emitted.add(d)
                trailing = True
                break
            if not pe.fusable_mid(d):
                break
            nodes.append(d)
            self.emitted.add(d)
            cur = d
        mids = nodes[:-1] if trailing else nodes
        pe.begin_block(nodes, trailing)
        for k in mids:
            pe.bk_cost(k)
            pe.emit_action_body(k)
            label, _d = pe.succ_by_label[k][0]
            pe.bk_edge_slot(k, label)
        if trailing:
            b = nodes[-1]
            pe.bk_cost(b)
            sel = pe.emit_action_body(b)
            return self.arms(b, sel, stack)
        # Leave along the final node's (fused) unconditional edge.
        _label, d = pe.succ_by_label[cur][0]
        r = self.resolve(d, stack, follow)
        if r is None or r[0] == "fall":
            return d
        self.transfer(r)
        return None


def emit_module(
    checked,
    cfgs,
    shapes: dict[str, ProcShape],
    *,
    plan_tables: dict | None = None,
    path_tables: dict | None = None,
    costs: dict | None = None,
    cu: float | None = None,
    mutation: str | None = None,
    optimize=None,
) -> tuple[str, EmitMeta]:
    """Lower every procedure of a checked program to Python source.

    ``plan_tables`` maps procedure name to its
    :class:`~repro.fastexec.plans.ProcSlotTable` (profiled variants),
    ``path_tables`` maps procedure name to its
    :class:`~repro.paths.numbering.ProcPathPlan` (path-profiled
    variants; mutually exclusive with ``plan_tables``),
    ``costs`` maps procedure name to a node-id -> cost dict and ``cu``
    is the machine model's counter-update cost (costed variants).
    ``optimize`` is an optional
    :class:`~repro.dataflow.optimize.OptimizationPlan`; when given,
    branches the constant-propagation pass proved one-sided are folded
    and dataflow-dead stores are dropped before emission.  Counter slot
    tables are preserved — pruned regions have static ``FREQ`` 0, so
    their slots simply stay at 0.0 and results remain bit-identical.
    Returns ``(source, meta)``; ``exec`` the source in a namespace from
    :func:`repro.codegen.runtime.make_namespace` to obtain the
    ``P_<name>`` functions.
    """
    meta = EmitMeta()
    lines: list[str] = []
    for name, cfg in cfgs.items():
        shape = shapes[name]
        table = plan_tables.get(name) if plan_tables else None
        proc_costs = costs.get(name) if costs else None
        dense_costs = (
            [proc_costs[nid] for nid in shape.node_ids]
            if proc_costs is not None
            else None
        )
        emitter = ProcEmitter(
            checked,
            shapes,
            shape,
            plan_table=table,
            paths=path_tables.get(name) if path_tables else None,
            costs=dense_costs,
            cu=cu,
            mutation=mutation,
            meta=meta,
            opts=optimize.proc(name) if optimize is not None else None,
        )
        lines.extend(emitter.emit())
        lines.append("")
    source = "\n".join(lines) + "\n"
    meta.lines = len(lines) + 1
    return source, meta
