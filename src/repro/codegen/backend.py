"""The codegen execution backend: CFGs lowered to Python source.

A :class:`CodegenBackend` owns one program's emitted form.  Each
*variant* — one machine model's cost constants and one counter plan's
slot table folded into the text — is emitted once by
:func:`repro.codegen.emit.emit_module`, compiled with :func:`compile`,
``exec``'d into a namespace from
:func:`repro.codegen.runtime.make_namespace`, and cached by
``(plan fingerprint, model)``.

Runs are bit-identical to the reference interpreter: same outputs,
same error messages from the same program states, same float
accumulation order for ``total_cost``/``counter_cost``, and identical
counts/counter values.  Counter bumps write *directly* into the
:class:`~repro.profiling.runtime.PlanExecutor`'s live arrays (the
reference updates them per event too), so only ``updates`` needs a
deferred flush.  Like the threaded backend, a CodegenBackend is not
reentrant: emitted functions write backend-owned boxes.
"""

from __future__ import annotations

import hashlib
import sys
import time

from repro.costs.estimate import CostEstimator
from repro.errors import InterpreterError
from repro.fastexec.backend import UnsupportedHooksError
from repro.fastexec.exprs import LoweringError
from repro.fastexec.plans import lower_counter_plan, plan_fingerprint
from repro.fastexec.shape import ProcShape, build_shape
from repro.interp.intrinsics import IntrinsicRuntime
from repro.interp.machine import RunResult, _ProgramHalt
from repro.obs import metrics, span
from repro.paths.numbering import path_plan_fingerprint
from repro.paths.runtime import PathExecutor
from repro.profiling.runtime import PlanExecutor

from repro.codegen.emit import EmitMeta, emit_module
from repro.codegen.runtime import make_namespace


class _Variant:
    """One emitted + compiled module."""

    __slots__ = ("source", "meta", "main", "model")

    def __init__(self, source, meta, main, model):
        self.source = source
        self.meta = meta
        self.main = main
        self.model = model


class CodegenBackend:
    """Source-emitting execution engine for one checked program."""

    def __init__(
        self,
        checked,
        cfgs,
        *,
        mutation: str | None = None,
        optimize=None,
    ):
        self.checked = checked
        self.cfgs = cfgs
        #: Test seam for the mutation-kill suite: every variant this
        #: backend emits carries the named deliberate miscompile.
        self.mutation = mutation
        #: Optional :class:`~repro.dataflow.optimize.OptimizationPlan`;
        #: folds dataflow-proven constant branches and drops dead
        #: stores at emission time (results stay bit-identical — the
        #: pruned regions have static FREQ 0).
        self.optimize = optimize
        self._shipped_source: str | None = None
        self._reset_compiled()

    def _reset_compiled(self) -> None:
        self._shapes: dict[str, ProcShape] | None = None
        self._variants: dict[tuple, _Variant] = {}
        self._lower_error: LoweringError | None = None
        # Mutable run-state boxes, captured by the emitted modules'
        # namespaces (identity must stay stable across variants).
        self._steps = [0]
        self._cost = [0.0]
        self._ops_box = [0]
        self._ccost_box = [0.0]
        self._depth_box = [0]
        self._max_depth_box = [0]
        self._max_steps_box = [0]
        self._intr = [None]
        self._outputs: list[str] = []
        self._main_vars_box: list[dict] = [{}]
        self._slots_list: list = []
        self._path_slots_list: list = []
        self._partials_box: list = [None]
        self._node_hits: dict[str, list[int]] = {}
        self._edge_hits: dict[str, list[int]] = {}
        self._call_boxes: dict[str, list[int]] = {}

    def _dchk(self, name: str) -> None:
        """The reference's call-depth check, before argument binding."""
        if self._depth_box[0] >= self._max_depth_box[0]:
            raise InterpreterError(
                f"call depth limit reached invoking {name}"
            )

    # -- pickling: ship the shell + emitted base source ----------------

    def __getstate__(self):
        source = None
        fingerprint = None
        # Optimized backends never ship source: the unpickled shell has
        # no optimization plan, so the cached text would not match.
        base = (
            self._variants.get((None, None))
            if self.optimize is None
            else None
        )
        if base is not None:
            source = base.source
            fingerprint = _fingerprint(base.source)
        return {
            "checked": self.checked,
            "cfgs": self.cfgs,
            "source": source,
            "fingerprint": fingerprint,
        }

    def __setstate__(self, state):
        self.checked = state["checked"]
        self.cfgs = state["cfgs"]
        self.mutation = None
        self.optimize = None
        self._shipped_source = state.get("source")
        shipped_fp = state.get("fingerprint")
        if (
            self._shipped_source is not None
            and shipped_fp != _fingerprint(self._shipped_source)
        ):
            self._shipped_source = None  # stale or corrupt: re-emit
        self._reset_compiled()

    # -- lowering ------------------------------------------------------

    def ensure_lowered(self) -> None:
        """Emit and compile the base variant if not done yet; raises
        LoweringError (memoized) when the program cannot be lowered."""
        if self._shapes is not None:
            return
        if self._lower_error is not None:
            raise self._lower_error
        try:
            shapes: dict[str, ProcShape] = {}
            for index, (name, cfg) in enumerate(self.cfgs.items()):
                shapes[name] = build_shape(self.checked, name, cfg, index)
            self._node_hits = {
                name: [0] * len(s.node_ids) for name, s in shapes.items()
            }
            self._edge_hits = {
                name: [0] * len(s.edge_keys) for name, s in shapes.items()
            }
            self._call_boxes = {name: [0] for name in shapes}
            self._slots_list[:] = [None] * len(shapes)
            self._path_slots_list[:] = [None] * len(shapes)
            self._shapes = shapes
            self._emit_variant(None, None)
        except LoweringError as exc:
            self._shapes = None
            self._lower_error = exc
            metrics.counter(
                "repro_codegen_emits_total",
                "Codegen-backend emission passes.",
                labels=("outcome",),
            ).inc(outcome="fallback")
            raise

    def _emit_variant(self, plan, model) -> _Variant:
        started = time.perf_counter()
        with span("compile.codegen") as codegen_span:
            plan_tables = None
            path_tables = None
            if plan is not None:
                if getattr(plan, "kind", None) == "paths":
                    path_tables = dict(plan.plans)
                else:
                    plan_tables = {
                        name: lower_counter_plan(p)
                        for name, p in plan.plans.items()
                    }
            costs = None
            cu = None
            if model is not None:
                estimator = CostEstimator(self.checked, model)
                costs = {
                    name: {
                        nid: nc.local
                        for nid, nc in estimator.cfg_costs(cfg, name).items()
                    }
                    for name, cfg in self.cfgs.items()
                }
                cu = model.counter_update
            if (
                plan is None
                and model is None
                and self.mutation is None
                and self.optimize is None
                and self._shipped_source is not None
            ):
                # The artifact cache shipped the base source: skip
                # re-emission, compile the cached text directly.
                source = self._shipped_source
                meta = None
            else:
                source, meta = emit_module(
                    self.checked,
                    self.cfgs,
                    self._shapes,
                    plan_tables=plan_tables,
                    path_tables=path_tables,
                    costs=costs,
                    cu=cu,
                    mutation=self.mutation,
                    optimize=self.optimize,
                )
            fingerprint = _fingerprint(source)
            code = compile(source, f"<codegen:{fingerprint[:12]}>", "exec")
            ns = make_namespace(self)
            exec(code, ns)
            main = ns[f"P_{self.checked.unit.main.name}"]
            codegen_span.set_attr(
                procedures=len(self.cfgs),
                lines=source.count("\n"),
                profiled=plan is not None,
                costed=model is not None,
            )
        variant = _Variant(source, meta, main, model)
        key = (
            _plan_key(plan),
            id(model) if model is not None else None,
        )
        self._variants[key] = variant
        metrics.counter(
            "repro_codegen_emits_total",
            "Codegen-backend emission passes.",
            labels=("outcome",),
        ).inc(outcome="ok")
        metrics.histogram(
            "repro_codegen_emit_seconds",
            "Codegen-backend emission latency in seconds.",
        ).observe(time.perf_counter() - started)
        return variant

    def _variant(self, plan, model) -> _Variant:
        key = (
            _plan_key(plan),
            id(model) if model is not None else None,
        )
        variant = self._variants.get(key)
        # The strong model reference inside the variant keeps
        # id(model) stable for its lifetime.
        if variant is not None and (model is None or variant.model is model):
            return variant
        return self._emit_variant(plan, model)

    # -- introspection (tests, --dump-source, REP4xx audit) ------------

    def emitted_source(self, plan=None, model=None) -> str:
        self.ensure_lowered()
        return self._variant(plan, model).source

    def emit_meta(self, plan=None, model=None) -> EmitMeta:
        self.ensure_lowered()
        variant = self._variant(plan, model)
        if variant.meta is None:
            # Base variant compiled from cache-shipped source: emission
            # is deterministic, so re-derive the metadata once.
            _source, variant.meta = emit_module(
                self.checked,
                self.cfgs,
                self._shapes,
                optimize=self.optimize,
            )
        return variant.meta

    # -- execution -----------------------------------------------------

    def run(
        self,
        *,
        model=None,
        hooks=None,
        seed: int = 0,
        inputs: tuple[float, ...] = (),
        max_steps: int = 10_000_000,
        max_depth: int = 200,
        record_counts: bool = True,
    ) -> RunResult:
        """Execute the main PROGRAM unit once (reference-identical)."""
        executor: PlanExecutor | None
        path_executor: PathExecutor | None = None
        if hooks is None:
            executor = None
        elif type(hooks) is PlanExecutor:
            # Exact type: a subclass could override the hook methods,
            # which emitted counter bumps would silently not replicate.
            executor = hooks
        elif type(hooks) is PathExecutor:
            executor = None
            path_executor = hooks
        else:
            raise UnsupportedHooksError(
                f"codegen backend only supports PlanExecutor or "
                f"PathExecutor hooks, not {type(hooks).__name__}"
            )
        self.ensure_lowered()
        active_plan = None
        if executor is not None:
            active_plan = executor.plan
        elif path_executor is not None:
            active_plan = path_executor.plan
        variant = self._variant(active_plan, model)

        for name in self._shapes:
            self._call_boxes[name][0] = 0
            hits = self._node_hits[name]
            hits[:] = [0] * len(hits)
            hits = self._edge_hits[name]
            hits[:] = [0] * len(hits)
        slots = self._slots_list
        for i in range(len(slots)):
            slots[i] = None
        if executor is not None:
            for name, shape in self._shapes.items():
                arr = executor.counters.get(name)
                if arr is not None:
                    slots[shape.index] = arr
        pslots = self._path_slots_list
        for i in range(len(pslots)):
            pslots[i] = None
        self._partials_box[0] = None
        if path_executor is not None:
            # Emitted path bumps write the executor's live per-proc
            # dicts (like the reference on_edge flushes); partials
            # append straight onto its list as _HALT unwinds.
            for name, shape in self._shapes.items():
                counts = path_executor.path_counts.get(name)
                if counts is not None:
                    pslots[shape.index] = counts
            self._partials_box[0] = path_executor.partials
        self._steps[0] = 0
        del self._outputs[:]
        self._cost[0] = 0.0
        self._ops_box[0] = 0
        self._ccost_box[0] = 0.0
        self._intr[0] = IntrinsicRuntime(seed=seed, inputs=inputs)
        self._depth_box[0] = 0
        self._max_steps_box[0] = max_steps
        self._max_depth_box[0] = max_depth
        self._main_vars_box[0] = {}

        halted = "end"
        # Each emitted call frame costs a bounded number of Python
        # frames; make sure our own max_depth limit fires first.
        needed = max_depth * 40 + 200
        old_limit = sys.getrecursionlimit()
        if old_limit < needed:
            sys.setrecursionlimit(needed)
        try:
            try:
                variant.main()
            except _ProgramHalt:
                halted = "stop"
        finally:
            if old_limit < needed:
                sys.setrecursionlimit(old_limit)
            # Counter arrays are the executor's own (live writes, like
            # the reference); only the update tally needs a flush, and
            # a run that raises must still record the events so far.
            if executor is not None:
                executor.updates += self._ops_box[0]
            if path_executor is not None:
                path_executor.updates += self._ops_box[0]
                self._partials_box[0] = None

        result = RunResult()
        result.halted = halted
        result.steps = self._steps[0]
        result.outputs = list(self._outputs)
        result.total_cost = self._cost[0]
        result.counter_ops = self._ops_box[0]
        result.counter_cost = self._ccost_box[0]
        for name, shape in self._shapes.items():
            calls = self._call_boxes[name][0]
            # A procedure that was never entered has all-zero hit
            # arrays; skip the filtering scans outright.
            if record_counts and calls:
                result.node_counts[name] = {
                    nid: hits
                    for nid, hits in zip(
                        shape.node_ids, self._node_hits[name]
                    )
                    if hits
                }
                result.edge_counts[name] = {
                    key: hits
                    for key, hits in zip(
                        shape.edge_keys, self._edge_hits[name]
                    )
                    if hits
                }
            else:
                result.node_counts[name] = {}
                result.edge_counts[name] = {}
            result.call_counts[name] = calls
        if halted in ("end", "stop"):
            result.main_vars.update(self._main_vars_box[0])
        return result


def _plan_key(plan):
    """A variant cache key fragment for a counter or path plan."""
    if plan is None:
        return None
    if getattr(plan, "kind", None) == "paths":
        # path_plan_fingerprint tuples start with "paths": no collision
        # with counter-plan fingerprints in the variant cache.
        return path_plan_fingerprint(plan)
    return plan_fingerprint(plan)


def _fingerprint(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def codegen_backend_for(program, *, optimize: bool = False) -> CodegenBackend:
    """The (cached) codegen backend of a CompiledProgram.

    The backend rides along as a ``_codegen`` attribute so the
    content-hash artifact cache persists its shell — checked program,
    CFGs and the emitted base source — with the program.  With
    ``optimize=True`` a second backend (cached as ``_codegen_opt``)
    is built around the program's dataflow
    :func:`~repro.dataflow.optimize.plan_optimizations` plan; it is
    never pickled with the program.
    """
    if optimize:
        backend = getattr(program, "_codegen_opt", None)
        if backend is None or backend.checked is not program.checked:
            from repro.dataflow.optimize import plan_optimizations

            plan = plan_optimizations(program.checked, program.cfgs)
            backend = CodegenBackend(
                program.checked, program.cfgs, optimize=plan
            )
            program._codegen_opt = backend
        return backend
    backend = getattr(program, "_codegen", None)
    if backend is None or backend.checked is not program.checked:
        backend = CodegenBackend(program.checked, program.cfgs)
        program._codegen = backend
    return backend
