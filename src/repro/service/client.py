"""Blocking client for the profiling service.

Speaks the JSON-over-HTTP protocol of :mod:`repro.service.server`
using only ``http.client``.  One :class:`ServiceClient` holds one
keep-alive connection and is **not** thread-safe — closed-loop load
generators give each worker thread its own client, which is exactly
what ``benchmarks/bench_service_throughput.py`` does.

Non-2xx responses raise :class:`ServiceError` carrying the status
code, the server's structured error body and the ``X-Request-Id``
the server stamped on the response, so callers can tell backpressure
(429), drain (503) and budget exhaustion (504) apart from their own
bad requests (400/404/422) *and* quote the exact request when
correlating with server logs.  Every endpoint accepts an optional
``request_id=`` which is sent as ``X-Request-Id`` and echoed back —
give retries of one logical operation the same id and the server's
per-request log lines line up.
"""

from __future__ import annotations

import http.client
import json
import time
from urllib.parse import quote, urlencode

from repro.errors import ReproError
from repro.profiling.database import ProgramProfile


class ServiceError(ReproError):
    """A non-2xx service response."""

    def __init__(
        self, status: int, payload: dict, request_id: str | None = None
    ):
        error = payload.get("error", {}) if isinstance(payload, dict) else {}
        message = error.get("message", "unknown service error")
        suffix = f" [request {request_id}]" if request_id else ""
        super().__init__(f"HTTP {status}: {message}{suffix}")
        self.status = status
        self.payload = payload
        #: The ``X-Request-Id`` of the failing response (``None`` only
        #: when the server predates the header).
        self.request_id = request_id


class ServiceClient:
    """One keep-alive connection to a profiling service."""

    #: Statuses worth retrying: backpressure (429) and a sharded
    #: deployment's "owning worker is restarting" answer (503).
    RETRYABLE = frozenset({429, 503})

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8437,
        *,
        timeout: float = 60.0,
        retries: int = 0,
        backoff: float = 0.05,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        #: Extra attempts after a retryable response (0 = fail fast).
        self.retries = retries
        #: Base sleep between attempts; doubles per attempt, and the
        #: server's ``retry_after_ms`` hint overrides it when larger.
        self.backoff = backoff
        #: ``X-Request-Id`` of the most recent response (success or
        #: failure) — the handle to quote when reporting a problem.
        self.last_request_id: str | None = None
        self._conn: http.client.HTTPConnection | None = None

    # -- plumbing --------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _exchange(
        self,
        method: str,
        path: str,
        body: bytes | None,
        headers: dict[str, str],
    ):
        """One request/response over the kept-alive connection."""
        conn = self._connection()
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            data = response.read()
        except (http.client.HTTPException, ConnectionError, OSError):
            # A server-side close (drain, protocol error) poisons the
            # kept-alive connection; retry once on a fresh one.
            self.close()
            conn = self._connection()
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            data = response.read()
        self.last_request_id = response.getheader("X-Request-Id")
        if response.will_close:
            self.close()
        return response, data

    def request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        *,
        request_id: str | None = None,
    ) -> dict:
        """One JSON request/response cycle; raises on non-2xx.

        With ``retries > 0``, a 429 (queue full) or 503 (drain, or a
        sharded deployment restarting the owning worker) is retried up
        to ``retries`` extra times with bounded exponential backoff.
        The server's ``retry_after_ms`` hint stretches a too-short
        backoff; retries reuse the same ``X-Request-Id``, so server
        logs show one logical operation.  Every attempt re-sends the
        identical request — safe because ingest deltas are only
        accumulated on a 200, never on a shed request.
        """
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        if request_id is not None:
            headers["X-Request-Id"] = request_id
        for attempt in range(self.retries + 1):
            response, data = self._exchange(method, path, body, headers)
            try:
                parsed = json.loads(data) if data else {}
            except ValueError as exc:
                raise ServiceError(
                    response.status,
                    {"error": {"message": f"unparseable body: {exc}"}},
                    request_id=self.last_request_id,
                ) from exc
            if response.status < 400:
                return parsed
            error = ServiceError(
                response.status, parsed, request_id=self.last_request_id
            )
            if (
                response.status not in self.RETRYABLE
                or attempt == self.retries
            ):
                raise error
            if request_id is None and self.last_request_id:
                # Keep the id the server minted for attempt one.
                headers["X-Request-Id"] = self.last_request_id
            hint_ms = 0
            if isinstance(parsed, dict):
                hint_ms = parsed.get("error", {}).get("retry_after_ms", 0)
            time.sleep(
                max(hint_ms / 1000.0, self.backoff * (2**attempt))
            )
        raise AssertionError("unreachable")  # pragma: no cover

    # -- endpoints -------------------------------------------------------

    def healthz(self) -> dict:
        return self.request("GET", "/healthz")

    def metrics(self) -> dict:
        return self.request("GET", "/metrics")

    def metrics_text(self, *, request_id: str | None = None) -> str:
        """``/metrics`` in Prometheus text-exposition form."""
        headers = {"Accept": "text/plain"}
        if request_id is not None:
            headers["X-Request-Id"] = request_id
        response, data = self._exchange("GET", "/metrics", None, headers)
        if response.status >= 400:
            try:
                parsed = json.loads(data) if data else {}
            except ValueError:
                parsed = {}
            raise ServiceError(
                response.status, parsed, request_id=self.last_request_id
            )
        return data.decode("utf-8")

    def compile(
        self,
        source: str,
        *,
        key: str | None = None,
        plan: str = "smart",
        verify: bool = False,
        request_id: str | None = None,
    ) -> dict:
        payload: dict = {"source": source, "plan": plan, "verify": verify}
        if key is not None:
            payload["key"] = key
        return self.request(
            "POST", "/compile", payload, request_id=request_id
        )

    def profile(
        self,
        source: str,
        *,
        runs: int | list[dict] = 1,
        plan: str = "smart",
        mode: str = "counters",
        verify: bool = False,
        loop_variance: str = "zero",
        max_steps: int | None = None,
        backend: str = "auto",
        ingest: str | None = None,
        request_id: str | None = None,
    ) -> dict:
        payload: dict = {
            "source": source,
            "runs": runs,
            "plan": plan,
            "mode": mode,
            "verify": verify,
            "loop_variance": loop_variance,
            "backend": backend,
        }
        if max_steps is not None:
            payload["max_steps"] = max_steps
        if ingest is not None:
            payload["ingest"] = ingest
        return self.request(
            "POST", "/profile", payload, request_id=request_id
        )

    def ingest(
        self,
        key: str,
        profile: ProgramProfile | dict,
        *,
        source: str | None = None,
        request_id: str | None = None,
    ) -> dict:
        raw = (
            profile.to_dict()
            if isinstance(profile, ProgramProfile)
            else profile
        )
        payload: dict = {"profile": raw}
        if source is not None:
            payload["source"] = source
        return self.request(
            "POST",
            f"/profiles/{quote(key, safe='')}/ingest",
            payload,
            request_id=request_id,
        )

    def ingest_paths(
        self,
        key: str,
        paths: dict,
        *,
        partials: list | None = None,
        runs: int = 1,
        source: str | None = None,
        request_id: str | None = None,
    ) -> dict:
        """POST a Ball–Larus path-count delta.

        ``paths`` maps procedure names to ``{path_id: count}`` tables
        (ids may be ints or their string forms — JSON object keys are
        strings either way); ``partials`` lists
        ``[procedure, node, register]`` prefixes of frames a STOP
        unwound mid-call.  The server validates every id against the
        program's path plan and answers 422 on the first invalid entry.
        """
        payload: dict = {"paths": paths, "runs": runs}
        if partials is not None:
            payload["partials"] = partials
        if source is not None:
            payload["source"] = source
        return self.request(
            "POST",
            f"/profiles/{quote(key, safe='')}/ingest",
            payload,
            request_id=request_id,
        )

    def hot_paths(
        self,
        key: str,
        *,
        k: int = 10,
        request_id: str | None = None,
    ) -> dict:
        """Top-``k`` hot paths of the key's accumulated path spectrum."""
        return self.request(
            "GET",
            f"/profiles/{quote(key, safe='')}/paths?{urlencode({'k': k})}",
            request_id=request_id,
        )

    def query(
        self,
        key: str,
        *,
        loop_variance: str = "zero",
        model: str = "scalar",
        raw: bool = False,
        request_id: str | None = None,
    ) -> dict:
        params = {"loop_variance": loop_variance, "model": model}
        if raw:
            params["raw"] = "1"
        return self.request(
            "GET",
            f"/profiles/{quote(key, safe='')}?{urlencode(params)}",
            request_id=request_id,
        )

    def profiles(
        self,
        *,
        analyze: bool = False,
        raw: bool = False,
        loop_variance: str = "zero",
        model: str = "scalar",
        request_id: str | None = None,
    ) -> dict:
        """Every accumulated profile (``GET /profiles``).

        Against a sharded deployment the front door fans this out to
        all workers and merges the slices, so the answer covers the
        whole key space either way.
        """
        params: dict = {}
        if analyze:
            params["analyze"] = "1"
            params["loop_variance"] = loop_variance
            params["model"] = model
        if raw:
            params["raw"] = "1"
        path = "/profiles"
        if params:
            path += "?" + urlencode(params)
        return self.request("GET", path, request_id=request_id)

    def calibration(self, *, request_id: str | None = None) -> dict:
        """The service's loaded wall-clock calibration artifact."""
        return self.request("GET", "/calibration", request_id=request_id)

    def chunks(
        self,
        key: str,
        *,
        processors: int = 8,
        overhead: float = 10.0,
        model: str = "scalar",
        loop_variance: str = "profiled",
        request_id: str | None = None,
    ) -> dict:
        """Kruskal-Weiss chunk-size advice from the key's profile."""
        params = {
            "processors": processors,
            "overhead": overhead,
            "model": model,
            "loop_variance": loop_variance,
        }
        return self.request(
            "GET",
            f"/profiles/{quote(key, safe='')}/chunks?{urlencode(params)}",
            request_id=request_id,
        )
