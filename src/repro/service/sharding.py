"""Key routing for the multi-worker profiling service.

The sharded service is a front door plus ``N`` worker processes, each
owning a disjoint slice of the profile database and the artifact
cache.  Placement is decided here and nowhere else:

* :class:`HashRing` — a consistent-hash ring with virtual nodes.
  Every shard contributes ``replicas`` points; a key maps to the
  first point clockwise of its own hash.  Consistency is the point:
  when the worker count changes between boots, only ~``1/N`` of the
  key space moves, so a persistent shard database mostly keeps its
  keys (stragglers are absorbed on the next single-worker boot, see
  :class:`~repro.profiling.database.ProfileDatabase`).
* :func:`routing_key` — which string routes a request.  Keyed
  endpoints (``/profiles/{key}/...``) route by the profile key so
  every delta for a key accumulates on exactly one shard (shard-local
  §3 ``TOTAL_FREQ`` sums followed by a front-door merge are then
  *exact* — Definition 3 normalizes only at query time).  Keyless
  compile/profile requests route by a source digest, so a program's
  compiled artifacts stay hot in one worker's cache.
* :func:`shard_db_path` / :func:`shard_cache_dir` — where shard ``i``
  keeps its slice of the configured database path / cache directory
  (``profiles.json`` -> ``profiles.shard3.json``).

Hashing is BLAKE2b, seeded only by shard index and key bytes — the
ring is identical across processes and boots by construction.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from pathlib import Path

#: Virtual nodes per shard.  64 points per shard keeps the expected
#: imbalance of the key space under ~10% for small shard counts.
DEFAULT_REPLICAS = 64


def _point(data: bytes) -> int:
    """A stable 64-bit ring coordinate for ``data``."""
    return int.from_bytes(
        hashlib.blake2b(data, digest_size=8).digest(), "big"
    )


class HashRing:
    """Consistent hashing of profile keys onto ``n_shards`` shards."""

    def __init__(self, n_shards: int, *, replicas: int = DEFAULT_REPLICAS):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.n_shards = n_shards
        self.replicas = replicas
        points: list[tuple[int, int]] = []
        for shard in range(n_shards):
            for replica in range(replicas):
                points.append(
                    (_point(b"shard:%d:vnode:%d" % (shard, replica)), shard)
                )
        points.sort()
        self._points = [point for point, _ in points]
        self._shards = [shard for _, shard in points]

    def shard_for(self, key: str) -> int:
        """The shard owning ``key`` (first ring point clockwise)."""
        if self.n_shards == 1:
            return 0
        where = bisect_right(self._points, _point(key.encode()))
        if where == len(self._points):
            where = 0  # wrap past the top of the ring
        return self._shards[where]


def source_routing_key(source: str) -> str:
    """The routing key of a keyless compile/profile request.

    A digest of the source text: identical programs always land on
    the same worker, so its artifact-cache slice serves all repeats.
    """
    return "src:" + hashlib.blake2b(
        source.encode(), digest_size=16
    ).hexdigest()


def routing_key(route: str, key: str | None, payload: dict) -> str | None:
    """The string that places one request on the ring.

    ``None`` means the request is not shardable (the front door
    answers it itself or fans it out to every worker).
    """
    if key is not None:
        # /profiles/{key}, /profiles/{key}/ingest|paths|chunks: sticky
        # to the owner so the key's whole accumulation lives together.
        return key
    if route == "compile":
        target = payload.get("key")
        if isinstance(target, str) and target:
            return target
        source = payload.get("source")
        return source_routing_key(source) if isinstance(source, str) else ""
    if route == "profile":
        ingest = payload.get("ingest")
        if isinstance(ingest, str) and ingest:
            return ingest
        source = payload.get("source")
        return source_routing_key(source) if isinstance(source, str) else ""
    if route == "calibration":
        # Every worker loads the same artifact; any shard can answer.
        return "calibration"
    return None


def shard_db_path(path: str | Path | None, shard: int) -> str | None:
    """Shard ``i``'s slice of the configured database path.

    ``profiles.json`` -> ``profiles.shard3.json`` (the naming
    :meth:`ProfileDatabase.shard_path` owns, so a later single-worker
    boot with ``absorb_shards=True`` finds the slices).  ``None``
    stays ``None`` — in-memory databases have nothing to split.
    """
    if path is None:
        return None
    from repro.profiling.database import ProfileDatabase

    return str(ProfileDatabase.shard_path(path, shard))


def shard_cache_dir(path: str | None, shard: int) -> str | None:
    """Shard ``i``'s slice of the artifact-cache directory."""
    if path is None:
        return None
    return str(Path(path) / f"shard{shard}")
