"""The asyncio compile/profile/ingest server.

One long-lived :class:`ProfilingService` process owns three shared
resources:

* an :class:`~repro.batch.cache.ArtifactCache` — the LRU hot tier
  keeps the programs the service is currently being asked about
  resident; the optional disk tier survives restarts and is shared
  with ``repro batch`` invocations;
* a :class:`~repro.profiling.database.ProfileDatabase` — the paper's
  accumulate-then-normalize store.  Clients POST raw ``TOTAL_FREQ``
  deltas; the service sums them (Definition 3 needs only ratios) and
  answers queries with freshly normalized frequencies, TIME and
  Section-5 variance;
* a :class:`~repro.service.batcher.MicroBatcher` — concurrent
  compile/profile requests ride the batch engine together instead of
  one engine invocation each.

Endpoints (JSON over HTTP/1.1, see ``docs/service.md``)::

    GET  /healthz                  liveness + drain state
    GET  /metrics                  counters and gauges
    POST /compile                  compile (micro-batched, cached)
    POST /profile                  compile + profile (micro-batched)
    POST /profiles/{key}/ingest    accumulate a raw TOTAL_FREQ delta,
                                   or a Ball–Larus path-count delta
    GET  /profiles/{key}           Definition-3 freqs + Section-5 VAR
                                   (+ predicted-vs-ingested drift)
    GET  /profiles/{key}/paths     top-K hot paths of the key's spectrum
    GET  /profiles/{key}/chunks    Kruskal-Weiss chunk-size advice
    GET  /calibration              the loaded wall-clock calibration

Degradation under load is explicit, never emergent: a full admission
queue answers 429, a request that outlives its budget answers 504
(the work is abandoned at the next engine item boundary), and
SIGTERM/SIGINT triggers a drain — stop accepting, flush pending
micro-batches, persist the profile database, exit.  An ingest that
was answered 200 is therefore never lost by a graceful shutdown.
"""

from __future__ import annotations

import asyncio
import os
import platform
import signal
import threading
import time
from dataclasses import dataclass

import repro
from repro.batch import run_batch
from repro.pipeline import BACKENDS
from repro.batch.aggregate import canonical_json, summarize_item
from repro.batch.cache import ArtifactCache
from repro.batch.engine import BatchItem
from repro.costs.model import OPTIMIZING_MACHINE, SCALAR_MACHINE
from repro.obs import (
    current_context,
    metrics,
    parse_traceparent,
    render_prometheus,
    span,
)
from repro.obs.prometheus import CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE
from repro.paths import reconstruct_path_procedure
from repro.profiling.database import ProfileDatabase, ProgramProfile
from repro.service.batcher import BatchTask, Draining, MicroBatcher, QueueFull
from repro.service.protocol import (
    MAX_BODY_BYTES,
    ProtocolError,
    RawBody,
    Request,
    error_payload,
    read_request,
    response_bytes,
)

_MODELS = {"scalar": SCALAR_MACHINE, "optimizing": OPTIMIZING_MACHINE}
_PLANS = ("smart", "naive")
_MODES = ("counters", "paths")
_LOOP_VARIANCE = ("zero", "profiled", "poisson", "geometric", "uniform")
#: Hard ceiling on ``?k=`` for the hot-path query.
_MAX_HOT_PATHS = 1000


def _new_request_id() -> str:
    return os.urandom(8).hex()


class PathDeltaError(Exception):
    """A path-count delta failed validation against the path plan."""


@dataclass
class ServiceConfig:
    """Every server knob, with serving-friendly defaults."""

    host: str = "127.0.0.1"
    port: int = 0  # 0: bind an ephemeral port (exposed as .port)
    #: Profile database path (``None``: in-memory, lost on exit).
    db: str | None = None
    #: Artifact cache directory (``None``: memory tier only).
    cache: str | None = None
    #: Flush a micro-batch at this many pending requests ...
    max_batch: int = 16
    #: ... or after this many seconds, whichever comes first.
    linger: float = 0.002
    #: Admission-queue bound; beyond it requests are answered 429.
    queue_limit: int = 128
    #: Per-request budget in seconds; beyond it the answer is 504.
    request_timeout: float = 30.0
    #: Hard ceiling on client-supplied max_steps and runs-per-request.
    max_steps_cap: int = 10_000_000
    max_runs_per_request: int = 64
    #: Persist the database every N ingests (0: only on drain).
    save_every: int = 0
    #: Give up on drain (abandoning unstarted batch items) after this.
    drain_timeout: float = 30.0
    max_body: int = MAX_BODY_BYTES
    #: Path to a :class:`repro.validate.CalibrationProfile` artifact.
    #: When set, ``GET /calibration`` serves it and queries accept
    #: ``model=calibrated`` (TIME in ns, VAR in ns²).
    calibration: str | None = None
    #: Which shard of a multi-worker deployment this process is
    #: (``None``: standalone).  A standalone service with a ``db``
    #: absorbs leftover ``db.shardN.json`` slices at boot; a shard
    #: never does, and labels its health/metrics with its index.
    shard_index: int | None = None
    shard_count: int = 1


class ProfilingService:
    """The server object: ``await start()``, then ``serve_forever()``."""

    def __init__(self, config: ServiceConfig | None = None):
        self.config = config or ServiceConfig()
        self.database = ProfileDatabase(
            self.config.db,
            absorb_shards=self.config.shard_index is None,
        )
        self.cache = ArtifactCache(self.config.cache)
        self.batcher = MicroBatcher(
            self._flush,
            max_batch=self.config.max_batch,
            linger=self.config.linger,
            queue_limit=self.config.queue_limit,
        )
        #: source text per profile-database key, for query-time analysis.
        self.sources: dict[str, str] = {}
        #: accumulated Ball–Larus path spectra per key:
        #: key -> procedure -> path id -> count.  Complete paths only;
        #: STOP partials fold into the reconstructed profile but are
        #: prefixes, not members of the numbered path space.
        self.path_spectra: dict[str, dict[str, dict[int, float]]] = {}
        #: optional wall-clock calibration artifact (``/calibration``).
        self.calibration = None
        if self.config.calibration:
            from repro.validate.calibrate import CalibrationProfile

            self.calibration = CalibrationProfile.load(
                self.config.calibration
            )
        #: last served analysis per key, for predicted-vs-ingested
        #: drift on repeat queries: key -> {runs, time, var, params}.
        self._analysis_snapshots: dict[str, dict] = {}
        self.port: int | None = None
        self.draining = False
        self._server: asyncio.base_events.Server | None = None
        self._stopped = asyncio.Event()
        self._started = time.monotonic()
        self._in_flight = 0
        self._abort_flush = threading.Event()
        self._cache_lock = threading.Lock()
        self._requests: dict[str, int] = {}
        self._responses: dict[int, int] = {}
        self._timeouts = 0
        self._ingests = 0
        self._ingested_runs = 0.0
        self._path_ingests = 0
        self._db_saves = 0
        self._protocol_errors = 0
        #: Cache stats as of the last flush boundary.  The flush thread
        #: replaces the whole dict under ``_cache_lock``; ``/metrics``
        #: reads the reference without blocking behind an in-flight
        #: flush, so the JSON snapshot is never torn mid-batch.
        self._cache_snapshot: dict = self.cache.stats.as_dict()
        self._http_seconds = metrics.histogram(
            "repro_http_request_seconds",
            "Service request latency by route.",
            labels=("route",),
        )
        self._http_requests = metrics.counter(
            "repro_http_requests_total",
            "Service requests by route and status.",
            labels=("route", "status"),
        )
        self._path_ingest_metric = metrics.counter(
            "repro_path_ingests_total",
            "Path-count ingest deltas by outcome.",
            labels=("outcome",),
        )

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Block until a drain (signal or :meth:`shutdown`) finishes."""
        assert self._server is not None, "call start() first"
        await self._stopped.wait()

    def install_signal_handlers(
        self, loop: asyncio.AbstractEventLoop
    ) -> None:
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, lambda: loop.create_task(self.shutdown())
                )
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass

    async def shutdown(self) -> None:
        """Graceful drain: finish accepted work, persist, stop."""
        if self.draining:
            return
        self.draining = True
        if self._server is not None:
            self._server.close()
        try:
            await asyncio.wait_for(
                self.batcher.close(), timeout=self.config.drain_timeout
            )
        except (asyncio.TimeoutError, TimeoutError):
            # Too slow: abandon unstarted items at the next engine
            # boundary (their waiters get stage="cancelled" -> 503).
            self._abort_flush.set()
            await self.batcher.close()
        deadline = time.monotonic() + self.config.drain_timeout
        while self._in_flight > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        await asyncio.get_running_loop().run_in_executor(
            None, self._save_database
        )
        if self._server is not None:
            await self._server.wait_closed()
        self._stopped.set()

    def _save_database(self) -> None:
        self.database.save()
        self._db_saves += 1

    # -- connection handling ---------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    request = await read_request(
                        reader, max_body=self.config.max_body
                    )
                except ProtocolError as exc:
                    self._protocol_errors += 1
                    self._responses[exc.status] = (
                        self._responses.get(exc.status, 0) + 1
                    )
                    writer.write(
                        response_bytes(
                            exc.status,
                            error_payload(exc.status, str(exc)),
                            keep_alive=False,
                            headers={"X-Request-Id": _new_request_id()},
                        )
                    )
                    await writer.drain()
                    return
                if request is None:
                    return
                # Echo the client's correlation id, or mint one: every
                # response names the request it answers.
                request_id = (
                    request.headers.get("x-request-id") or _new_request_id()
                )
                status, payload = await self._dispatch(request)
                self._responses[status] = self._responses.get(status, 0) + 1
                keep_alive = request.keep_alive and not self.draining
                writer.write(
                    response_bytes(
                        status,
                        payload,
                        keep_alive=keep_alive,
                        headers={"X-Request-Id": request_id},
                    )
                )
                await writer.drain()
                if not keep_alive:
                    return
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, request: Request) -> tuple[int, dict]:
        """Route, handle and observe one request.

        The handler runs inside an ``http.<route>`` span whose parent
        is the client's ``traceparent`` header (if any), so client
        traces continue through the batcher into the engine.
        """
        route, _key = self._route(request.path)
        route_label = route or "unknown"
        started = time.perf_counter()
        with span(
            f"http.{route_label}",
            attrs={"method": request.method, "path": request.path},
            parent=parse_traceparent(request.headers.get("traceparent")),
        ) as request_span:
            status, payload = await self._dispatch_inner(request)
            request_span.set_attr(status=status)
        elapsed = time.perf_counter() - started
        self._http_seconds.observe(elapsed, route=route_label)
        self._http_requests.inc(route=route_label, status=str(status))
        return status, payload

    async def _dispatch_inner(self, request: Request) -> tuple[int, dict]:
        route, key = self._route(request.path)
        self._requests[route or "unknown"] = (
            self._requests.get(route or "unknown", 0) + 1
        )
        if route is None:
            return 404, error_payload(404, f"no such path: {request.path}")
        handler, method = {
            "healthz": (self._handle_healthz, "GET"),
            "metrics": (self._handle_metrics, "GET"),
            "compile": (self._handle_compile, "POST"),
            "profile": (self._handle_profile, "POST"),
            "ingest": (self._handle_ingest, "POST"),
            "query": (self._handle_query, "GET"),
            "hot_paths": (self._handle_hot_paths, "GET"),
            "calibration": (self._handle_calibration, "GET"),
            "chunks": (self._handle_chunks, "GET"),
            "profiles_index": (self._handle_profiles_index, "GET"),
        }[route]
        if request.method != method:
            return 405, error_payload(
                405, f"{request.path} only accepts {method}"
            )
        if self.draining and route not in ("healthz", "metrics"):
            return 503, error_payload(503, "service is draining")
        self._in_flight += 1
        try:
            try:
                if key is None:
                    return await handler(request)
                return await handler(request, key)
            except ProtocolError as exc:
                return exc.status, error_payload(exc.status, str(exc))
            except QueueFull as exc:
                return 429, error_payload(
                    429, str(exc), retry_after_ms=int(self.config.linger * 2e3)
                )
            except Draining:
                return 503, error_payload(503, "service is draining")
            except (asyncio.TimeoutError, TimeoutError):
                self._timeouts += 1
                metrics.counter(
                    "repro_shed_total",
                    "Requests shed at admission, by reason.",
                    labels=("reason",),
                ).inc(reason="timeout")
                return 504, error_payload(
                    504,
                    f"request exceeded its "
                    f"{self.config.request_timeout:g}s budget",
                )
            except Exception as exc:  # pragma: no cover - defensive
                return 500, error_payload(
                    500, f"{type(exc).__name__}: {exc}"
                )
        finally:
            self._in_flight -= 1

    @staticmethod
    def _route(path: str) -> tuple[str | None, str | None]:
        if path == "/healthz":
            return "healthz", None
        if path == "/metrics":
            return "metrics", None
        if path == "/compile":
            return "compile", None
        if path == "/profile":
            return "profile", None
        if path == "/calibration":
            return "calibration", None
        if path == "/profiles":
            return "profiles_index", None
        parts = [part for part in path.split("/") if part]
        if len(parts) == 2 and parts[0] == "profiles":
            return "query", parts[1]
        if (
            len(parts) == 3
            and parts[0] == "profiles"
            and parts[2] == "ingest"
        ):
            return "ingest", parts[1]
        if (
            len(parts) == 3
            and parts[0] == "profiles"
            and parts[2] == "paths"
        ):
            return "hot_paths", parts[1]
        if (
            len(parts) == 3
            and parts[0] == "profiles"
            and parts[2] == "chunks"
        ):
            return "chunks", parts[1]
        return None, None

    # -- trivial endpoints -----------------------------------------------

    async def _handle_healthz(self, request: Request) -> tuple[int, dict]:
        body = {
            "status": "draining" if self.draining else "ok",
            "uptime_s": round(time.monotonic() - self._started, 3),
            "queue_depth": self.batcher.queue_depth,
        }
        if self.config.shard_index is not None:
            body["shard"] = self.config.shard_index
            body["shard_count"] = self.config.shard_count
        return 200, body

    async def _handle_metrics(self, request: Request) -> tuple[int, dict]:
        if "text/plain" in request.headers.get("accept", ""):
            self._sync_gauges()
            text = render_prometheus()
            return 200, RawBody(PROMETHEUS_CONTENT_TYPE, text.encode())
        return 200, self._metrics_json()

    def _metrics_json(self) -> dict:
        """One atomic JSON snapshot of every counter.

        Built synchronously on the event loop with no ``await`` in
        between, so loop-side counters are mutually consistent; cache
        counters come from ``_cache_snapshot``, the whole-dict copy
        the flush thread publishes at each flush boundary — never a
        half-updated view from the middle of a batch flush.
        """
        uptime = round(time.monotonic() - self._started, 3)
        shard = (
            {
                "index": self.config.shard_index,
                "count": self.config.shard_count,
            }
            if self.config.shard_index is not None
            else None
        )
        return {
            "uptime_s": uptime,
            "uptime_seconds": uptime,
            "build": {
                "version": repro.__version__,
                "python": platform.python_version(),
            },
            "shard": shard,
            "draining": self.draining,
            "queue_depth": self.batcher.queue_depth,
            "in_flight": self._in_flight,
            "requests_total": dict(sorted(self._requests.items())),
            "responses_by_status": {
                str(status): count
                for status, count in sorted(self._responses.items())
            },
            "protocol_errors": self._protocol_errors,
            "timeouts": self._timeouts,
            "batcher": self.batcher.stats.as_dict(),
            "cache": self._cache_snapshot,
            "database": {
                "keys": len(self.database.keys()),
                "runs": self.database.total_runs(),
                "ingests": self._ingests,
                "ingested_runs": self._ingested_runs,
                "saves": self._db_saves,
                "path_keys": len(self.path_spectra),
                "path_ingests": self._path_ingests,
            },
        }

    def _sync_gauges(self) -> None:
        """Refresh point-in-time gauges before a Prometheus render."""
        metrics.gauge(
            "repro_uptime_seconds", "Service uptime in seconds."
        ).set(time.monotonic() - self._started)
        metrics.gauge(
            "repro_build_info",
            "Build metadata (always 1; the labels carry the info).",
            labels=("version", "python"),
        ).set(1, version=repro.__version__,
              python=platform.python_version())
        metrics.gauge(
            "repro_queue_depth", "Admission-queue backlog (requests)."
        ).set(self.batcher.queue_depth)
        metrics.gauge(
            "repro_in_flight", "Requests currently being handled."
        ).set(self._in_flight)
        metrics.gauge(
            "repro_draining", "1 while the service is draining, else 0."
        ).set(int(self.draining))
        metrics.gauge(
            "repro_db_keys", "Profile-database keys."
        ).set(len(self.database.keys()))
        metrics.gauge(
            "repro_db_runs", "Accumulated runs across all database keys."
        ).set(self.database.total_runs())
        if self.config.shard_index is not None:
            metrics.gauge(
                "repro_shard_info",
                "Shard identity of this worker (always 1; the labels "
                "carry the info).",
                labels=("shard", "count"),
            ).set(
                1,
                shard=str(self.config.shard_index),
                count=str(self.config.shard_count),
            )

    # -- batched endpoints -----------------------------------------------

    def _require_source(self, payload: dict) -> str:
        source = payload.get("source")
        if not isinstance(source, str) or not source.strip():
            raise ProtocolError('"source" must be a non-empty string')
        return source

    def _normalize_options(self, payload: dict) -> dict:
        plan = payload.get("plan", "smart")
        if plan not in _PLANS:
            raise ProtocolError(f'"plan" must be one of {list(_PLANS)}')
        mode = payload.get("mode", "counters")
        if mode not in _MODES:
            raise ProtocolError(f'"mode" must be one of {list(_MODES)}')
        if mode == "paths" and plan != "smart":
            # Path reconstruction rebuilds the smart plan's
            # Definition-3 targets; a naive plan has nothing to mirror.
            raise ProtocolError('"mode": "paths" requires "plan": "smart"')
        verify = bool(payload.get("verify", False))
        loop_variance = payload.get("loop_variance", "zero")
        if loop_variance not in _LOOP_VARIANCE:
            raise ProtocolError(
                f'"loop_variance" must be one of {list(_LOOP_VARIANCE)}'
            )
        max_steps = payload.get("max_steps", self.config.max_steps_cap)
        if not isinstance(max_steps, int) or max_steps < 1:
            raise ProtocolError('"max_steps" must be a positive integer')
        backend = payload.get("backend", "auto")
        if backend not in BACKENDS:
            raise ProtocolError(f'"backend" must be one of {list(BACKENDS)}')
        return {
            "plan": plan,
            "mode": mode,
            "verify": verify,
            "loop_variance": loop_variance,
            "max_steps": min(max_steps, self.config.max_steps_cap),
            "backend": backend,
        }

    def _normalize_runs(self, payload: dict) -> list[dict]:
        runs = payload.get("runs", 1)
        if isinstance(runs, int):
            if runs < 1:
                raise ProtocolError('"runs" must be >= 1')
            runs = [{"seed": seed} for seed in range(runs)]
        if not isinstance(runs, list) or not runs:
            raise ProtocolError(
                '"runs" must be a count or a non-empty list of run specs'
            )
        if len(runs) > self.config.max_runs_per_request:
            raise ProtocolError(
                f'"runs" is capped at {self.config.max_runs_per_request} '
                "per request"
            )
        specs = []
        for spec in runs:
            if not isinstance(spec, dict) or not set(spec) <= {
                "seed",
                "inputs",
            }:
                raise ProtocolError(
                    'each run spec is {"seed": int, "inputs": [numbers]}'
                )
            out = {"seed": int(spec.get("seed", 0))}
            if "inputs" in spec:
                out["inputs"] = [float(x) for x in spec["inputs"]]
            specs.append(out)
        return specs

    async def _submit_and_wait(self, task: BatchTask) -> dict:
        future = self.batcher.submit(task)
        try:
            return await asyncio.wait_for(
                future, timeout=self.config.request_timeout
            )
        except (asyncio.TimeoutError, TimeoutError):
            # The flush may still resolve it later; detach quietly.
            future.add_done_callback(
                lambda f: f.exception() if not f.cancelled() else None
            )
            raise

    async def _handle_compile(self, request: Request) -> tuple[int, dict]:
        payload = request.json()
        source = self._require_source(payload)
        options = self._normalize_options(payload)
        task = BatchTask(
            kind="compile",
            signature=canonical_json(
                {
                    "kind": "compile",
                    "source": source,
                    "plan": options["plan"],
                    "verify": options["verify"],
                }
            ),
            payload={"source": source, "trace": current_context(), **options},
        )
        outcome = await self._submit_and_wait(task)
        key = payload.get("key")
        if outcome["status"] == 200 and isinstance(key, str) and key:
            self.sources[key] = source
            outcome["body"]["key"] = key
        return outcome["status"], outcome["body"]

    async def _handle_profile(self, request: Request) -> tuple[int, dict]:
        payload = request.json()
        source = self._require_source(payload)
        options = self._normalize_options(payload)
        runs = self._normalize_runs(payload)
        ingest_key = payload.get("ingest")
        if ingest_key is not None and (
            not isinstance(ingest_key, str) or not ingest_key
        ):
            raise ProtocolError('"ingest" must be a non-empty key string')
        task = BatchTask(
            kind="profile",
            signature=canonical_json(
                {
                    "kind": "profile",
                    "source": source,
                    "runs": runs,
                    **options,
                }
            ),
            payload={
                "source": source,
                "runs": runs,
                "trace": current_context(),
                **options,
            },
        )
        outcome = await self._submit_and_wait(task)
        status, body = outcome["status"], outcome["body"]
        if status == 200 and ingest_key:
            profile = ProgramProfile.from_dict(body["profile"])
            self._accumulate(ingest_key, profile, source)
            body["ingested"] = {
                "key": ingest_key,
                "runs": self.database.lookup(ingest_key).runs,
            }
        return status, body

    # -- the flush function (runs in a worker thread) --------------------

    def _flush(self, tasks: list[BatchTask]) -> dict[str, dict]:
        """Execute one micro-batch of unique tasks against the engine."""
        with span("service.flush", attrs={"tasks": len(tasks)}):
            results = self._flush_inner(tasks)
        return results

    def _flush_inner(self, tasks: list[BatchTask]) -> dict[str, dict]:
        results: dict[str, dict] = {}
        compiles = [t for t in tasks if t.kind == "compile"]
        profiles = [t for t in tasks if t.kind == "profile"]
        with self._cache_lock:
            for task in compiles:
                # Continue the requesting client's trace: the task
                # carries the http.<route> span context through the
                # batcher, and the pipeline's compile spans nest here.
                with span(
                    "service.compile",
                    attrs={"signature": task.signature[:16]},
                    parent=task.payload.get("trace"),
                ):
                    results[task.signature] = self._flush_compile(task)
            # One engine invocation per distinct option set: the
            # engine's knobs (plan, verify, ...) are batch-wide.
            groups: dict[tuple, list[BatchTask]] = {}
            for task in profiles:
                group_key = (
                    task.payload["plan"],
                    task.payload.get("mode", "counters"),
                    task.payload["verify"],
                    task.payload["loop_variance"],
                    task.payload["max_steps"],
                    task.payload.get("backend", "auto"),
                )
                groups.setdefault(group_key, []).append(task)
            for (
                plan,
                mode,
                verify,
                loop_variance,
                max_steps,
                backend,
            ), group in sorted(
                groups.items(), key=lambda pair: repr(pair[0])
            ):
                items = [
                    BatchItem(
                        id=task.signature,
                        source=task.payload["source"],
                        runs=tuple(dict(s) for s in task.payload["runs"]),
                    )
                    for task in group
                ]
                # A single-request group keeps exact trace ancestry;
                # a coalesced group parents to the flush span and
                # records the member signatures instead.
                parent = (
                    group[0].payload.get("trace")
                    if len(group) == 1
                    else None
                )
                with span(
                    "service.profile",
                    attrs={
                        "items": len(items),
                        "mode": mode,
                        "signatures": ",".join(
                            task.signature[:16] for task in group[:8]
                        ),
                    },
                    parent=parent,
                ):
                    report = run_batch(
                        items,
                        plan=plan,
                        mode="serial",
                        cache=self.cache,
                        verify=verify,
                        loop_variance=loop_variance,
                        max_steps=max_steps,
                        backend=backend,
                        profile_mode=mode,
                        should_stop=self._abort_flush.is_set,
                    )
                for task, result in zip(group, report.results):
                    if result.ok:
                        results[task.signature] = {
                            "status": 200,
                            "body": {
                                "ok": True,
                                "mode": mode,
                                "runs": result.runs,
                                "counters": result.counters,
                                "counter_updates": result.counter_updates,
                                "cache_tier": result.cache_tier,
                                "summary": result.summary,
                                "profile": result.profile.to_dict(),
                            },
                        }
                    else:
                        status = (
                            503 if result.error.stage == "cancelled" else 422
                        )
                        results[task.signature] = {
                            "status": status,
                            "body": error_payload(
                                status,
                                result.error.message,
                                stage=result.error.stage,
                                type=result.error.type,
                            ),
                        }
            self._publish_cache_snapshot()
        return results

    def _publish_cache_snapshot(self) -> None:
        """Publish a consistent copy of the cache counters.

        Called with ``_cache_lock`` held; ``/metrics`` reads the
        reference atomically instead of racing the flush thread.
        """
        self._cache_snapshot = self.cache.stats.as_dict()

    def _flush_compile(self, task: BatchTask) -> dict:
        from repro.checker import verify_program

        payload = task.payload
        try:
            program, plan, tier = self.cache.artifacts(
                payload["source"], payload["plan"]
            )
        except Exception as exc:
            return {
                "status": 422,
                "body": error_payload(
                    422, str(exc), stage="compile", type=type(exc).__name__
                ),
            }
        body = {
            "ok": True,
            "procedures": sorted(program.cfgs),
            "main": program.main_name,
            "splits": dict(program.splits),
            "counters": plan.n_counters,
            "cache_tier": tier,
        }
        if payload["verify"]:
            report = verify_program(program, plan)
            if report.errors:
                return {
                    "status": 422,
                    "body": error_payload(
                        422,
                        "; ".join(d.render() for d in report.errors[:5]),
                        stage="verify",
                        type="VerificationError",
                    ),
                }
            body["verified"] = True
        return {"status": 200, "body": body}

    # -- profile accumulation and queries --------------------------------

    def _accumulate(
        self, key: str, profile: ProgramProfile, source: str | None
    ) -> None:
        self.database.record(key, profile)
        self._ingests += 1
        self._ingested_runs += profile.runs
        if source:
            self.sources[key] = source
        if (
            self.config.save_every
            and self._ingests % self.config.save_every == 0
        ):
            self._save_database()

    async def _handle_ingest(
        self, request: Request, key: str
    ) -> tuple[int, dict]:
        payload = request.json()
        if "paths" in payload:
            return await self._handle_path_ingest(key, payload)
        raw = payload.get("profile")
        if not isinstance(raw, dict):
            raise ProtocolError(
                '"profile" must be a profile JSON object '
                '(or POST a "paths" delta instead)'
            )
        try:
            profile = ProgramProfile.from_dict(raw)
        except Exception as exc:
            return 422, error_payload(
                422,
                f"not a valid TOTAL_FREQ delta: {type(exc).__name__}: {exc}",
            )
        source = payload.get("source")
        if source is not None and not isinstance(source, str):
            raise ProtocolError('"source" must be a string when given')
        self._accumulate(key, profile, source)
        return 200, {
            "ok": True,
            "key": key,
            "accumulated_runs": profile.runs,
            "runs": self.database.lookup(key).runs,
        }

    # -- path spectra: ingest and hot-path queries -----------------------

    async def _handle_path_ingest(
        self, key: str, payload: dict
    ) -> tuple[int, dict]:
        """Accumulate a Ball–Larus path-count delta.

        The delta is validated against the key's path plan *before*
        anything is accumulated — an unknown procedure, an id outside
        ``[0, NumPaths)``, a negative count or a non-decoding partial
        answers 422 and leaves both the spectrum and the profile
        database untouched.  A valid delta lands twice: the raw counts
        join the key's path spectrum (the hot-path surface) and their
        Definition-3 reconstruction joins the profile database, so
        ``GET /profiles/{key}`` answers from path deltas exactly as it
        does from counter deltas.
        """
        raw_paths = payload.get("paths")
        if not isinstance(raw_paths, dict):
            raise ProtocolError(
                '"paths" must map procedures to {path_id: count} objects'
            )
        raw_partials = payload.get("partials", [])
        if not isinstance(raw_partials, list):
            raise ProtocolError(
                '"partials" must be a list of [procedure, node, register]'
            )
        runs = payload.get("runs", 1)
        if not isinstance(runs, int) or runs < 1:
            raise ProtocolError('"runs" must be a positive integer')
        source = payload.get("source")
        if source is not None and not isinstance(source, str):
            raise ProtocolError('"source" must be a string when given')
        source = source or self.sources.get(key)
        if source is None:
            self._path_ingest_metric.inc(outcome="invalid")
            return 422, error_payload(
                422,
                "no source registered for this key, so path ids cannot "
                'be validated; include "source" in the delta or register '
                "it via /compile {key: ...}",
            )
        loop = asyncio.get_running_loop()
        with span(
            "profile.paths.ingest",
            attrs={"key": key, "procedures": len(raw_paths)},
        ):
            try:
                counts, profile = await asyncio.wait_for(
                    loop.run_in_executor(
                        None,
                        self._path_ingest_entry,
                        source,
                        raw_paths,
                        raw_partials,
                        runs,
                    ),
                    timeout=self.config.request_timeout,
                )
            except (asyncio.TimeoutError, TimeoutError):
                raise
            except PathDeltaError as exc:
                self._path_ingest_metric.inc(outcome="invalid")
                return 422, error_payload(
                    422, f"not a valid path-count delta: {exc}"
                )
            except Exception as exc:  # compile/plan failure
                self._path_ingest_metric.inc(outcome="invalid")
                return 422, error_payload(
                    422,
                    f"not a valid path-count delta: "
                    f"{type(exc).__name__}: {exc}",
                )
        spectrum = self.path_spectra.setdefault(key, {})
        ingested_ids = 0
        for proc, table in counts.items():
            bucket = spectrum.setdefault(proc, {})
            for path_id, count in table.items():
                bucket[path_id] = bucket.get(path_id, 0.0) + count
                ingested_ids += 1
        self._accumulate(key, profile, source)
        self._path_ingests += 1
        self._path_ingest_metric.inc(outcome="ok")
        return 200, {
            "ok": True,
            "key": key,
            "mode": "paths",
            "accumulated_runs": runs,
            "path_ids": ingested_ids,
            "partials": len(raw_partials),
            "runs": self.database.lookup(key).runs,
        }

    def _path_ingest_entry(
        self, source: str, raw_paths: dict, raw_partials: list, runs: int
    ):
        """Validate a delta and reconstruct its Definition-3 profile.

        Runs on a worker thread: compiles/fetches the path plan through
        the artifact cache, walks every id and partial against it, and
        returns ``(counts, profile)``.  Raises :class:`PathDeltaError`
        on the first invalid entry.
        """
        with self._cache_lock:
            program, plan, _tier = self.cache.artifacts(source, "paths")
            self._publish_cache_snapshot()
        counts: dict[str, dict[int, float]] = {}
        for proc, table in raw_paths.items():
            proc_plan = plan.plans.get(proc)
            if proc_plan is None:
                raise PathDeltaError(f"unknown procedure {proc!r}")
            if not isinstance(table, dict):
                raise PathDeltaError(
                    f'"paths"[{proc!r}] must map path ids to counts'
                )
            bucket: dict[int, float] = {}
            for raw_id, raw_count in table.items():
                try:
                    path_id = int(raw_id)
                except (TypeError, ValueError):
                    raise PathDeltaError(
                        f"{proc}: path id {raw_id!r} is not an integer"
                    ) from None
                if not 0 <= path_id < proc_plan.num_paths:
                    raise PathDeltaError(
                        f"{proc}: path id {path_id} outside "
                        f"[0, {proc_plan.num_paths})"
                    )
                try:
                    count = float(raw_count)
                except (TypeError, ValueError):
                    raise PathDeltaError(
                        f"{proc}: count for path {path_id} is not a number"
                    ) from None
                if count < 0:
                    raise PathDeltaError(
                        f"{proc}: negative count {count:g} for "
                        f"path {path_id}"
                    )
                if count:
                    bucket[path_id] = bucket.get(path_id, 0.0) + count
            counts[proc] = bucket
        partials_by_proc: dict[str, list[tuple[int, int]]] = {}
        for item in raw_partials:
            if not isinstance(item, (list, tuple)) or len(item) != 3:
                raise PathDeltaError(
                    "each partial is [procedure, node, register]"
                )
            proc, node, register = item
            proc_plan = plan.plans.get(proc)
            if proc_plan is None:
                raise PathDeltaError(
                    f"partial names unknown procedure {proc!r}"
                )
            try:
                node = int(node)
                register = int(register)
            except (TypeError, ValueError):
                raise PathDeltaError(
                    "partial node/register must be integers"
                ) from None
            try:
                proc_plan.decode_partial(node, register)
            except Exception as exc:
                raise PathDeltaError(
                    f"{proc}: partial (node {node}, register {register}) "
                    f"does not decode: {exc}"
                ) from None
            partials_by_proc.setdefault(proc, []).append((node, register))
        profile = ProgramProfile(runs=runs)
        for name, proc_plan in plan.plans.items():
            profile.procedures[name] = reconstruct_path_procedure(
                program,
                name,
                proc_plan,
                counts.get(name, {}),
                partials_by_proc.get(name, ()),
            )
        return counts, profile

    async def _handle_hot_paths(
        self, request: Request, key: str
    ) -> tuple[int, dict]:
        """Top-K hot paths of the key's accumulated spectrum, decoded."""
        spectrum = self.path_spectra.get(key)
        if not spectrum:
            return 404, error_payload(
                404, f"no path spectrum accumulated: {key}"
            )
        raw_k = request.query.get("k", "10")
        try:
            k = int(raw_k)
        except ValueError:
            raise ProtocolError('"k" must be an integer') from None
        if not 1 <= k <= _MAX_HOT_PATHS:
            raise ProtocolError(
                f'"k" must be between 1 and {_MAX_HOT_PATHS}'
            )
        flat = [
            (count, proc, path_id)
            for proc, table in spectrum.items()
            for path_id, count in table.items()
        ]
        total = sum(count for count, _, _ in flat)
        flat.sort(key=lambda item: (-item[0], item[1], item[2]))
        top = flat[:k]
        body: dict = {
            "key": key,
            "k": k,
            "distinct_paths": len(flat),
            "total_count": total,
        }
        source = self.sources.get(key)
        if source is not None:
            loop = asyncio.get_running_loop()
            with span("profile.paths.hot", attrs={"key": key, "k": k}):
                decoded = await asyncio.wait_for(
                    loop.run_in_executor(
                        None,
                        self._decode_hot_entry,
                        source,
                        [(proc, pid) for _, proc, pid in top],
                    ),
                    timeout=self.config.request_timeout,
                )
        else:
            decoded = [None] * len(top)
            body["note"] = (
                "no source registered for this key; "
                "ids are reported undecoded"
            )
        body["paths"] = []
        for (count, proc, path_id), shape in zip(top, decoded):
            entry: dict = {
                "proc": proc,
                "path_id": path_id,
                "count": count,
                "fraction": count / total if total else 0.0,
            }
            if shape is not None:
                entry.update(shape)
            body["paths"].append(entry)
        return 200, body

    def _decode_hot_entry(
        self, source: str, ids: list[tuple[str, int]]
    ) -> list[dict | None]:
        """Decode ``(proc, path_id)`` pairs against the key's plan."""
        with self._cache_lock:
            _program, plan, _tier = self.cache.artifacts(source, "paths")
            self._publish_cache_snapshot()
        shapes: list[dict | None] = []
        for proc, path_id in ids:
            proc_plan = plan.plans.get(proc)
            if proc_plan is None or not 0 <= path_id < proc_plan.num_paths:
                # The spectrum predates a re-registered source; report
                # the raw id rather than failing the whole query.
                shapes.append(None)
                continue
            decoded = proc_plan.decode(path_id)
            shapes.append(
                {
                    "start": decoded.start,
                    "nodes": list(decoded.nodes),
                    "edges": [[src, label] for src, label in decoded.edges],
                    "end": decoded.end,
                }
            )
        return shapes

    def _model_names(self) -> list[str]:
        names = sorted(_MODELS)
        if self.calibration is not None:
            names.append("calibrated")
        return names

    def _resolve_model(self, model_name: str):
        """The machine model a query named, or a 400 on bad names.

        ``calibrated`` is accepted only when the service was started
        with a calibration artifact: the returned model prices
        operations in nanoseconds, so TIME/VAR come back in ns/ns².
        """
        if model_name == "calibrated":
            if self.calibration is None:
                raise ProtocolError(
                    '"model": "calibrated" needs the service started '
                    "with --calibration"
                )
            return self.calibration.machine_model()
        if model_name not in _MODELS:
            raise ProtocolError(
                f'"model" must be one of {self._model_names()}'
            )
        return _MODELS[model_name]

    async def _handle_query(
        self, request: Request, key: str
    ) -> tuple[int, dict]:
        profile = self.database.lookup(key)
        if profile is None:
            source = self.sources.get(key)
            if source is None:
                return 404, error_payload(
                    404, f"no accumulated profile: {key}"
                )
            # No runs ingested yet, but the source is registered:
            # serve the profile-free static TIME/VAR envelope instead
            # of a 404, so consumers get a (coarse) answer immediately.
            model = self._resolve_model(request.query.get("model", "scalar"))
            loop = asyncio.get_running_loop()
            static = await asyncio.wait_for(
                loop.run_in_executor(
                    None, self._static_bounds_entry, source, model
                ),
                timeout=self.config.request_timeout,
            )
            return 200, {
                "key": key,
                "runs": 0,
                "analysis": None,
                "static_bounds": static,
                "note": (
                    "no profile ingested for this key; static bounds "
                    "are derived from value-range analysis of the "
                    "registered source alone"
                ),
            }
        loop_variance = request.query.get("loop_variance", "zero")
        if loop_variance not in _LOOP_VARIANCE:
            raise ProtocolError(
                f'"loop_variance" must be one of {list(_LOOP_VARIANCE)}'
            )
        model_name = request.query.get("model", "scalar")
        model = self._resolve_model(model_name)
        body: dict = {"key": key, "runs": profile.runs, "analysis": None}
        if request.query.get("raw", "") in ("1", "true"):
            body["raw"] = profile.to_dict()
        source = self.sources.get(key)
        if source is not None:
            loop = asyncio.get_running_loop()
            body["analysis"] = await asyncio.wait_for(
                loop.run_in_executor(
                    None, self._analyze_entry, source, profile,
                    model, loop_variance,
                ),
                timeout=self.config.request_timeout,
            )
            if model_name == "calibrated":
                body["calibration"] = {
                    "units": "ns",
                    "intercept_ns": self.calibration.intercept_ns,
                    "r_squared": self.calibration.r_squared,
                }
            body["drift"] = self._record_drift(
                key, profile.runs, body["analysis"],
                params=(model_name, loop_variance),
            )
        else:
            body["note"] = (
                "no source registered for this key; POST the source with "
                "an ingest or register it via /compile {key: ...} to get "
                "Definition-3 frequencies and variance"
            )
            body["raw"] = profile.to_dict()
        return 200, body

    async def _handle_profiles_index(
        self, request: Request
    ) -> tuple[int, dict]:
        """Every accumulated profile this process owns, in one body.

        Standalone, that is the whole database; in a sharded
        deployment it is this worker's slice, and the front door fans
        the request out to every shard and merges the answers via
        :meth:`ProfileDatabase.merge`.  ``?raw=1`` includes each key's
        raw ``TOTAL_FREQ`` dump (what the front-door merge consumes);
        ``?analyze=1`` adds the Definition-3 analysis per key —
        normalization happens here, *after* all of the key's deltas
        have been accumulated, which is what makes shard-local sums
        exact.  Unlike single-key queries, listing does not record
        drift snapshots: an index sweep must not reset the
        predicted-vs-ingested baselines operators alert on.
        """
        analyze = request.query.get("analyze", "") in ("1", "true")
        raw = request.query.get("raw", "") in ("1", "true")
        loop_variance = request.query.get("loop_variance", "zero")
        if loop_variance not in _LOOP_VARIANCE:
            raise ProtocolError(
                f'"loop_variance" must be one of {list(_LOOP_VARIANCE)}'
            )
        model = (
            self._resolve_model(request.query.get("model", "scalar"))
            if analyze
            else None
        )
        loop = asyncio.get_running_loop()
        profiles: dict[str, dict] = {}
        for key in self.database.keys():
            profile = self.database.lookup(key)
            entry: dict = {"runs": profile.runs}
            if raw:
                entry["raw"] = profile.to_dict()
            if analyze:
                source = self.sources.get(key)
                entry["analysis"] = (
                    await asyncio.wait_for(
                        loop.run_in_executor(
                            None, self._analyze_entry, source, profile,
                            model, loop_variance,
                        ),
                        timeout=self.config.request_timeout,
                    )
                    if source is not None
                    else None
                )
            profiles[key] = entry
        body: dict = {
            "keys": self.database.keys(),
            "runs": self.database.total_runs(),
            "profiles": profiles,
        }
        if self.config.shard_index is not None:
            body["shard"] = self.config.shard_index
        return 200, body

    def _record_drift(
        self, key: str, runs: float, analysis: dict, *, params: tuple
    ) -> dict:
        """Predicted-vs-ingested drift: how much the key's TIME/VAR
        moved since the previous query as new runs were accumulated.

        Relative change of the analysis answers between consecutive
        queries with the same model/loop-variance parameters (a
        parameter change resets the baseline — the delta would
        measure the parameters, not the ingested data).  Exposed both
        in the response body and as ``repro_validation_*_drift``
        gauges, so Prometheus watches prediction stability per key.
        """
        snapshot = {
            "runs": runs,
            "time": analysis["time"],
            "var": analysis["var"],
            "params": params,
        }
        previous = self._analysis_snapshots.get(key)
        self._analysis_snapshots[key] = snapshot
        drift: dict = {
            "runs": runs,
            "previous_runs": None,
            "time_drift": None,
            "var_drift": None,
        }
        if previous is not None and previous["params"] == params:
            drift["previous_runs"] = previous["runs"]
            if previous["time"]:
                drift["time_drift"] = (
                    snapshot["time"] - previous["time"]
                ) / abs(previous["time"])
            if previous["var"]:
                drift["var_drift"] = (
                    snapshot["var"] - previous["var"]
                ) / abs(previous["var"])
        metrics.gauge(
            "repro_validation_time_drift",
            "Relative TIME change between consecutive queries of a key.",
            labels=("key",),
        ).set(drift["time_drift"] or 0.0, key=key)
        metrics.gauge(
            "repro_validation_var_drift",
            "Relative VAR change between consecutive queries of a key.",
            labels=("key",),
        ).set(drift["var_drift"] or 0.0, key=key)
        return drift

    def _analyze_entry(
        self,
        source: str,
        profile: ProgramProfile,
        model,
        loop_variance: str,
    ) -> dict:
        from repro.analysis.distributions import LoopDistribution

        spec = {
            "zero": "zero",
            "profiled": "profiled",
            "poisson": LoopDistribution.POISSON,
            "geometric": LoopDistribution.GEOMETRIC,
            "uniform": LoopDistribution.UNIFORM,
        }[loop_variance]
        with self._cache_lock:
            program, _tier = self.cache.compiled(source)
            self._publish_cache_snapshot()
        return summarize_item(
            program, profile, model, loop_variance=spec
        )

    def _static_bounds_entry(self, source: str, model) -> dict:
        from repro.dataflow import compute_static_bounds

        with self._cache_lock:
            program, _tier = self.cache.compiled(source)
            self._publish_cache_snapshot()
        bounds = compute_static_bounds(
            program.checked,
            program.cfgs,
            model,
            artifacts=program.artifacts(),
        )
        return bounds.to_json()

    # -- calibration and chunk advice ------------------------------------

    async def _handle_calibration(
        self, request: Request
    ) -> tuple[int, dict]:
        """The loaded wall-clock calibration artifact, if any."""
        if self.calibration is None:
            return 404, error_payload(
                404,
                "no calibration loaded; start the service with "
                "--calibration <artifact.json> (see `repro validate "
                "--calibrate`)",
            )
        return 200, {"ok": True, "calibration": self.calibration.to_dict()}

    async def _handle_chunks(
        self, request: Request, key: str
    ) -> tuple[int, dict]:
        """Kruskal-Weiss chunk-size advice from the key's live profile."""
        profile = self.database.lookup(key)
        if profile is None:
            return 404, error_payload(404, f"no accumulated profile: {key}")
        source = self.sources.get(key)
        if source is None:
            return 404, error_payload(
                404,
                "no source registered for this key; register it via "
                "/compile {key: ...} or an ingest with source",
            )
        model_name = request.query.get("model", "scalar")
        model = self._resolve_model(model_name)
        loop_variance = request.query.get("loop_variance", "profiled")
        if loop_variance not in _LOOP_VARIANCE:
            raise ProtocolError(
                f'"loop_variance" must be one of {list(_LOOP_VARIANCE)}'
            )
        try:
            n_processors = int(request.query.get("processors", "8"))
            overhead = float(request.query.get("overhead", "10"))
        except ValueError:
            raise ProtocolError(
                '"processors" must be an integer and "overhead" a number'
            ) from None
        if not 1 <= n_processors <= 4096:
            raise ProtocolError('"processors" must be between 1 and 4096')
        if overhead < 0:
            raise ProtocolError('"overhead" must be >= 0')
        loop = asyncio.get_running_loop()
        with span("service.chunks", attrs={"key": key}):
            advice = await asyncio.wait_for(
                loop.run_in_executor(
                    None, self._chunks_entry, source, profile, model,
                    loop_variance, n_processors, overhead,
                ),
                timeout=self.config.request_timeout,
            )
        return 200, {
            "key": key,
            "runs": profile.runs,
            "model": model_name,
            "loop_variance": loop_variance,
            "processors": n_processors,
            "overhead": overhead,
            "units": "ns" if model_name == "calibrated" else "cycles",
            "loops": advice,
        }

    def _chunks_entry(
        self,
        source: str,
        profile: ProgramProfile,
        model,
        loop_variance: str,
        n_processors: int,
        overhead: float,
    ) -> list[dict]:
        from repro.analysis.distributions import LoopDistribution
        from repro.apps.chunking import chunk_advice
        from repro.pipeline import analyze

        spec = {
            "zero": "zero",
            "profiled": "profiled",
            "poisson": LoopDistribution.POISSON,
            "geometric": LoopDistribution.GEOMETRIC,
            "uniform": LoopDistribution.UNIFORM,
        }[loop_variance]
        with self._cache_lock:
            program, _tier = self.cache.compiled(source)
            self._publish_cache_snapshot()
        analysis = analyze(program, profile, model, loop_variance=spec)
        return chunk_advice(
            analysis, n_processors=n_processors, overhead=overhead
        )


async def serve(config: ServiceConfig, *, ready=None) -> ProfilingService:
    """Run a service until it is drained (the ``repro serve`` body)."""
    service = ProfilingService(config)
    await service.start()
    service.install_signal_handlers(asyncio.get_running_loop())
    if ready is not None:
        ready(service)
    await service.serve_forever()
    return service


class ServiceThread:
    """A service on a background thread — tests, benchmarks, embedding.

    ::

        with ServiceThread(ServiceConfig()) as handle:
            client = ServiceClient(port=handle.port)
            ...

    ``stop()`` (or leaving the ``with`` block) performs the same
    graceful drain a SIGTERM would.
    """

    def __init__(self, config: ServiceConfig | None = None):
        self.config = config or ServiceConfig()
        self.service: ProfilingService | None = None
        self.port: int | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._error: BaseException | None = None
        self._thread = threading.Thread(target=self._main, daemon=True)

    def start(self) -> "ServiceThread":
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._error is not None:
            raise self._error
        if self.port is None:
            raise RuntimeError("service failed to start within 30s")
        return self

    def stop(self, timeout: float = 60.0) -> None:
        if self._loop is not None and self.service is not None:
            future = asyncio.run_coroutine_threadsafe(
                self.service.shutdown(), self._loop
            )
            future.result(timeout=timeout)
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # noqa: BLE001 - surfaced in start()
            self._error = exc
            self._ready.set()

    async def _amain(self) -> None:
        service = ProfilingService(self.config)
        await service.start()
        self.service = service
        self.port = service.port
        self._loop = asyncio.get_running_loop()
        self._ready.set()
        await service.serve_forever()
