"""The consistent-hash routing front door of ``repro serve --workers N``.

One listener process accepts every client connection and places each
request on the shard that owns its key (:mod:`repro.service.sharding`),
so the fleet behaves like one service:

* **sticky routes** — ``/compile``, ``/profile``,
  ``/profiles/{key}`` and its ``/ingest``, ``/paths``, ``/chunks``
  sub-resources forward to the owning worker over a pooled keep-alive
  connection.  All of a key's ``TOTAL_FREQ`` deltas therefore
  accumulate in one shard's database — §3 accumulation stays exact,
  Definition 3 normalizes at query time on the owner.
* **fan-out** — keyless ``GET /profiles`` queries every shard and
  merges the slices with :meth:`ProfileDatabase.merge` (raw counts
  are additive), so the merged view is bit-identical to what a
  single-worker service would have accumulated.
* **aggregation** — ``/healthz`` and ``/metrics`` collect per-shard
  status next to the front door's own routing counters
  (``repro_shard_*`` series, labelled by shard).

Failure policy: a request for a crashed shard's key range answers
``503`` with a ``retry_after_ms`` hint while the supervisor respawns
the worker — nothing is replayed or rerouted (rerouting would split a
key's accumulation across shards).  Request ids and ``traceparent``
headers propagate through to workers, so one client trace crosses the
process boundary intact.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time

from dataclasses import dataclass

import repro
from repro.obs import (
    current_context,
    format_traceparent,
    metrics,
    parse_traceparent,
    render_prometheus,
    span,
)
from repro.obs.prometheus import CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE
from repro.profiling.database import ProfileDatabase, ProgramProfile
from repro.service.protocol import (
    ProtocolError,
    RawBody,
    Request,
    Response,
    error_payload,
    read_request,
    read_response,
    response_bytes,
)
from repro.service.server import ProfilingService, ServiceConfig
from repro.service.sharding import HashRing, DEFAULT_REPLICAS, routing_key
from repro.service.supervisor import ShardSupervisor

#: Routes the front door answers itself instead of forwarding.
_LOCAL_ROUTES = ("healthz", "metrics", "profiles_index")


def _new_request_id() -> str:
    return os.urandom(8).hex()


class ShardDown(Exception):
    """The owning worker is (re)starting; the client should retry."""


@dataclass
class FrontDoorConfig:
    """Knobs of the sharded deployment.

    ``worker`` is the template every shard inherits — its ``db`` and
    ``cache`` are the *base* paths that :mod:`sharding` slices per
    worker (``db.shard3.json``, ``cache/shard3``).
    """

    workers: int = 2
    host: str = "127.0.0.1"
    port: int = 0
    worker: ServiceConfig = None  # type: ignore[assignment]
    #: Virtual nodes per shard on the hash ring.
    replicas: int = DEFAULT_REPLICAS
    #: Retry hint attached to 503s while a shard is down.
    retry_after_ms: int = 250
    #: Budget for the whole drain (front-door quiesce + worker drains).
    drain_timeout: float = 30.0
    #: How long one worker may take to boot and report its port.
    spawn_timeout: float = 60.0
    #: Per-proxied-request budget (covers the worker round trip).
    proxy_timeout: float = 60.0

    def __post_init__(self) -> None:
        if self.worker is None:
            self.worker = ServiceConfig()


class FrontDoor:
    """The routing listener: ``await start()``, then ``serve_forever()``."""

    def __init__(self, config: FrontDoorConfig | None = None):
        self.config = config or FrontDoorConfig()
        if self.config.workers < 1:
            raise ValueError("workers must be >= 1")
        self.ring = HashRing(
            self.config.workers, replicas=self.config.replicas
        )
        self.supervisor = ShardSupervisor(
            self.config.worker,
            self.config.workers,
            spawn_timeout=self.config.spawn_timeout,
            on_state_change=self._on_shard_state,
        )
        self.port: int | None = None
        self.draining = False
        self._server: asyncio.base_events.Server | None = None
        self._stopped = asyncio.Event()
        self._started = time.monotonic()
        self._in_flight = 0
        self._responses: dict[int, int] = {}
        self._protocol_errors = 0
        #: Keep-alive connections to workers: shard -> [(port, r, w)].
        #: Entries are validated against the shard's *current* port at
        #: acquire time, so connections to a crashed worker's old port
        #: die with it instead of poisoning the pool.
        self._pools: dict[int, list[tuple[int, object, object]]] = {}
        self._shard_up_gauge = metrics.gauge(
            "repro_shard_up",
            "1 while the shard's worker process is serving, else 0.",
            labels=("shard",),
        )
        self._shard_requests = metrics.counter(
            "repro_shard_requests_total",
            "Requests routed to each shard, by route.",
            labels=("shard", "route"),
        )
        self._shard_unavailable = metrics.counter(
            "repro_shard_unavailable_total",
            "Requests answered 503 because the owning shard was down.",
            labels=("shard",),
        )
        self._fanouts = metrics.counter(
            "repro_frontdoor_fanouts_total",
            "Cross-shard fan-out queries served by the front door.",
        )
        self._http_seconds = metrics.histogram(
            "repro_http_request_seconds",
            "Front-door request latency by route.",
            labels=("route",),
        )
        self._http_requests = metrics.counter(
            "repro_http_requests_total",
            "Front-door requests by route and status.",
            labels=("route", "status"),
        )

    def _on_shard_state(self, index: int, up: bool) -> None:
        self._shard_up_gauge.set(1 if up else 0, shard=str(index))
        if not up:
            # Connections to the dead process are useless; drop them.
            for port, _reader, writer in self._pools.pop(index, []):
                del port
                try:
                    writer.close()
                except Exception:
                    pass

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        await self.supervisor.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._stopped.wait()

    def install_signal_handlers(
        self, loop: asyncio.AbstractEventLoop
    ) -> None:
        import signal

        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, lambda: loop.create_task(self.shutdown())
                )
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass

    async def shutdown(self) -> None:
        """Ordered drain: quiesce the door, then drain every shard.

        1. stop accepting connections and answer new work with 503;
        2. wait for in-flight proxied requests to finish — their
           workers are still up, so anything already answered 200 by a
           worker will be flushed and saved by that worker's drain;
        3. SIGTERM the fleet and wait (stragglers are killed after the
           timeout; every shard save is atomic regardless).
        """
        if self.draining:
            return
        self.draining = True
        if self._server is not None:
            self._server.close()
        deadline = time.monotonic() + self.config.drain_timeout
        while self._in_flight > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        await self.supervisor.drain(
            max(1.0, deadline - time.monotonic())
        )
        if self._server is not None:
            await self._server.wait_closed()
        self._stopped.set()

    # -- connection handling ---------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ProtocolError as exc:
                    self._protocol_errors += 1
                    self._responses[exc.status] = (
                        self._responses.get(exc.status, 0) + 1
                    )
                    writer.write(
                        response_bytes(
                            exc.status,
                            error_payload(exc.status, str(exc)),
                            keep_alive=False,
                            headers={"X-Request-Id": _new_request_id()},
                        )
                    )
                    await writer.drain()
                    return
                if request is None:
                    return
                request_id = (
                    request.headers.get("x-request-id") or _new_request_id()
                )
                status, payload = await self._dispatch(request, request_id)
                self._responses[status] = self._responses.get(status, 0) + 1
                keep_alive = request.keep_alive and not self.draining
                writer.write(
                    response_bytes(
                        status,
                        payload,
                        keep_alive=keep_alive,
                        headers={"X-Request-Id": request_id},
                    )
                )
                await writer.drain()
                if not keep_alive:
                    return
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(
        self, request: Request, request_id: str
    ) -> tuple[int, "dict | RawBody"]:
        route, _key = ProfilingService._route(request.path)
        route_label = route or "unknown"
        started = time.perf_counter()
        with span(
            f"frontdoor.{route_label}",
            attrs={"method": request.method, "path": request.path},
            parent=parse_traceparent(request.headers.get("traceparent")),
        ) as request_span:
            self._in_flight += 1
            try:
                status, payload = await self._dispatch_inner(
                    request, route, request_id
                )
            except ProtocolError as exc:
                status, payload = exc.status, error_payload(
                    exc.status, str(exc)
                )
            except (asyncio.TimeoutError, TimeoutError):
                status, payload = 504, error_payload(
                    504,
                    f"request exceeded its "
                    f"{self.config.proxy_timeout:g}s budget",
                )
            except Exception as exc:  # pragma: no cover - defensive
                status, payload = 500, error_payload(
                    500, f"{type(exc).__name__}: {exc}"
                )
            finally:
                self._in_flight -= 1
            request_span.set_attr(status=status)
        self._http_seconds.observe(
            time.perf_counter() - started, route=route_label
        )
        self._http_requests.inc(route=route_label, status=str(status))
        return status, payload

    async def _dispatch_inner(
        self, request: Request, route: str | None, request_id: str
    ) -> tuple[int, "dict | RawBody"]:
        if route is None:
            return 404, error_payload(404, f"no such path: {request.path}")
        if route == "healthz":
            return await self._handle_healthz(request)
        if route == "metrics":
            return await self._handle_metrics(request)
        if self.draining:
            return 503, error_payload(503, "service is draining")
        if route == "profiles_index":
            if request.method != "GET":
                return 405, error_payload(
                    405, f"{request.path} only accepts GET"
                )
            return await self._handle_profiles_fanout(request, request_id)
        _route, key = ProfilingService._route(request.path)
        payload = request.json() if request.method == "POST" else {}
        target = routing_key(route, key, payload)
        if target is None:
            return 404, error_payload(404, f"no such path: {request.path}")
        shard = self.ring.shard_for(target)
        self._shard_requests.inc(shard=str(shard), route=route)
        try:
            upstream = await self._forward(shard, request, request_id)
        except ShardDown:
            self._shard_unavailable.inc(shard=str(shard))
            return 503, error_payload(
                503,
                f"shard {shard} (owner of this key range) is "
                "restarting; retry shortly",
                retry_after_ms=self.config.retry_after_ms,
                shard=shard,
            )
        return upstream.status, RawBody(
            upstream.headers.get("content-type", "application/json"),
            upstream.body,
        )

    # -- proxying --------------------------------------------------------

    def _request_bytes(self, request: Request, request_id: str) -> bytes:
        """Re-serialize a parsed request for the owning worker."""
        query = ""
        if request.query:
            from urllib.parse import urlencode

            query = "?" + urlencode(request.query)
        headers = {
            "Host": "worker",
            "Content-Length": str(len(request.body)),
            "Connection": "keep-alive",
            "X-Request-Id": request_id,
        }
        for passthrough in ("content-type", "accept"):
            if passthrough in request.headers:
                headers[passthrough] = request.headers[passthrough]
        # Continue *our* span (which itself continues the client's
        # traceparent), so worker-side spans nest under the routing
        # span in one distributed trace.
        context = current_context()
        if context is not None:
            headers["traceparent"] = format_traceparent(context)
        elif "traceparent" in request.headers:
            headers["traceparent"] = request.headers["traceparent"]
        head = f"{request.method} {request.path}{query} HTTP/1.1\r\n"
        head += "".join(f"{k}: {v}\r\n" for k, v in headers.items())
        head += "\r\n"
        return head.encode("latin-1") + request.body

    async def _acquire(self, shard: int):
        """A live (port, reader, writer) for ``shard``; opens if needed."""
        handle = self.supervisor.handles[shard]
        if not handle.up or handle.port is None or self.supervisor.draining:
            raise ShardDown(shard)
        port = handle.port
        pool = self._pools.setdefault(shard, [])
        while pool:
            pooled_port, reader, writer = pool.pop()
            if pooled_port == port and not reader.at_eof():
                return port, reader, writer
            try:
                writer.close()
            except Exception:
                pass
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection("127.0.0.1", port), timeout=5.0
            )
        except (OSError, asyncio.TimeoutError, TimeoutError) as exc:
            raise ShardDown(shard) from exc
        return port, reader, writer

    def _release(self, shard: int, port: int, reader, writer) -> None:
        handle = self.supervisor.handles[shard]
        if handle.up and handle.port == port:
            self._pools.setdefault(shard, []).append((port, reader, writer))
        else:
            try:
                writer.close()
            except Exception:
                pass

    async def _forward(
        self, shard: int, request: Request, request_id: str
    ) -> Response:
        """One request/response round trip to the owning worker.

        A stale pooled connection (worker restarted, keep-alive timed
        out) gets one retry on a fresh connection; a fresh-connection
        failure means the worker really is gone -> :class:`ShardDown`.
        """
        payload = self._request_bytes(request, request_id)
        for attempt in (0, 1):
            port, reader, writer = await self._acquire(shard)
            try:
                writer.write(payload)
                await writer.drain()
                response = await asyncio.wait_for(
                    read_response(reader), timeout=self.config.proxy_timeout
                )
            except (asyncio.TimeoutError, TimeoutError):
                try:
                    writer.close()
                except Exception:
                    pass
                raise
            except (ProtocolError, ConnectionError, OSError) as exc:
                try:
                    writer.close()
                except Exception:
                    pass
                if attempt == 1:
                    raise ShardDown(shard) from exc
                continue
            if response.keep_alive:
                self._release(shard, port, reader, writer)
            else:
                try:
                    writer.close()
                except Exception:
                    pass
            return response
        raise ShardDown(shard)  # pragma: no cover - loop always returns

    # -- fan-out and aggregation -----------------------------------------

    async def _fanout(
        self, path: str, request_id: str, *, accept_json: bool = True
    ) -> list[Response | None]:
        """One GET to every shard, concurrently; ``None`` for a dead one."""

        async def one(shard: int) -> Response | None:
            probe = Request(method="GET", path=path)
            qmark = path.find("?")
            if qmark >= 0:
                from urllib.parse import parse_qsl

                probe.path, query = path[:qmark], path[qmark + 1 :]
                probe.query = dict(parse_qsl(query))
            try:
                return await self._forward(shard, probe, request_id)
            except (ShardDown, asyncio.TimeoutError, TimeoutError):
                return None

        return list(
            await asyncio.gather(
                *(one(shard) for shard in range(self.config.workers))
            )
        )

    async def _handle_profiles_fanout(
        self, request: Request, request_id: str
    ) -> tuple[int, dict]:
        """Merge every shard's ``GET /profiles`` slice into one view."""
        import json
        from urllib.parse import urlencode

        self._fanouts.inc()
        want_raw = request.query.get("raw", "") in ("1", "true")
        # Always fetch raw slices: the merge runs on raw TOTAL_FREQ
        # counts (the only thing that *is* additive); analysis bodies
        # pass through from the shard that owns each key.
        query = dict(request.query)
        query["raw"] = "1"
        with span("frontdoor.fanout", attrs={"shards": self.config.workers}):
            answers = await self._fanout(
                "/profiles?" + urlencode(query), request_id
            )
        merged = ProfileDatabase(None)
        profiles: dict[str, dict] = {}
        shard_summaries: list[dict] = []
        for shard, answer in enumerate(answers):
            if answer is None or answer.status != 200:
                self._shard_unavailable.inc(shard=str(shard))
                return 503, error_payload(
                    503,
                    f"shard {shard} is unavailable; the merged profile "
                    "view would be incomplete — retry shortly",
                    retry_after_ms=self.config.retry_after_ms,
                    shard=shard,
                )
            body = json.loads(answer.body)
            shard_summaries.append(
                {
                    "shard": body.get("shard", shard),
                    "keys": body["keys"],
                    "runs": body["runs"],
                }
            )
            for key, entry in body["profiles"].items():
                merged.record(key, ProgramProfile.from_dict(entry["raw"]))
                target = profiles.setdefault(key, {})
                owner = self.ring.shard_for(key) == shard
                if owner or "runs" not in target:
                    for field_name in ("analysis",):
                        if field_name in entry:
                            target[field_name] = entry[field_name]
        for key, entry in profiles.items():
            profile = merged.lookup(key)
            entry["runs"] = profile.runs
            if want_raw:
                entry["raw"] = profile.to_dict()
            profiles[key] = dict(sorted(entry.items()))
        return 200, {
            "keys": merged.keys(),
            "runs": merged.total_runs(),
            "profiles": profiles,
            "shards": shard_summaries,
        }

    async def _handle_healthz(self, request: Request) -> tuple[int, dict]:
        """Aggregate liveness: the door plus every shard's own answer."""
        import json

        answers = await self._fanout("/healthz", _new_request_id())
        shards = []
        healthy = 0
        for shard, answer in enumerate(answers):
            handle = self.supervisor.handles[shard]
            entry: dict = {
                "shard": shard,
                "port": handle.port,
                "pid": handle.pid,
                "restarts": handle.restarts,
            }
            if answer is not None and answer.status == 200:
                body = json.loads(answer.body)
                entry["status"] = body.get("status", "ok")
                entry["queue_depth"] = body.get("queue_depth")
                entry["uptime_s"] = body.get("uptime_s")
                if entry["status"] == "ok":
                    healthy += 1
            else:
                entry["status"] = "down"
            shards.append(entry)
        if self.draining:
            status = "draining"
        elif healthy == len(shards):
            status = "ok"
        else:
            status = "degraded"
        return 200, {
            "status": status,
            "workers": self.config.workers,
            "healthy_workers": healthy,
            "uptime_s": round(time.monotonic() - self._started, 3),
            "shards": shards,
        }

    async def _handle_metrics(self, request: Request) -> tuple[int, dict]:
        if "text/plain" in request.headers.get("accept", ""):
            self._sync_gauges()
            text = render_prometheus()
            return 200, RawBody(PROMETHEUS_CONTENT_TYPE, text.encode())
        import json
        import platform

        answers = await self._fanout("/metrics", _new_request_id())
        shards: list[dict] = []
        totals = {"keys": 0, "runs": 0.0, "ingests": 0, "requests": 0}
        for shard, answer in enumerate(answers):
            if answer is None or answer.status != 200:
                shards.append({"shard": shard, "up": False})
                continue
            body = json.loads(answer.body)
            body["up"] = True
            shards.append(body)
            database = body.get("database", {})
            totals["keys"] += database.get("keys", 0)
            totals["runs"] += database.get("runs", 0.0)
            totals["ingests"] += database.get("ingests", 0)
            totals["requests"] += sum(
                body.get("requests_total", {}).values()
            )
        uptime = round(time.monotonic() - self._started, 3)
        return 200, {
            "uptime_s": uptime,
            "uptime_seconds": uptime,
            "build": {
                "version": repro.__version__,
                "python": platform.python_version(),
            },
            "frontdoor": {
                "workers": self.config.workers,
                "draining": self.draining,
                "in_flight": self._in_flight,
                "responses_by_status": {
                    str(status): count
                    for status, count in sorted(self._responses.items())
                },
                "protocol_errors": self._protocol_errors,
                "restarts": {
                    str(handle.index): handle.restarts
                    for handle in self.supervisor.handles
                },
            },
            "aggregate": totals,
            "shards": shards,
        }

    def _sync_gauges(self) -> None:
        metrics.gauge(
            "repro_uptime_seconds", "Front-door uptime in seconds."
        ).set(time.monotonic() - self._started)
        metrics.gauge(
            "repro_draining", "1 while the service is draining, else 0."
        ).set(int(self.draining))
        restarts = metrics.gauge(
            "repro_shard_restarts",
            "Times the supervisor has respawned each shard's worker.",
            labels=("shard",),
        )
        for handle in self.supervisor.handles:
            self._shard_up_gauge.set(
                1 if handle.up else 0, shard=str(handle.index)
            )
            restarts.set(handle.restarts, shard=str(handle.index))


async def serve_sharded(
    config: FrontDoorConfig, *, ready=None
) -> FrontDoor:
    """Run a sharded deployment until drained (``repro serve --workers``)."""
    door = FrontDoor(config)
    await door.start()
    door.install_signal_handlers(asyncio.get_running_loop())
    if ready is not None:
        ready(door)
    await door.serve_forever()
    return door


class FrontDoorThread:
    """A sharded deployment on a background thread — tests, benchmarks.

    ::

        with FrontDoorThread(FrontDoorConfig(workers=4)) as handle:
            client = ServiceClient(port=handle.port)
            ...

    ``stop()`` (or leaving the ``with`` block) runs the same ordered
    drain a SIGTERM would: quiesce the door, then drain every worker.
    """

    def __init__(self, config: FrontDoorConfig | None = None):
        self.config = config or FrontDoorConfig()
        self.door: FrontDoor | None = None
        self.port: int | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._error: BaseException | None = None
        self._thread = threading.Thread(target=self._main, daemon=True)

    def start(self) -> "FrontDoorThread":
        self._thread.start()
        self._ready.wait(timeout=120)
        if self._error is not None:
            raise self._error
        if self.port is None:
            raise RuntimeError("front door failed to start within 120s")
        return self

    def stop(self, timeout: float = 120.0) -> None:
        if self._loop is not None and self.door is not None:
            future = asyncio.run_coroutine_threadsafe(
                self.door.shutdown(), self._loop
            )
            future.result(timeout=timeout)
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "FrontDoorThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # noqa: BLE001 - surfaced in start()
            self._error = exc
            self._ready.set()

    async def _amain(self) -> None:
        door = FrontDoor(self.config)
        await door.start()
        self.door = door
        self.port = door.port
        self._loop = asyncio.get_running_loop()
        self._ready.set()
        await door.serve_forever()
