"""Minimal HTTP/1.1 plumbing for the profiling service.

The service speaks plain JSON-over-HTTP so that any stdlib client
(``http.client``, ``urllib``) or ``curl`` can talk to it, but it is
*not* a general web server: it parses exactly the subset of HTTP/1.1
the :mod:`repro.service.client` library emits — a request line,
headers, an optional ``Content-Length`` body — and always answers
with a ``Content-Length``-framed JSON body.  Keep-alive is supported
(one request at a time per connection); chunked transfer encoding is
not.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, urlsplit

from repro.errors import ReproError


class ProtocolError(ReproError):
    """A request the server cannot parse (answered with 400/413)."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


#: Reason phrases for every status the service emits.
REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Default bound on request bodies (sources and profile deltas are
#: small; anything bigger is a client bug or abuse).
MAX_BODY_BYTES = 4 * 1024 * 1024

_MAX_LINE = 16 * 1024
_MAX_HEADERS = 100


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"

    def json(self) -> dict:
        """The body parsed as a JSON object (400 on anything else)."""
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body)
        except ValueError as exc:
            raise ProtocolError(f"malformed JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise ProtocolError("request body must be a JSON object")
        return payload


async def read_request(
    reader, *, max_body: int = MAX_BODY_BYTES
) -> Request | None:
    """Parse one request off the stream; ``None`` on clean EOF."""
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between requests
        raise ProtocolError("truncated request line") from exc
    except asyncio.LimitOverrunError as exc:
        raise ProtocolError("request line too long") from exc
    if len(line) > _MAX_LINE:
        raise ProtocolError("request line too long")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(f"malformed request line: {line[:80]!r}")
    method, target, _version = parts
    split = urlsplit(target)
    request = Request(
        method=method.upper(),
        path=split.path or "/",
        query=dict(parse_qsl(split.query)),
    )

    for _ in range(_MAX_HEADERS):
        try:
            line = await reader.readuntil(b"\n")
        except Exception as exc:
            raise ProtocolError("truncated headers") from exc
        text = line.decode("latin-1").strip()
        if not text:
            break
        name, sep, value = text.partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line: {text[:80]!r}")
        request.headers[name.strip().lower()] = value.strip()
    else:
        raise ProtocolError("too many headers")

    length_text = request.headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError as exc:
        raise ProtocolError(f"bad Content-Length: {length_text!r}") from exc
    if length < 0:
        raise ProtocolError(f"bad Content-Length: {length_text!r}")
    if length > max_body:
        raise ProtocolError(
            f"request body of {length} bytes exceeds the {max_body} limit",
            status=413,
        )
    if length:
        try:
            request.body = await reader.readexactly(length)
        except Exception as exc:
            raise ProtocolError("truncated request body") from exc
    return request


@dataclass
class Response:
    """One parsed HTTP response off an upstream (worker) connection."""

    status: int
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


async def read_response(
    reader, *, max_body: int = MAX_BODY_BYTES * 8
) -> Response:
    """Parse one ``Content-Length``-framed response off the stream.

    The front door uses this to read worker answers; workers always
    frame with ``Content-Length`` (see :func:`response_bytes`), so
    chunked decoding is deliberately unsupported.  The body ceiling is
    looser than the request ceiling: a fan-out ``GET /profiles`` dump
    of a big shard is legitimately larger than any single request.
    """
    try:
        line = await reader.readuntil(b"\n")
    except (asyncio.IncompleteReadError, asyncio.LimitOverrunError) as exc:
        raise ProtocolError("truncated response status line") from exc
    parts = line.decode("latin-1").strip().split(None, 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
        raise ProtocolError(f"malformed status line: {line[:80]!r}")
    try:
        status = int(parts[1])
    except ValueError as exc:
        raise ProtocolError(f"malformed status line: {line[:80]!r}") from exc
    response = Response(status=status)
    for _ in range(_MAX_HEADERS):
        try:
            line = await reader.readuntil(b"\n")
        except Exception as exc:
            raise ProtocolError("truncated response headers") from exc
        text = line.decode("latin-1").strip()
        if not text:
            break
        name, sep, value = text.partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line: {text[:80]!r}")
        response.headers[name.strip().lower()] = value.strip()
    else:
        raise ProtocolError("too many headers")
    length_text = response.headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError as exc:
        raise ProtocolError(f"bad Content-Length: {length_text!r}") from exc
    if not 0 <= length <= max_body:
        raise ProtocolError(f"unreasonable Content-Length: {length}")
    if length:
        try:
            response.body = await reader.readexactly(length)
        except Exception as exc:
            raise ProtocolError("truncated response body") from exc
    return response


@dataclass(frozen=True)
class RawBody:
    """A non-JSON response body with its own content type.

    ``/metrics`` answers ``Accept: text/plain`` scrapes with the
    Prometheus text exposition wrapped in one of these; everything
    else on the wire stays JSON.
    """

    content_type: str
    data: bytes


def response_bytes(
    status: int,
    payload: "dict | RawBody",
    *,
    keep_alive: bool = True,
    headers: dict[str, str] | None = None,
) -> bytes:
    """Serialize one response, ``Content-Length``-framed.

    ``payload`` is a JSON-able dict (the default) or a
    :class:`RawBody`; ``headers`` adds extra response headers
    (``X-Request-Id`` on every service response).
    """
    if isinstance(payload, RawBody):
        body = payload.data
        content_type = payload.content_type
    else:
        body = json.dumps(payload, sort_keys=True).encode()
        content_type = "application/json"
    reason = REASONS.get(status, "Unknown")
    extra = "".join(
        f"{name}: {value}\r\n" for name, value in (headers or {}).items()
    )
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        f"{extra}"
        "\r\n"
    )
    return head.encode("latin-1") + body


def error_payload(status: int, message: str, **extra) -> dict:
    """The uniform error body every non-2xx response carries."""
    return {"error": {"status": status, "message": message, **extra}}
