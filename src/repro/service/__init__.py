"""The profiling service: an asyncio compile/profile/ingest server.

The serving layer over the rest of the framework.  Clients profile
programs wherever they run and POST the raw ``TOTAL_FREQ`` deltas to
one long-lived service, which accumulates them (the paper's
recommendation: counts from many runs are summed, since Definition 3
only needs ratios) and answers queries with normalized frequencies,
TIME and Section-5 variance on demand.

* :class:`ProfilingService` / :func:`serve` — the asyncio server
  (``repro serve``);
* :class:`ServiceClient` — the blocking client (``repro call``);
* :class:`ServiceThread` — a service on a background thread, for
  tests and benchmarks;
* :class:`MicroBatcher` — request micro-batching with coalescing and
  bounded-queue admission control;
* :class:`FrontDoor` / :func:`serve_sharded` — the multi-process
  deployment (``repro serve --workers N``): a consistent-hash routing
  front door over ``N`` supervised worker processes, each owning a
  shard of the database and cache.

See ``docs/service.md`` for the wire protocol and operational knobs.
"""

from repro.service.batcher import (
    BatchTask,
    Draining,
    MicroBatcher,
    QueueFull,
)
from repro.service.client import ServiceClient, ServiceError
from repro.service.frontdoor import (
    FrontDoor,
    FrontDoorConfig,
    FrontDoorThread,
    serve_sharded,
)
from repro.service.protocol import ProtocolError, Request
from repro.service.server import (
    ProfilingService,
    ServiceConfig,
    ServiceThread,
    serve,
)
from repro.service.sharding import HashRing, routing_key
from repro.service.supervisor import ShardSupervisor

__all__ = [
    "BatchTask",
    "Draining",
    "FrontDoor",
    "FrontDoorConfig",
    "FrontDoorThread",
    "HashRing",
    "MicroBatcher",
    "ProfilingService",
    "ProtocolError",
    "QueueFull",
    "Request",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceThread",
    "ShardSupervisor",
    "routing_key",
    "serve",
    "serve_sharded",
]
