"""Worker-process supervision for the sharded profiling service.

The front door owns a :class:`ShardSupervisor`, which owns ``N``
worker processes.  Each worker is a full single-shard
:class:`~repro.service.server.ProfilingService` — its own event loop,
micro-batcher, artifact-cache slice and profile-database shard file —
spawned via ``multiprocessing`` (spawn context: no inherited event
loops, locks or sockets) on an ephemeral port it reports back through
a pipe.

The supervisor's contract:

* **liveness** — one monitor task per worker notices the process
  exiting.  An exit during drain is expected; any other exit marks
  the shard down (the front door answers its key range with 503 +
  retry hint) and respawns it with a small backoff.  Nothing is
  replayed: a crashed worker's unsaved in-memory accumulation is
  gone, and pretending otherwise would be false durability — set
  ``save_every`` to bound the loss window.
* **drain** — :meth:`drain` SIGTERMs every worker in parallel and
  waits.  Each worker runs its own PR-3 graceful drain (flush
  admitted micro-batches, save the shard database atomically), so an
  ingest any worker answered 200 is on disk afterwards.  Stragglers
  past the timeout are killed — their shard file stays whatever the
  last atomic save wrote.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import time
from dataclasses import dataclass, field

from repro.service.server import ServiceConfig, serve
from repro.service.sharding import shard_cache_dir, shard_db_path

#: Cap on the crash-respawn backoff (doubles per consecutive restart).
_MAX_RESTART_BACKOFF = 2.0


def _worker_entry(config_kwargs: dict, conn) -> None:
    """The worker process body (module-level: spawn must import it)."""
    import asyncio as _asyncio

    config = ServiceConfig(**config_kwargs)

    def ready(service) -> None:
        conn.send(service.port)
        conn.close()

    # serve() installs SIGTERM/SIGINT handlers: the supervisor's
    # terminate() triggers the worker's own graceful drain.
    _asyncio.run(serve(config, ready=ready))


@dataclass
class WorkerHandle:
    """One supervised shard process."""

    index: int
    process: multiprocessing.process.BaseProcess | None = None
    port: int | None = None
    up: bool = False
    restarts: int = 0
    started_at: float = field(default_factory=time.monotonic)

    @property
    def pid(self) -> int | None:
        return self.process.pid if self.process is not None else None


class ShardSupervisor:
    """Spawn, watch, restart and drain the worker fleet."""

    def __init__(
        self,
        base: ServiceConfig,
        workers: int,
        *,
        spawn_timeout: float = 60.0,
        on_state_change=None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.base = base
        self.workers = workers
        self.spawn_timeout = spawn_timeout
        #: ``on_state_change(index, up)`` fires on every up/down edge
        #: (the front door syncs its ``repro_shard_up`` gauge here).
        self.on_state_change = on_state_change
        self.handles = [WorkerHandle(index=i) for i in range(workers)]
        self.draining = False
        self._ctx = multiprocessing.get_context("spawn")
        self._monitors: list[asyncio.Task] = []

    # -- configuration per shard -----------------------------------------

    def worker_kwargs(self, index: int) -> dict:
        """The :class:`ServiceConfig` kwargs of shard ``index``."""
        base = self.base
        return {
            "host": "127.0.0.1",  # workers are internal to the box
            "port": 0,
            "db": shard_db_path(base.db, index),
            "cache": shard_cache_dir(base.cache, index),
            "max_batch": base.max_batch,
            "linger": base.linger,
            "queue_limit": base.queue_limit,
            "request_timeout": base.request_timeout,
            "max_steps_cap": base.max_steps_cap,
            "max_runs_per_request": base.max_runs_per_request,
            "save_every": base.save_every,
            "drain_timeout": base.drain_timeout,
            "max_body": base.max_body,
            "calibration": base.calibration,
            "shard_index": index,
            "shard_count": self.workers,
        }

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Spawn every worker (concurrently) and start the monitors."""
        loop = asyncio.get_running_loop()
        await asyncio.gather(
            *(
                loop.run_in_executor(None, self._spawn_blocking, handle)
                for handle in self.handles
            )
        )
        for handle in self.handles:
            self._set_state(handle, True)
            self._monitors.append(
                asyncio.get_running_loop().create_task(self._monitor(handle))
            )

    def _spawn_blocking(self, handle: WorkerHandle) -> None:
        """Start shard ``handle.index`` and wait for its bound port."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_worker_entry,
            args=(self.worker_kwargs(handle.index), child_conn),
            name=f"repro-shard-{handle.index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        deadline = time.monotonic() + self.spawn_timeout
        port = None
        while time.monotonic() < deadline:
            if parent_conn.poll(0.05):
                try:
                    port = parent_conn.recv()
                except EOFError:
                    break
                break
            if not process.is_alive():
                break
        parent_conn.close()
        if port is None:
            if process.is_alive():
                process.kill()
            process.join(timeout=5)
            raise RuntimeError(
                f"shard {handle.index} failed to report a port within "
                f"{self.spawn_timeout:g}s"
            )
        handle.process = process
        handle.port = port
        handle.started_at = time.monotonic()

    def _set_state(self, handle: WorkerHandle, up: bool) -> None:
        handle.up = up
        if self.on_state_change is not None:
            self.on_state_change(handle.index, up)

    async def _monitor(self, handle: WorkerHandle) -> None:
        """Respawn ``handle`` whenever it dies outside a drain."""
        loop = asyncio.get_running_loop()
        while True:
            process = handle.process
            assert process is not None
            # Poll liveness instead of join()ing in the executor: a
            # blocking join per shard would pin most of the small
            # default thread pool for the life of the service.
            while process.is_alive():
                await asyncio.sleep(0.1)
                if self.draining:
                    return
            if self.draining:
                return
            self._set_state(handle, False)
            handle.restarts += 1
            # Exponential backoff against a worker that dies on boot;
            # a healthy crash-restart pays only the first 100ms.
            backoff = min(
                _MAX_RESTART_BACKOFF,
                0.1 * 2 ** min(handle.restarts - 1, 5),
            )
            await asyncio.sleep(backoff)
            if self.draining:
                return
            try:
                await loop.run_in_executor(
                    None, self._spawn_blocking, handle
                )
            except RuntimeError:
                continue  # the while loop backs off and tries again
            self._set_state(handle, True)

    # -- shutdown --------------------------------------------------------

    async def drain(self, timeout: float) -> None:
        """SIGTERM every worker; wait; kill stragglers past ``timeout``."""
        self.draining = True
        loop = asyncio.get_running_loop()
        for handle in self.handles:
            if handle.process is not None and handle.process.is_alive():
                handle.process.terminate()  # SIGTERM -> worker drain

        def _join_all() -> None:
            deadline = time.monotonic() + timeout
            for handle in self.handles:
                process = handle.process
                if process is None:
                    continue
                process.join(max(0.0, deadline - time.monotonic()))
                if process.is_alive():  # straggler: give up on it
                    process.kill()
                    process.join(5)

        await loop.run_in_executor(None, _join_all)
        for handle in self.handles:
            self._set_state(handle, False)
        for monitor in self._monitors:
            monitor.cancel()
        self._monitors = []
