"""Micro-batching with admission control for the profiling service.

Concurrent compile/profile requests are not executed one at a time:
they queue in a bounded admission buffer and a single flusher task
drains them into the batch engine in *micro-batches* — a flush fires
as soon as ``max_batch`` requests are pending, or after ``linger``
seconds, whichever comes first.  Batching buys two things on the
request path:

* **amortization** — one executor round-trip, one engine invocation
  and one cache-stats reconciliation per flush instead of per
  request;
* **coalescing** — requests with an identical work signature
  (same source, plan, run specs, ...) are deduplicated into a single
  batch item whose result fans out to every waiter, singleflight
  style.  Profiling is deterministic per (source, run-spec), so this
  is a pure win for repeat-heavy serving traffic.

Backpressure is explicit: when the admission buffer is full,
``submit`` raises :class:`QueueFull` and the server answers 429 —
shedding load at the door instead of accumulating unbounded latency.
Once :meth:`close` is called the batcher flushes whatever is pending
(drain) and rejects new work with :class:`Draining`.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.obs import metrics
from repro.obs.metrics import SIZE_BUCKETS


class QueueFull(Exception):
    """The admission buffer is at capacity; shed this request."""


class Draining(Exception):
    """The service is shutting down; no new work is admitted."""


@dataclass(frozen=True)
class BatchTask:
    """One admitted unit of work.

    ``signature`` keys coalescing: tasks with equal signatures are
    executed once per flush.  ``payload`` carries the parsed request
    for the flush function.
    """

    kind: str  # "compile" | "profile"
    signature: str
    payload: dict = field(compare=False, hash=False)


@dataclass
class BatcherStats:
    """Monotonic counters plus gauges for ``/metrics``."""

    submitted: int = 0
    rejected_queue_full: int = 0
    rejected_draining: int = 0
    flushes: int = 0
    flushed_tasks: int = 0
    coalesced: int = 0
    max_batch_observed: int = 0
    queue_peak: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "submitted": self.submitted,
            "rejected_queue_full": self.rejected_queue_full,
            "rejected_draining": self.rejected_draining,
            "flushes": self.flushes,
            "flushed_tasks": self.flushed_tasks,
            "coalesced": self.coalesced,
            "max_batch_observed": self.max_batch_observed,
            "queue_peak": self.queue_peak,
        }


class MicroBatcher:
    """Admit, linger, flush.

    ``flush_fn(tasks)`` is called *in a worker thread* with one task
    per unique signature and must return ``{signature: result}``; the
    result object is fanned out verbatim to every coalesced waiter.
    Flushes are strictly sequential — at most one engine invocation
    is in flight, so the admission buffer is the only queue and its
    depth is an honest backlog gauge.
    """

    def __init__(
        self,
        flush_fn,
        *,
        max_batch: int = 16,
        linger: float = 0.002,
        queue_limit: int = 128,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self._flush_fn = flush_fn
        self.max_batch = max_batch
        self.linger = linger
        self.queue_limit = queue_limit
        self.stats = BatcherStats()
        #: (task, waiter future, enqueue time) per admitted request.
        self._pending: list[tuple[BatchTask, asyncio.Future, float]] = []
        self._wakeup = asyncio.Event()
        self._closed = False
        self._task: asyncio.Task | None = None
        self._queue_gauge = metrics.gauge(
            "repro_queue_depth", "Admission-queue backlog (requests)."
        )
        self._shed = metrics.counter(
            "repro_shed_total",
            "Requests shed at admission, by reason.",
            labels=("reason",),
        )
        self._flush_size = metrics.histogram(
            "repro_flush_size",
            "Requests drained per micro-batch flush.",
            buckets=SIZE_BUCKETS,
        )
        self._flush_linger = metrics.histogram(
            "repro_flush_linger_seconds",
            "Oldest request's wait between admission and flush start.",
            buckets=(0.0005, 0.001, 0.002, 0.005, 0.01, 0.025, 0.05, 0.1),
        )
        self._flush_seconds = metrics.histogram(
            "repro_flush_seconds", "Engine time per micro-batch flush."
        )

    # -- admission -------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        return len(self._pending)

    def submit(self, task: BatchTask) -> asyncio.Future:
        """Admit one task; the future resolves to its flush result."""
        if self._closed:
            self.stats.rejected_draining += 1
            self._shed.inc(reason="draining")
            raise Draining("service is draining")
        if len(self._pending) >= self.queue_limit:
            self.stats.rejected_queue_full += 1
            self._shed.inc(reason="queue_full")
            raise QueueFull(
                f"admission queue is full ({self.queue_limit} pending)"
            )
        loop = asyncio.get_running_loop()
        if self._task is None:
            self._task = loop.create_task(self._flush_loop())
        future: asyncio.Future = loop.create_future()
        self._pending.append((task, future, loop.time()))
        self.stats.submitted += 1
        self.stats.queue_peak = max(self.stats.queue_peak, len(self._pending))
        self._queue_gauge.set(len(self._pending))
        self._wakeup.set()
        return future

    # -- the flusher -----------------------------------------------------

    async def _flush_loop(self) -> None:
        while True:
            if not self._pending:
                if self._closed:
                    return
                self._wakeup.clear()
                await self._wakeup.wait()
                continue
            if len(self._pending) < self.max_batch and not self._closed:
                # Linger briefly: give concurrent requests a chance to
                # join this flush.  A full batch wakes us early.
                deadline = asyncio.get_running_loop().time() + self.linger
                while (
                    len(self._pending) < self.max_batch
                    and not self._closed
                ):
                    remaining = deadline - asyncio.get_running_loop().time()
                    if remaining <= 0:
                        break
                    self._wakeup.clear()
                    try:
                        await asyncio.wait_for(
                            self._wakeup.wait(), timeout=remaining
                        )
                    except (asyncio.TimeoutError, TimeoutError):
                        break
            batch = self._pending[: self.max_batch]
            del self._pending[: len(batch)]
            self._queue_gauge.set(len(self._pending))
            await self._run_flush(batch)

    async def _run_flush(
        self, batch: list[tuple[BatchTask, asyncio.Future, float]]
    ) -> None:
        unique: dict[str, BatchTask] = {}
        for task, _future, _enqueued in batch:
            unique.setdefault(task.signature, task)
        self.stats.flushes += 1
        self.stats.flushed_tasks += len(batch)
        self.stats.coalesced += len(batch) - len(unique)
        self.stats.max_batch_observed = max(
            self.stats.max_batch_observed, len(batch)
        )
        loop = asyncio.get_running_loop()
        started = loop.time()
        self._flush_size.observe(len(batch))
        self._flush_linger.observe(
            max(0.0, started - min(enq for _t, _f, enq in batch))
        )
        try:
            results = await loop.run_in_executor(
                None, self._flush_fn, list(unique.values())
            )
        except Exception as exc:
            self._flush_seconds.observe(loop.time() - started)
            for _task, future, _enqueued in batch:
                if not future.done():
                    future.set_exception(exc)
                    # A waiter may have timed out already; make sure an
                    # unobserved exception never warns at GC time.
                    future.exception()
            return
        self._flush_seconds.observe(loop.time() - started)
        for task, future, _enqueued in batch:
            if future.done():
                continue  # the waiter timed out and went away
            if task.signature in results:
                future.set_result(results[task.signature])
            else:
                future.set_exception(
                    RuntimeError(f"flush lost task {task.signature[:16]}...")
                )
                future.exception()

    # -- shutdown --------------------------------------------------------

    async def close(self) -> None:
        """Drain: flush everything pending, then stop the flusher."""
        self._closed = True
        self._wakeup.set()
        if self._task is not None:
            await self._task
            self._task = None
