"""Closure compilation of minifort expressions.

Each AST expression lowers, once, to a Python closure ``f(env) ->
value`` over the flat environment list of its procedure.  The closures
replicate the reference interpreter's semantics *exactly* — evaluation
order, type-check order, error messages, short-circuiting, truncating
division and the Fortran power rules — so a threaded run is
bit-identical to a reference run, just without the per-step
``isinstance`` dispatch of the tree walker.

Specializations applied at compile time (all semantics-preserving):

* PARAMETER constants and literals fold to constant closures;
* scalar reads become a single ``env[slot].value`` load;
* binary operators whose operands are both simple (slot or constant)
  collapse into one closure instead of three;
* 1-D references to non-parameter arrays inline the bounds check and
  the flat-list load (parameter arrays keep the generic path — their
  runtime shape belongs to the caller);
* intrinsics with no runtime state dispatch straight to their
  implementation, skipping the name-matching chain.
"""

from __future__ import annotations

import math

from repro.errors import InterpreterError
from repro.lang import ast
from repro.lang.symbols import INTRINSICS
from repro.interp.intrinsics import _fortran_mod, _sign
from repro.interp.machine import _fortran_pow, _trunc_div
from repro.interp.values import FortranArray


class LoweringError(Exception):
    """The threaded backend cannot lower this program; fall back."""


def compile_expr(expr: ast.Expr, ctx):
    """Lower one expression to a closure over the procedure env."""
    if isinstance(expr, (ast.IntLit, ast.RealLit, ast.LogicalLit, ast.StringLit)):
        value = expr.value
        return lambda env: value
    if isinstance(expr, ast.VarRef):
        if expr.name in ctx.constants:
            value = ctx.constants[expr.name]
            return lambda env: value
        slot = ctx.slot(expr.name)

        def read(env, _s=slot):
            return env[_s].value

        return read
    if isinstance(expr, ast.ArrayRef):
        return compile_element_get(expr.name, expr.indices, expr.line, ctx)
    if isinstance(expr, ast.FuncCall):
        return _compile_call(expr, ctx)
    if isinstance(expr, ast.Unary):
        return _compile_unary(expr, ctx)
    if isinstance(expr, ast.Binary):
        return _compile_binary(expr, ctx)
    raise LoweringError(f"cannot lower expression {expr!r}")


def _operand_spec(expr: ast.Expr, ctx):
    """("const", v) / ("slot", i) for trivially-readable operands."""
    if isinstance(expr, (ast.IntLit, ast.RealLit)):
        return ("const", expr.value)
    if isinstance(expr, ast.VarRef):
        if expr.name in ctx.constants:
            return ("const", ctx.constants[expr.name])
        info = ctx.table.lookup(expr.name)
        if info is not None and not info.is_array:
            return ("slot", ctx.slot(expr.name))
    return None


# Simple operators with no extra runtime checks: both operand orders
# and types behave exactly like the reference's ``left <op> right``.
def _mk_add(a, b):
    return a + b


def _mk_sub(a, b):
    return a - b


def _mk_mul(a, b):
    return a * b


def _mk_lt(a, b):
    return a < b


def _mk_le(a, b):
    return a <= b


def _mk_gt(a, b):
    return a > b


def _mk_ge(a, b):
    return a >= b


def _mk_eq(a, b):
    return a == b


def _mk_ne(a, b):
    return a != b


_SIMPLE_BINOPS = {
    ast.BinOp.ADD: _mk_add,
    ast.BinOp.SUB: _mk_sub,
    ast.BinOp.MUL: _mk_mul,
    ast.BinOp.LT: _mk_lt,
    ast.BinOp.LE: _mk_le,
    ast.BinOp.GT: _mk_gt,
    ast.BinOp.GE: _mk_ge,
    ast.BinOp.EQ: _mk_eq,
    ast.BinOp.NE: _mk_ne,
}


def _compile_binary(expr: ast.Binary, ctx):
    op = expr.op
    line = expr.line
    if op is ast.BinOp.AND:
        left_f = compile_expr(expr.left, ctx)
        right_f = compile_expr(expr.right, ctx)

        def f_and(env, _l=left_f, _r=right_f, _line=line):
            left = _l(env)
            if not isinstance(left, bool):
                raise InterpreterError(".AND. of non-LOGICAL", _line)
            if not left:
                return False
            right = _r(env)
            if not isinstance(right, bool):
                raise InterpreterError(".AND. of non-LOGICAL", _line)
            return right

        return f_and
    if op is ast.BinOp.OR:
        left_f = compile_expr(expr.left, ctx)
        right_f = compile_expr(expr.right, ctx)

        def f_or(env, _l=left_f, _r=right_f, _line=line):
            left = _l(env)
            if not isinstance(left, bool):
                raise InterpreterError(".OR. of non-LOGICAL", _line)
            if left:
                return True
            right = _r(env)
            if not isinstance(right, bool):
                raise InterpreterError(".OR. of non-LOGICAL", _line)
            return right

        return f_or

    fn = _SIMPLE_BINOPS.get(op)
    if fn is not None:
        lspec = _operand_spec(expr.left, ctx)
        rspec = _operand_spec(expr.right, ctx)
        if lspec is not None and rspec is not None:
            lk, lv = lspec
            rk, rv = rspec
            if lk == "slot" and rk == "slot":
                return lambda env, _f=fn, _i=lv, _j=rv: _f(
                    env[_i].value, env[_j].value
                )
            if lk == "slot":
                return lambda env, _f=fn, _i=lv, _c=rv: _f(env[_i].value, _c)
            if rk == "slot":
                return lambda env, _f=fn, _c=lv, _j=rv: _f(_c, env[_j].value)
            # Two constants: fold; these operators never raise.
            value = fn(lv, rv)
            return lambda env, _v=value: _v
        left_f = compile_expr(expr.left, ctx)
        right_f = compile_expr(expr.right, ctx)
        return lambda env, _f=fn, _l=left_f, _r=right_f: _f(_l(env), _r(env))

    left_f = compile_expr(expr.left, ctx)
    right_f = compile_expr(expr.right, ctx)
    if op is ast.BinOp.DIV:

        def f_div(env, _l=left_f, _r=right_f, _line=line):
            left = _l(env)
            right = _r(env)
            if right == 0:
                raise InterpreterError("division by zero", _line)
            if isinstance(left, int) and isinstance(right, int):
                return _trunc_div(left, right)
            return left / right

        return f_div
    if op is ast.BinOp.POW:
        return lambda env, _l=left_f, _r=right_f, _line=line: _fortran_pow(
            _l(env), _r(env), _line
        )
    raise LoweringError(f"cannot lower operator {op}")


def _compile_unary(expr: ast.Unary, ctx):
    operand = compile_expr(expr.operand, ctx)
    if expr.op is ast.UnOp.NEG:
        return lambda env, _o=operand: -_o(env)
    if expr.op is ast.UnOp.POS:
        return operand
    line = expr.line

    def f_not(env, _o=operand, _line=line):
        value = _o(env)
        if not isinstance(value, bool):
            raise InterpreterError(".NOT. of non-LOGICAL", _line)
        return not value

    return f_not


def compile_element_get(name, index_exprs, line, ctx):
    """Lower an array-element read (either AST spelling)."""
    slot = ctx.slot(name)
    info = ctx.table.lookup(name)
    idx_fns = tuple(compile_expr(i, ctx) for i in index_exprs)
    if (
        info is not None
        and info.is_array
        and not info.is_param
        and len(idx_fns) == len(info.dims) == 1
    ):
        # A non-parameter array's shape is static: inline the bounds
        # check and the flat load.  Parameter arrays take the generic
        # path — at run time they are whatever the caller passed.
        dim = info.dims[0]
        ix = idx_fns[0]

        def get1(env, _s=slot, _ix=ix, _d=dim, _n=name, _line=line):
            k = int(_ix(env))
            if 1 <= k <= _d:
                return env[_s].data[k - 1]
            raise InterpreterError(
                f"{_n}: subscript {k} out of bounds 1..{_d}", _line
            )

        return get1

    def getn(env, _s=slot, _fns=idx_fns, _n=name, _line=line):
        array = env[_s]
        if not isinstance(array, FortranArray):
            raise InterpreterError(f"{_n} is not an array", _line)
        indices = tuple(int(f(env)) for f in _fns)
        return array.get(indices, _line)

    return getn


def _compile_call(expr: ast.FuncCall, ctx):
    # The checker rewrites declared-array ``A(I)`` into ArrayRef, but
    # mirror the reference's runtime test (array beats intrinsic).
    info = ctx.table.lookup(expr.name)
    if info is not None and info.is_array:
        return compile_element_get(expr.name, expr.args, expr.line, ctx)
    if expr.name in INTRINSICS and expr.name not in ctx.procedures:
        return _compile_intrinsic(expr, ctx)
    return ctx.build_function_call(expr)


def _compile_intrinsic(expr: ast.FuncCall, ctx):
    name = expr.name
    line = expr.line
    fns = tuple(compile_expr(a, ctx) for a in expr.args)
    if name == "MOD" and len(fns) == 2:
        a, b = fns
        return lambda env, _a=a, _b=b: _fortran_mod(_a(env), _b(env))
    if name == "MIN":
        return lambda env, _fns=fns: min([f(env) for f in _fns])
    if name == "MAX":
        return lambda env, _fns=fns: max([f(env) for f in _fns])
    if name == "ABS" and len(fns) == 1:
        a = fns[0]
        return lambda env, _a=a: abs(_a(env))
    if name == "SIGN" and len(fns) == 2:
        a, b = fns
        return lambda env, _a=a, _b=b: _sign(_a(env), _b(env))
    if name == "SQRT" and len(fns) == 1:
        a = fns[0]

        def f_sqrt(env, _a=a, _line=line):
            value = _a(env)
            if value < 0:
                raise InterpreterError("SQRT of negative value", _line)
            return math.sqrt(value)

        return f_sqrt
    if name == "INT" and len(fns) == 1:
        a = fns[0]
        return lambda env, _a=a: int(_a(env))
    if name in ("REAL", "FLOAT") and len(fns) == 1:
        a = fns[0]
        return lambda env, _a=a: float(_a(env))
    # Stateful (IRAND/RAND/INPUT) and uncommon intrinsics go through
    # the per-run IntrinsicRuntime, exactly like the reference.
    box = ctx.intrinsics_box

    def f_call(env, _box=box, _fns=fns, _n=name, _line=line):
        args = [f(env) for f in _fns]
        return _box[0].call(_n, args, _line)

    return f_call
