"""The threaded execution backend: trampoline + compiled op tables.

A :class:`ThreadedBackend` owns one program's lowered form.  Lowering
happens once (lazily, under a ``compile.lower`` span); every
subsequent run resets flat count arrays in place and drives the
trampoline

    while idx >= 0:
        idx = ops[idx](env)

over the compiled closures.  Per counter plan, a second op table is
compiled (and cached by content fingerprint) with the plan's bumps
fused into exactly the instrumented ops, so profiled runs pay a list
index and an in-place add per counter event — nothing else.

The backend produces :class:`RunResult` objects bit-identical to the
reference interpreter's: same counts, same float accumulation order
for ``total_cost``/``counter_cost``, same error messages from the same
program states.  It is deliberately *not* reentrant (compiled closures
write backend-owned boxes), matching the batch engine's and service's
one-run-at-a-time execution model.
"""

from __future__ import annotations

import sys
import time

from repro.costs.estimate import CostEstimator
from repro.errors import InterpreterError, InterpreterLimitError
from repro.fastexec.exprs import LoweringError
from repro.fastexec.lower import (
    ThreadedProc,
    build_ops,
    build_path_ops,
    compile_procedure,
    make_threaded_proc,
)
from repro.fastexec.plans import lower_counter_plan, plan_fingerprint
from repro.interp.intrinsics import IntrinsicRuntime
from repro.interp.machine import RunResult, _ProgramHalt
from repro.interp.values import Cell, ElementRef, FortranArray
from repro.obs import metrics, span
from repro.paths.numbering import path_plan_fingerprint
from repro.paths.runtime import PathExecutor
from repro.profiling.runtime import PlanExecutor


class UnsupportedHooksError(LoweringError):
    """The hooks object needs the reference interpreter's event stream."""


class _LoweredPlan:
    """One counter plan's compiled form: flat counts + fused op tables."""

    __slots__ = ("counts", "tables")

    def __init__(self, counts, tables):
        self.counts = counts
        self.tables = tables


class _LoweredPathPlan:
    """One path plan's compiled form: sparse count dicts + op tables."""

    __slots__ = ("counts", "tables")

    def __init__(self, counts, tables):
        self.counts = counts
        self.tables = tables


class ThreadedBackend:
    """Compiled execution engine for one checked program."""

    def __init__(self, checked, cfgs):
        self.checked = checked
        self.cfgs = cfgs
        self._reset_compiled()

    def _reset_compiled(self) -> None:
        self._procs: dict[str, ThreadedProc] | None = None
        self._proc_list: list[ThreadedProc] = []
        self._plan_tables: dict[tuple, _LoweredPlan] = {}
        self._path_tables: dict[tuple, _LoweredPathPlan] = {}
        self._costs_cache: dict[int, tuple] = {}
        self._lower_error: LoweringError | None = None
        # Mutable run-state boxes, captured by the compiled closures.
        self._steps = [0]
        self._outputs: list[str] = []
        self._intr = [None]
        self._cost = [0.0]
        self._ops_box = [0]
        self._ccost_box = [0.0]
        self._cupd_box = [0.0]
        # Path-mode state: the Ball–Larus register of the *current*
        # frame plus the marker of the last call-bearing node executed
        # in it; _invoke saves/restores both around each call, so the
        # save-stack entries are exactly the suspended frames.
        self._preg_box = [0]
        self._pmark_box: list = [None]
        self._path_stack: list[tuple] = []
        self._path_mode = False
        self._depth = 0
        self._max_steps = 0
        self._max_depth = 0

    # -- pickling: ship the shell, re-lower on the other side ----------

    def __getstate__(self):
        # Closures don't pickle; the sources of truth (checked program
        # + CFGs) do, and they are shared with the owning
        # CompiledProgram via the pickle memo, so the artifact cache
        # stores the backend almost for free.
        return {"checked": self.checked, "cfgs": self.cfgs}

    def __setstate__(self, state):
        self.checked = state["checked"]
        self.cfgs = state["cfgs"]
        self._reset_compiled()

    # -- lowering ------------------------------------------------------

    def ensure_lowered(self) -> None:
        """Compile the program if not done yet; raises LoweringError
        (memoized) when the program cannot be lowered faithfully."""
        if self._procs is not None:
            return
        if self._lower_error is not None:
            raise self._lower_error
        started = time.perf_counter()
        try:
            with span("compile.lower") as lower_span:
                procs: dict[str, ThreadedProc] = {}
                for index, (name, cfg) in enumerate(self.cfgs.items()):
                    procs[name] = make_threaded_proc(
                        self.checked, name, cfg, index
                    )
                # Layouts for every procedure must exist before any
                # call site compiles, so this is a second pass.
                self._procs = procs
                self._proc_list = list(procs.values())
                for tp in self._proc_list:
                    compile_procedure(self, tp)
                lower_span.set_attr(
                    procedures=len(procs),
                    nodes=sum(len(tp.node_ids) for tp in self._proc_list),
                )
        except LoweringError as exc:
            self._procs = None
            self._proc_list = []
            self._lower_error = exc
            metrics.counter(
                "repro_backend_lowerings_total",
                "Threaded-backend compile passes.",
                labels=("outcome",),
            ).inc(outcome="fallback")
            raise
        metrics.counter(
            "repro_backend_lowerings_total",
            "Threaded-backend compile passes.",
            labels=("outcome",),
        ).inc(outcome="ok")
        metrics.histogram(
            "repro_backend_lower_seconds",
            "Threaded-backend lowering latency in seconds.",
        ).observe(time.perf_counter() - started)

    def _lowered_plan(self, plan) -> _LoweredPlan:
        fingerprint = plan_fingerprint(plan)
        lowered = self._plan_tables.get(fingerprint)
        if lowered is None:
            counts = {
                name: [0.0] * p.id_space for name, p in plan.plans.items()
            }
            tables = {}
            for name, tp in self._procs.items():
                proc_plan = plan.plans.get(name)
                if proc_plan is None:
                    tables[name] = tp.plain_ops
                else:
                    tables[name] = build_ops(
                        tp, self, lower_counter_plan(proc_plan), counts[name]
                    )
            lowered = _LoweredPlan(counts, tables)
            self._plan_tables[fingerprint] = lowered
        return lowered

    def _lowered_path_plan(self, plan) -> _LoweredPathPlan:
        fingerprint = path_plan_fingerprint(plan)
        lowered = self._path_tables.get(fingerprint)
        if lowered is None:
            counts: dict[str, dict] = {name: {} for name in plan.plans}
            tables = {}
            for name, tp in self._procs.items():
                proc_plan = plan.plans.get(name)
                if proc_plan is None:
                    tables[name] = tp.plain_ops
                else:
                    tables[name] = build_path_ops(
                        tp, self, proc_plan, counts[name]
                    )
            lowered = _LoweredPathPlan(counts, tables)
            self._path_tables[fingerprint] = lowered
        return lowered

    def _costs_for(self, model):
        entry = self._costs_cache.get(id(model))
        # Keeping a strong reference to the model inside the cache
        # entry keeps id(model) stable for its lifetime.
        if entry is None or entry[0] is not model:
            estimator = CostEstimator(self.checked, model)
            costs = {}
            for name, cfg in self.cfgs.items():
                per_node = estimator.cfg_costs(cfg, name)
                tp = self._procs[name]
                costs[name] = [per_node[nid].local for nid in tp.node_ids]
            entry = (model, costs)
            self._costs_cache[id(model)] = entry
        return entry[1]

    # -- execution -----------------------------------------------------

    def run(
        self,
        *,
        model=None,
        hooks=None,
        seed: int = 0,
        inputs: tuple[float, ...] = (),
        max_steps: int = 10_000_000,
        max_depth: int = 200,
        record_counts: bool = True,
    ) -> RunResult:
        """Execute the main PROGRAM unit once (reference-identical)."""
        executor: PlanExecutor | None = None
        path_executor: PathExecutor | None = None
        if hooks is None:
            pass
        elif type(hooks) is PlanExecutor:
            # Exact type: a subclass could override the hook methods,
            # which fused counter bumps would silently not replicate.
            executor = hooks
        elif type(hooks) is PathExecutor:
            path_executor = hooks
        else:
            raise UnsupportedHooksError(
                f"threaded backend only supports PlanExecutor or "
                f"PathExecutor hooks, not {type(hooks).__name__}"
            )
        self.ensure_lowered()
        lowered = self._lowered_plan(executor.plan) if executor else None
        plowered = (
            self._lowered_path_plan(path_executor.plan)
            if path_executor
            else None
        )
        costs = self._costs_for(model) if model is not None else None

        for tp in self._proc_list:
            if lowered:
                tp.active_ops = lowered.tables[tp.name]
            elif plowered:
                tp.active_ops = plowered.tables[tp.name]
            else:
                tp.active_ops = tp.plain_ops
            tp.active_costs = costs[tp.name] if costs else None
            tp.call_box[0] = 0
            tp.node_hits[:] = [0] * len(tp.node_hits)
            tp.edge_hits[:] = [0] * len(tp.edge_hits)
        if lowered:
            for arr in lowered.counts.values():
                arr[:] = [0.0] * len(arr)
        if plowered:
            for mapping in plowered.counts.values():
                mapping.clear()
        self._preg_box[0] = 0
        self._pmark_box[0] = None
        del self._path_stack[:]
        self._path_mode = path_executor is not None
        self._steps[0] = 0
        del self._outputs[:]
        self._cost[0] = 0.0
        self._ops_box[0] = 0
        self._ccost_box[0] = 0.0
        self._cupd_box[0] = model.counter_update if model is not None else 0.0
        self._intr[0] = IntrinsicRuntime(seed=seed, inputs=inputs)
        self._depth = 0
        self._max_steps = max_steps
        self._max_depth = max_depth

        main_tp = self._procs[self.checked.unit.main.name]
        env = self._make_main_env(main_tp)
        halted = "end"
        # Each compiled call frame costs a bounded number of Python
        # frames; make sure our own max_depth limit fires first.
        needed = max_depth * 40 + 200
        old_limit = sys.getrecursionlimit()
        if old_limit < needed:
            sys.setrecursionlimit(needed)
        try:
            try:
                self._exec(main_tp, env)
            except _ProgramHalt:
                halted = "stop"
                if path_executor is not None:
                    # Frames suspended in a call when STOP fired are on
                    # the save-stack (outermost first); the innermost
                    # frame's register was flushed by the STOP op.
                    for mark, register in reversed(self._path_stack):
                        path_executor.partials.append(
                            (mark[0], mark[1], register)
                        )
        finally:
            if old_limit < needed:
                sys.setrecursionlimit(old_limit)
            # The reference updates executor counters live, so a run
            # that raises must still leave the events recorded so far.
            # Counts are exact small integers in float, so adding the
            # per-run total equals the reference's per-event adds.
            if executor is not None and lowered is not None:
                for name, arr in lowered.counts.items():
                    dest = executor.counters[name]
                    for cid, value in enumerate(arr):
                        if value:
                            dest[cid] += value
                executor.updates += self._ops_box[0]
            if path_executor is not None and plowered is not None:
                for name, src in plowered.counts.items():
                    dest = path_executor.path_counts[name]
                    for pid, value in src.items():
                        dest[pid] = dest.get(pid, 0.0) + value
                path_executor.updates += self._ops_box[0]
                del self._path_stack[:]
                self._path_mode = False

        result = RunResult()
        result.halted = halted
        result.steps = self._steps[0]
        result.outputs = list(self._outputs)
        result.total_cost = self._cost[0]
        result.counter_ops = self._ops_box[0]
        result.counter_cost = self._ccost_box[0]
        for tp in self._proc_list:
            if record_counts:
                result.node_counts[tp.name] = {
                    nid: hits
                    for nid, hits in zip(tp.node_ids, tp.node_hits)
                    if hits
                }
                result.edge_counts[tp.name] = {
                    key: hits
                    for key, hits in zip(tp.edge_keys, tp.edge_hits)
                    if hits
                }
            else:
                result.node_counts[tp.name] = {}
                result.edge_counts[tp.name] = {}
            result.call_counts[tp.name] = tp.call_box[0]
        for vname in main_tp.names:
            value = env[main_tp.layout[vname]]
            if isinstance(value, (Cell, ElementRef)):
                result.main_vars[vname] = value.value
        return result

    def _make_main_env(self, tp: ThreadedProc) -> list:
        env: list = [None] * tp.env_size
        for slot, type_ in tp.init_cells:
            env[slot] = Cell(type_)
        for slot, vname, type_, dims in tp.init_arrays:
            env[slot] = FortranArray(vname, type_, dims)
        return env

    def _exec(self, tp: ThreadedProc, env: list) -> None:
        tp.call_box[0] += 1
        ops = tp.active_ops
        hits = tp.node_hits
        costs = tp.active_costs
        steps = self._steps
        max_steps = self._max_steps
        idx = tp.entry_idx
        if costs is None:
            while idx >= 0:
                n = steps[0] + 1
                if n > max_steps:
                    raise InterpreterLimitError(
                        f"exceeded {max_steps} node executions"
                    )
                steps[0] = n
                hits[idx] += 1
                idx = ops[idx](env)
        else:
            cost = self._cost
            while idx >= 0:
                n = steps[0] + 1
                if n > max_steps:
                    raise InterpreterLimitError(
                        f"exceeded {max_steps} node executions"
                    )
                steps[0] = n
                hits[idx] += 1
                cost[0] += costs[idx]
                idx = ops[idx](env)

    def _invoke(self, callee_index: int, binders: tuple, env: list):
        """Run one compiled procedure call (closure-called, hot)."""
        tp = self._proc_list[callee_index]
        if self._depth >= self._max_depth:
            raise InterpreterError(
                f"call depth limit reached invoking {tp.name}"
            )
        callee_env: list = [None] * tp.env_size
        for binder in binders:
            binder(env, callee_env)
        for slot, type_ in tp.init_cells:
            callee_env[slot] = Cell(type_)
        for slot, vname, type_, dims in tp.init_arrays:
            callee_env[slot] = FortranArray(vname, type_, dims)
        if self._path_mode:
            # Suspend the caller's path state; entries left on the
            # stack by a _ProgramHalt unwind are the STOP partials.
            preg = self._preg_box
            pmark = self._pmark_box
            stack = self._path_stack
            stack.append((pmark[0], preg[0]))
            preg[0] = 0
            self._depth += 1
            try:
                self._exec(tp, callee_env)
            finally:
                self._depth -= 1
            mark, register = stack.pop()
            pmark[0] = mark
            preg[0] = register
        else:
            self._depth += 1
            try:
                self._exec(tp, callee_env)
            finally:
                self._depth -= 1
        if tp.ret_slot is not None:
            return callee_env[tp.ret_slot].value
        return None


def backend_for(program) -> ThreadedBackend:
    """The (cached) threaded backend of a CompiledProgram.

    The backend rides along as a ``_threaded`` attribute so the
    content-hash artifact cache persists its shell with the program
    (closures are rebuilt lazily per process; see ``__getstate__``).
    """
    backend = getattr(program, "_threaded", None)
    if backend is None or backend.checked is not program.checked:
        backend = ThreadedBackend(program.checked, program.cfgs)
        program._threaded = backend
    return backend
