"""Counter-plan lowering: dense slot tables for the threaded backend.

A :class:`~repro.profiling.placement.CounterPlan` already allocates
counter ids densely in ``[0, id_space)``; the threaded backend keeps
the identity ``slot == counter id`` so its flat ``counts`` list lines
up one-to-one with :meth:`PlanExecutor.counter_values` and
reconstruction sees byte-identical inputs either way.  This module
derives the per-procedure slot tables from a plan, fingerprints plans
so compiled op tables can be cached per backend, and validates the
slot tables (the material behind the checker's REP4xx diagnostics).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.profiling.placement import CounterPlan, ProgramPlan


@dataclass(frozen=True)
class SlotSite:
    """One runtime update site writing a counter slot."""

    kind: str  # "node" | "edge" | "batch"
    where: tuple  # (node,) for node/batch sites, (src, label) for edges


@dataclass
class ProcSlotTable:
    """The lowered slot layout of one procedure's counter plan."""

    proc: str
    id_space: int
    #: node id -> slot bumped by 1.0 when the node executes.
    node_slots: dict[int, int] = field(default_factory=dict)
    #: (src, label) -> slot bumped by 1.0 when the edge is taken.
    edge_slots: dict[tuple[int, str], int] = field(default_factory=dict)
    #: DO_INIT node -> ((slot, offset), ...) batched trip-count adds.
    batch_slots: dict[int, tuple[tuple[int, int], ...]] = field(
        default_factory=dict
    )

    def sites(self) -> dict[int, list[SlotSite]]:
        """slot -> every update site that writes it."""
        by_slot: dict[int, list[SlotSite]] = {}
        for node, slot in self.node_slots.items():
            by_slot.setdefault(slot, []).append(SlotSite("node", (node,)))
        for key, slot in self.edge_slots.items():
            by_slot.setdefault(slot, []).append(SlotSite("edge", key))
        for node, entries in self.batch_slots.items():
            for slot, _offset in entries:
                by_slot.setdefault(slot, []).append(SlotSite("batch", (node,)))
        return by_slot


def lower_counter_plan(plan: CounterPlan) -> ProcSlotTable:
    """The slot table of one procedure's plan (slot == counter id)."""
    return ProcSlotTable(
        proc=plan.proc,
        id_space=plan.id_space,
        node_slots=dict(plan.node_counters),
        edge_slots=dict(plan.edge_counters),
        batch_slots={
            node: tuple(entries)
            for node, entries in plan.batch_counters.items()
        },
    )


def plan_slot_tables(plan: ProgramPlan) -> dict[str, ProcSlotTable]:
    """Slot tables for every procedure of a program plan."""
    return {name: lower_counter_plan(p) for name, p in plan.plans.items()}


@dataclass(frozen=True)
class SlotFault:
    """One slot-table defect found by :func:`validate_slot_table`."""

    kind: str  # "orphan" | "unmapped" | "duplicate" | "range"
    slot: int
    detail: str


def validate_slot_table(
    plan: CounterPlan, table: ProcSlotTable | None = None
) -> list[SlotFault]:
    """Check a lowered slot table against its plan.

    Sound lowerings satisfy, for every *live* counter (one with an
    entry in ``counter_measures``):

    * exactly one update site writes its slot (duplicates would
      double-count, zero sites would silently reconstruct from 0);
    * every written slot is live (an orphan write corrupts nothing the
      plan measures, but means the registries disagree);
    * every slot index lies in the dense ``[0, id_space)`` range the
      runtime allocates.
    """
    if table is None:
        table = lower_counter_plan(plan)
    faults: list[SlotFault] = []
    live = set(plan.counter_measures)
    sites = table.sites()
    for slot, where in sorted(sites.items()):
        if not 0 <= slot < table.id_space:
            faults.append(
                SlotFault(
                    "range",
                    slot,
                    f"slot {slot} outside id space [0, {table.id_space})",
                )
            )
        if slot not in live:
            faults.append(
                SlotFault(
                    "orphan",
                    slot,
                    f"slot {slot} is written by {len(where)} site(s) but "
                    "backs no measured counter",
                )
            )
        elif len(where) > 1:
            places = ", ".join(
                f"{site.kind}{site.where}" for site in where
            )
            faults.append(
                SlotFault(
                    "duplicate",
                    slot,
                    f"slot {slot} is written by {len(where)} sites: {places}",
                )
            )
    for slot in sorted(live):
        if slot not in sites:
            measure = plan.counter_measures[slot]
            faults.append(
                SlotFault(
                    "unmapped",
                    slot,
                    f"counter {slot} measures {measure} but no update "
                    "site writes its slot",
                )
            )
    return faults


def plan_fingerprint(plan: ProgramPlan) -> tuple:
    """A content key for caching compiled op tables per plan.

    Two plans with equal fingerprints prescribe identical runtime
    counter updates, so a backend may reuse one lowered op table for
    both (ablation builds can share a ``kind`` while differing in
    placement, hence content — not kind — is the key).

    The fingerprint is memoized on the plan object — backends look it
    up on every profiled run, and plans are immutable once built.
    """
    cached = getattr(plan, "_fingerprint_cache", None)
    if cached is not None:
        return cached
    per_proc = []
    for name in sorted(plan.plans):
        p = plan.plans[name]
        per_proc.append(
            (
                name,
                p.id_space,
                tuple(sorted(p.node_counters.items())),
                tuple(sorted(p.edge_counters.items())),
                tuple(
                    (node, tuple(entries))
                    for node, entries in sorted(p.batch_counters.items())
                ),
            )
        )
    fingerprint = (plan.kind, tuple(per_proc))
    try:
        plan._fingerprint_cache = fingerprint
    except AttributeError:
        pass  # slotted or frozen plan: recompute each call
    return fingerprint
