"""Direct-threaded execution backend (see docs/threaded_backend.md).

Compiles checked CFGs into arrays of specialized closures driven by an
index trampoline, with counter plans fused in as flat-array bumps.
Produces :class:`repro.interp.RunResult` objects bit-identical to the
reference interpreter's, several times faster.
"""

from repro.fastexec.backend import (
    ThreadedBackend,
    UnsupportedHooksError,
    backend_for,
)
from repro.fastexec.exprs import LoweringError
from repro.fastexec.plans import (
    ProcSlotTable,
    SlotFault,
    lower_counter_plan,
    plan_fingerprint,
    plan_slot_tables,
    validate_slot_table,
)

__all__ = [
    "LoweringError",
    "ProcSlotTable",
    "SlotFault",
    "ThreadedBackend",
    "UnsupportedHooksError",
    "backend_for",
    "lower_counter_plan",
    "plan_fingerprint",
    "plan_slot_tables",
    "validate_slot_table",
]
