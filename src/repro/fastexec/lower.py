"""Procedure lowering: checked CFGs to arrays of threaded closures.

Each CFG node compiles, once, to an op closure ``op(env) -> int``
returning the *dense index* of the successor node (or ``-1`` at the
exit).  The trampoline in :mod:`repro.fastexec.backend` then runs

    while idx >= 0:
        idx = ops[idx](env)

with step/hit/cost bookkeeping hoisted out of the ops.  Everything the
reference interpreter resolves per step — statement kind, operand
cells, successor edges, counter hooks — is resolved here, at compile
time:

* the environment is a flat list (parameters first, in declaration
  order, then locals, then one hidden ``[trip, step]`` slot per DO
  loop), so variable access is ``env[slot]``;
* successor edges become dense indices baked into each op;
* counter-plan updates become in-place ``counts[slot] += 1`` bumps
  composed into exactly the ops whose node/edge the plan instruments.

Event order matches the reference trampoline exactly: statement action
(which may raise), then the node-counter bump, then the edge hit and
edge-counter bump, then dispatch.  Anything this module cannot lower
faithfully raises :class:`LoweringError`, and the pipeline falls back
to the reference interpreter.
"""

from __future__ import annotations

from repro.cfg.graph import (
    LABEL_FALSE,
    LABEL_TRUE,
    LABEL_UNCOND,
    ControlFlowGraph,
    StmtKind,
    is_pseudo_label,
)
from repro.errors import InterpreterError
from repro.fastexec.exprs import LoweringError, compile_expr
from repro.fastexec.shape import build_shape
from repro.interp.machine import _ProgramHalt, _format_value, _trunc_div
from repro.interp.values import Cell, ElementRef, FortranArray, coerce
from repro.lang import ast


class ThreadedProc:
    """One procedure's compiled form plus its per-run count arrays.

    The count arrays (``node_hits``, ``edge_hits``, ``call_box``) are
    owned by the backend and reset in place between runs; the compiled
    ops never allocate on the hot path.
    """

    __slots__ = (
        "name",
        "index",
        "proc",
        "cfg",
        "layout",
        "names",
        "trip_slots",
        "env_size",
        "init_cells",
        "init_arrays",
        "ret_slot",
        "node_ids",
        "dense",
        "entry_idx",
        "edge_keys",
        "edge_index",
        "node_hits",
        "edge_hits",
        "call_box",
        "specs",
        "plain_ops",
        "active_ops",
        "active_costs",
    )


class _NodeSpec:
    """The plan-independent compiled pieces of one CFG node.

    Op tables are built per counter plan (each plan composes different
    bumps into the ops); the expensive parts — expression closures,
    binders, successor resolution — live here and are shared.
    """

    __slots__ = ("kind", "act", "tslot", "nways", "succ", "line")


class ProcContext:
    """The compile-time context :mod:`exprs` closures are built in."""

    def __init__(self, backend, tp: ThreadedProc):
        self.backend = backend
        self.table = backend.checked.tables[tp.name]
        self.constants = self.table.constants
        self.procedures = backend.checked.unit.procedures
        self.intrinsics_box = backend._intr
        self._tp = tp

    def slot(self, name: str) -> int:
        try:
            return self._tp.layout[name]
        except KeyError:
            raise LoweringError(
                f"{self._tp.name}: no static slot for variable {name}"
            ) from None

    def trip_slot(self, trip_var: str) -> int:
        try:
            return self._tp.trip_slots[trip_var]
        except KeyError:
            raise LoweringError(
                f"{self._tp.name}: no slot for trip counter {trip_var}"
            ) from None

    def build_function_call(self, expr: ast.FuncCall):
        ci, binders = build_binders(
            self, expr.name, list(expr.args), expr.line
        )
        backend = self.backend

        def call(env, _b=backend, _ci=ci, _binders=binders):
            return _b._invoke(_ci, _binders, env)

        return call


# -- phase 1: environment layout ----------------------------------------


def make_threaded_proc(checked, name: str, cfg: ControlFlowGraph, index: int):
    """Build the layout shell of one procedure (no closures yet).

    Layouts must exist for *every* procedure before any closure is
    compiled: call sites resolve callee parameter slots at compile
    time.  The static layout itself is the backend-independent
    :class:`~repro.fastexec.shape.ProcShape`, shared with the codegen
    backend.
    """
    shape = build_shape(checked, name, cfg, index)

    tp = ThreadedProc()
    tp.name = name
    tp.index = index
    tp.proc = shape.proc
    tp.cfg = cfg
    tp.layout = shape.layout
    tp.names = shape.names
    tp.trip_slots = shape.trip_slots
    tp.env_size = shape.env_size
    tp.init_cells = shape.init_cells
    tp.init_arrays = shape.init_arrays
    tp.ret_slot = shape.ret_slot
    tp.node_ids = shape.node_ids
    tp.dense = shape.dense
    tp.entry_idx = shape.entry_idx
    tp.edge_keys = shape.edge_keys
    tp.edge_index = shape.edge_index

    tp.node_hits = [0] * len(tp.node_ids)
    tp.edge_hits = [0] * len(tp.edge_keys)
    tp.call_box = [0]
    tp.specs = None
    tp.plain_ops = None
    tp.active_ops = None
    tp.active_costs = None
    return tp


# -- phase 2: node specs -------------------------------------------------


def compile_procedure(backend, tp: ThreadedProc) -> None:
    """Compile every node's plan-independent spec and the plain ops."""
    ctx = ProcContext(backend, tp)
    out_edges: dict[int, list] = {}
    for edge in tp.cfg.edges:
        if not is_pseudo_label(edge.label):
            out_edges.setdefault(edge.src, []).append(edge)
    specs = []
    for nid in tp.node_ids:
        node = tp.cfg.nodes[nid]
        specs.append(_node_spec(node, out_edges.get(nid, ()), tp, ctx))
    tp.specs = specs
    tp.plain_ops = build_ops(tp, backend, None, None)


def _node_spec(node, edges, tp: ThreadedProc, ctx: ProcContext) -> _NodeSpec:
    spec = _NodeSpec()
    spec.kind = node.kind
    spec.line = node.line
    spec.act = None
    spec.tslot = None
    spec.nways = 0
    # Reference dispatch is a dict over cfg.edges, so a duplicated
    # (src, label) resolves to the last edge there; dict insertion
    # order reproduces that here.
    spec.succ = {
        edge.label: (tp.edge_index[(edge.src, edge.label)], tp.dense[edge.dst])
        for edge in edges
    }

    kind = node.kind
    if kind in (StmtKind.ENTRY, StmtKind.NOOP, StmtKind.EXIT, StmtKind.STOP):
        pass
    elif kind is StmtKind.ASSIGN:
        spec.act = compile_assign(node.stmt, ctx)
    elif kind in (StmtKind.IF, StmtKind.WHILE_TEST, StmtKind.AIF):
        spec.act = compile_expr(node.cond, ctx)
    elif kind is StmtKind.CGOTO:
        spec.act = compile_expr(node.cond, ctx)
        spec.nways = len(node.stmt.targets)
    elif kind is StmtKind.CALL:
        stmt = node.stmt
        ci, binders = build_binders(ctx, stmt.name, list(stmt.args), node.line)
        backend = ctx.backend

        def call_act(env, _b=backend, _ci=ci, _binders=binders):
            _b._invoke(_ci, _binders, env)

        spec.act = call_act
    elif kind is StmtKind.PRINT:
        fns = tuple(compile_expr(item, ctx) for item in node.stmt.items)
        outputs = ctx.backend._outputs

        def print_act(env, _fns=fns, _out=outputs):
            _out.append(" ".join(_format_value(f(env)) for f in _fns))

        spec.act = print_act
    elif kind is StmtKind.DO_INIT:
        spec.act = _compile_do_init(node, ctx)
    elif kind is StmtKind.DO_TEST:
        spec.tslot = ctx.trip_slot(node.trip_var)
    elif kind is StmtKind.DO_INCR:
        spec.act = _compile_do_incr(node, ctx)
    else:
        raise LoweringError(f"cannot lower node kind {kind}")
    return spec


# -- statement actions ---------------------------------------------------


def compile_assign(stmt: ast.Assign, ctx: ProcContext):
    value_f = compile_expr(stmt.value, ctx)
    line = stmt.line
    target = stmt.target
    if isinstance(target, ast.VarRef):
        return _compile_scalar_assign(target.name, value_f, line, ctx)

    name = target.name
    slot = ctx.slot(name)
    info = ctx.table.lookup(name)
    idx_fns = tuple(compile_expr(i, ctx) for i in target.indices)
    if (
        info is not None
        and info.is_array
        and not info.is_param
        and len(idx_fns) == len(info.dims) == 1
    ):
        dim = info.dims[0]
        ix = idx_fns[0]
        type_ = info.type

        def store1(
            env, _v=value_f, _ix=ix, _s=slot, _d=dim, _t=type_, _n=name, _l=line
        ):
            value = _v(env)
            k = int(_ix(env))
            if not 1 <= k <= _d:
                raise InterpreterError(
                    f"{_n}: subscript {k} out of bounds 1..{_d}", _l
                )
            env[_s].data[k - 1] = coerce(value, _t, _l)

        return store1

    def storen(env, _v=value_f, _s=slot, _fns=idx_fns, _n=name, _l=line):
        value = _v(env)
        array = env[_s]
        if not isinstance(array, FortranArray):
            raise InterpreterError(f"{_n} is not an array", _l)
        indices = tuple(int(f(env)) for f in _fns)
        array.set(indices, value, _l)

    return storen


def _compile_scalar_assign(name: str, value_f, line, ctx: ProcContext):
    """``name = <value>``: inline the coercion for plain locals."""
    slot = ctx.slot(name)
    info = ctx.table.lookup(name)
    if info is not None and not info.is_param and not info.is_array:
        if info.type is ast.Type.INTEGER:

            def store_i(env, _v=value_f, _s=slot, _l=line):
                value = _v(env)
                if isinstance(value, bool):
                    raise InterpreterError(
                        "cannot store LOGICAL in INTEGER", _l
                    )
                env[_s].value = int(value)

            return store_i
        if info.type is ast.Type.REAL:

            def store_r(env, _v=value_f, _s=slot, _l=line):
                value = _v(env)
                if isinstance(value, bool):
                    raise InterpreterError("cannot store LOGICAL in REAL", _l)
                env[_s].value = float(value)

            return store_r

        def store_l(env, _v=value_f, _s=slot, _l=line):
            value = _v(env)
            if not isinstance(value, bool):
                raise InterpreterError("cannot store number in LOGICAL", _l)
            env[_s].value = value

        return store_l

    # Parameter: the cell (or ElementRef) coerces to the *caller's*
    # runtime type, so keep the generic polymorphic store.
    def store(env, _v=value_f, _s=slot, _l=line):
        env[_s].set(_v(env), _l)

    return store


def _compile_scalar_setter(name: str, line, ctx: ProcContext):
    """Like :func:`_compile_scalar_assign` but takes the value as an
    argument (for DO-variable stores)."""
    slot = ctx.slot(name)
    info = ctx.table.lookup(name)
    if info is not None and not info.is_param and not info.is_array:
        type_ = info.type

        def set_local(env, value, _s=slot, _t=type_, _l=line):
            env[_s].value = coerce(value, _t, _l)

        return set_local

    def set_ref(env, value, _s=slot, _l=line):
        env[_s].set(value, _l)

    return set_ref


def _compile_do_init(node, ctx: ProcContext):
    stmt = node.stmt
    start_f = compile_expr(stmt.start, ctx)
    stop_f = compile_expr(stmt.stop, ctx)
    step_f = compile_expr(stmt.step, ctx) if stmt.step is not None else None
    tslot = ctx.trip_slot(node.trip_var)
    line = node.line
    setter = _compile_scalar_setter(stmt.var, line, ctx)
    trunc_div = _trunc_div

    if step_f is None:

        def init1(env, _a=start_f, _b=stop_f, _set=setter, _ts=tslot):
            start = _a(env)
            stop = _b(env)
            _set(env, start)
            span = stop - start + 1
            if isinstance(span, int):
                trip = trunc_div(span, 1)
            else:
                trip = int(span)
            if trip < 0:
                trip = 0
            env[_ts] = [trip, 1]
            return trip

        return init1

    def init(env, _a=start_f, _b=stop_f, _c=step_f, _set=setter, _ts=tslot, _l=line):
        start = _a(env)
        stop = _b(env)
        step = _c(env)
        if step == 0:
            raise InterpreterError("DO loop with zero step", _l)
        _set(env, start)
        span = stop - start + step
        if isinstance(span, int) and isinstance(step, int):
            trip = trunc_div(span, step)
        else:
            trip = int(span / step)
        if trip < 0:
            trip = 0
        env[_ts] = [trip, step]
        return trip

    return init


def _compile_do_incr(node, ctx: ProcContext):
    tslot = ctx.trip_slot(node.trip_var)
    name = node.stmt.var
    line = node.line
    vslot = ctx.slot(name)
    info = ctx.table.lookup(name)
    if info is not None and not info.is_param and not info.is_array:
        type_ = info.type

        def incr_local(env, _ts=tslot, _vs=vslot, _t=type_, _l=line):
            state = env[_ts]
            cell = env[_vs]
            cell.value = coerce(cell.value + state[1], _t, _l)
            state[0] -= 1

        return incr_local

    def incr(env, _ts=tslot, _vs=vslot, _l=line):
        state = env[_ts]
        cell = env[_vs]
        cell.set(cell.value + state[1], _l)
        state[0] -= 1

    return incr


# -- argument binders ----------------------------------------------------


def build_binders(ctx: ProcContext, callee_name: str, arg_exprs, line):
    """Compile the by-reference bindings of one call site.

    Returns ``(callee_index, binders)`` where each binder is a closure
    ``b(env, callee_env)`` replicating the reference interpreter's
    ``_bind_argument`` for its (param, actual) pair.
    """
    backend = ctx.backend
    if callee_name not in ctx.procedures:
        raise LoweringError(f"call to unknown procedure {callee_name}")
    callee_tp = backend._procs.get(callee_name)
    if callee_tp is None:
        raise LoweringError(f"no lowered body for procedure {callee_name}")
    callee = ctx.procedures[callee_name]
    callee_table = backend.checked.tables[callee_name]
    if len(arg_exprs) != len(callee.params):
        # The reference zip-truncates and lazily materializes missing
        # params; the checker rejects such calls, so just fall back.
        raise LoweringError(
            f"arity mismatch calling {callee_name}: "
            f"{len(arg_exprs)} args for {len(callee.params)} params"
        )
    binders = []
    for param, actual in zip(callee.params, arg_exprs):
        info = callee_table.lookup(param)
        if info is None:
            raise LoweringError(f"{callee_name}: unknown param {param}")
        pslot = callee_tp.layout.get(param)
        if pslot is None:
            raise LoweringError(f"{callee_name}: no slot for param {param}")
        binders.append(_build_binder(ctx, info, actual, callee_name, pslot))
    return callee_tp.index, tuple(binders)


def _raising_binder(message: str, line):
    def binder(env, cenv, _m=message, _l=line):
        raise InterpreterError(_m, _l)

    return binder


def _build_binder(ctx: ProcContext, info, actual, callee_name: str, pslot: int):
    if isinstance(actual, ast.VarRef) and actual.name not in ctx.constants:
        aslot = ctx.slot(actual.name)
        a_info = ctx.table.lookup(actual.name)
        actual_is_array = a_info is not None and a_info.is_array
        if actual_is_array and not info.is_array:
            return _raising_binder(
                f"{callee_name}: array passed for scalar param {info.name}",
                actual.line,
            )
        if not actual_is_array and info.is_array:
            return _raising_binder(
                f"{callee_name}: scalar passed for array param {info.name}",
                actual.line,
            )

        def share(env, cenv, _a=aslot, _p=pslot):
            cenv[_p] = env[_a]

        return share
    if info.is_array:
        return _raising_binder(
            f"{callee_name}: expression passed for array param {info.name}",
            actual.line,
        )
    # `A(2)` parses as FuncCall when A is an array; both spellings of
    # an element reference bind by reference.
    element = None
    if isinstance(actual, ast.ArrayRef):
        element = (actual.name, actual.indices)
    elif isinstance(actual, ast.FuncCall):
        a_info = ctx.table.lookup(actual.name)
        if a_info is not None and a_info.is_array:
            element = (actual.name, actual.args)
    if element is not None:
        name, index_exprs = element
        aslot = ctx.slot(name)
        idx_fns = tuple(compile_expr(i, ctx) for i in index_exprs)
        aline = actual.line

        def bind_element(
            env, cenv, _a=aslot, _fns=idx_fns, _p=pslot, _n=name, _l=aline
        ):
            array = env[_a]
            if not isinstance(array, FortranArray):
                raise InterpreterError(f"{_n} is not an array", _l)
            indices = tuple(int(f(env)) for f in _fns)
            array.get(indices, _l)  # bounds check now
            cenv[_p] = ElementRef(array, indices)

        return bind_element
    value_f = compile_expr(actual, ctx)
    type_ = info.type
    aline = actual.line

    def bind_value(env, cenv, _v=value_f, _t=type_, _p=pslot, _l=aline):
        cell = Cell(_t)
        cell.set(_v(env), _l)
        cenv[_p] = cell

    return bind_value


# -- op tables -----------------------------------------------------------


def build_ops(tp: ThreadedProc, backend, slots, counts):
    """Build one op table: the plain one (``slots is None``) or one
    with a counter plan's bumps composed in."""
    ops = []
    for node_id, spec in zip(tp.node_ids, tp.specs):
        ops.append(_build_op(tp, backend, node_id, spec, slots, counts))
    return ops


def _node_bump(counts, cid, ops_box, ccost_box, cupd_box):
    def bump(_c=counts, _i=cid, _o=ops_box, _cc=ccost_box, _cu=cupd_box):
        _c[_i] += 1.0
        _o[0] += 1
        _cc[0] += _cu[0]

    return bump


def _do_bump(counts, ncid, batches, ops_box, ccost_box, cupd_box):
    """The combined node-event bump of a DO_INIT: the optional node
    counter plus every Opt-3 batched trip-count add, charged exactly
    like the reference hook (``ops`` updates, ``ops * counter_update``
    cycles, accumulated in one addition)."""
    k = (0 if ncid is None else 1) + len(batches)
    if k == 0:
        return None
    if ncid is None and len(batches) == 1:
        ((cid, offset),) = batches

        def bump1(trip, _c=counts, _i=cid, _off=offset, _o=ops_box,
                  _cc=ccost_box, _cu=cupd_box):
            _c[_i] += trip + _off
            _o[0] += 1
            _cc[0] += _cu[0]

        return bump1

    def bump(trip, _c=counts, _n=ncid, _b=batches, _k=k, _o=ops_box,
             _cc=ccost_box, _cu=cupd_box):
        if _n is not None:
            _c[_n] += 1.0
        for cid, offset in _b:
            _c[cid] += trip + offset
        _o[0] += _k
        _cc[0] += _k * _cu[0]

    return bump


def _edge_rec(edge_hits, ehit, counts, ecid, ops_box, ccost_box, cupd_box):
    if ecid is None:

        def rec(_h=edge_hits, _e=ehit):
            _h[_e] += 1

        return rec

    def rec_counted(_h=edge_hits, _e=ehit, _c=counts, _i=ecid, _o=ops_box,
                    _cc=ccost_box, _cu=cupd_box):
        _h[_e] += 1
        _c[_i] += 1.0
        _o[0] += 1
        _cc[0] += _cu[0]

    return rec_counted


def _build_op(tp: ThreadedProc, backend, node_id, spec: _NodeSpec, slots, counts):
    ops_box = backend._ops_box
    ccost_box = backend._ccost_box
    cupd_box = backend._cupd_box
    if slots is not None:
        ncid = slots.node_slots.get(node_id)
        batches = slots.batch_slots.get(node_id, ())
    else:
        ncid = None
        batches = ()
    bump = (
        _node_bump(counts, ncid, ops_box, ccost_box, cupd_box)
        if ncid is not None and spec.kind is not StmtKind.DO_INIT
        else None
    )

    def rec_for(label):
        entry = spec.succ.get(label)
        if entry is None:
            raise LoweringError(
                f"{tp.name}: node {node_id} has no {label!r} successor"
            )
        ehit, nxt = entry
        ecid = (
            slots.edge_slots.get((node_id, label))
            if slots is not None
            else None
        )
        return (
            _edge_rec(
                tp.edge_hits, ehit, counts, ecid, ops_box, ccost_box, cupd_box
            ),
            nxt,
        )

    kind = spec.kind
    if kind is StmtKind.EXIT:
        return _op_exit(bump)
    if kind is StmtKind.STOP:
        # The reference raises out of _exec_node before any hook runs,
        # so a node counter on a STOP node never fires.
        return _op_stop()
    if kind in (StmtKind.IF, StmtKind.WHILE_TEST):
        rec_t, j_t = rec_for(LABEL_TRUE)
        rec_f, j_f = rec_for(LABEL_FALSE)
        return _op_if(spec.act, bump, rec_t, j_t, rec_f, j_f, spec.line)
    if kind is StmtKind.DO_TEST:
        rec_t, j_t = rec_for(LABEL_TRUE)
        rec_f, j_f = rec_for(LABEL_FALSE)
        return _op_do_test(spec.tslot, bump, rec_t, j_t, rec_f, j_f)
    if kind is StmtKind.AIF:
        rec_lt, j_lt = rec_for("LT")
        rec_eq, j_eq = rec_for("EQ")
        rec_gt, j_gt = rec_for("GT")
        return _op_aif(
            spec.act, bump,
            rec_lt, j_lt, rec_eq, j_eq, rec_gt, j_gt, spec.line,
        )
    if kind is StmtKind.CGOTO:
        ways = [rec_for(f"C{k}") for k in range(1, spec.nways + 1)]
        way_u = rec_for(LABEL_UNCOND)
        return _op_cgoto(spec.act, bump, tuple(ways), way_u)
    if kind is StmtKind.DO_INIT:
        dbump = _do_bump(counts, ncid, batches, ops_box, ccost_box, cupd_box)
        rec, nxt = rec_for(LABEL_UNCOND)
        return _op_do_init(spec.act, dbump, rec, nxt)
    # Straight-line kinds: ENTRY, NOOP, ASSIGN, CALL, PRINT, DO_INCR.
    rec, nxt = rec_for(LABEL_UNCOND)
    return _op_step(spec.act, bump, rec, nxt)


def _op_exit(bump):
    if bump is None:

        def op(env):
            return -1

        return op

    def op_b(env, _b=bump):
        _b()
        return -1

    return op_b


def _op_stop():
    def op(env):
        raise _ProgramHalt()

    return op


def _op_step(act, bump, rec, nxt):
    if act is None:
        if bump is None:

            def op(env, _r=rec, _n=nxt):
                _r()
                return _n

            return op

        def op_b(env, _b=bump, _r=rec, _n=nxt):
            _b()
            _r()
            return _n

        return op_b
    if bump is None:

        def op_a(env, _a=act, _r=rec, _n=nxt):
            _a(env)
            _r()
            return _n

        return op_a

    def op_ab(env, _a=act, _b=bump, _r=rec, _n=nxt):
        _a(env)
        _b()
        _r()
        return _n

    return op_ab


def _op_if(cond, bump, rec_t, j_t, rec_f, j_f, line):
    # `is True` / `is False`: every LOGICAL value in the interpreter is
    # a genuine bool, and anything else must raise exactly like the
    # reference's isinstance check.
    if bump is None:

        def op(env, _c=cond, _rt=rec_t, _jt=j_t, _rf=rec_f, _jf=j_f, _l=line):
            value = _c(env)
            if value is True:
                _rt()
                return _jt
            if value is False:
                _rf()
                return _jf
            raise InterpreterError("IF condition is not LOGICAL", _l)

        return op

    def op_b(env, _c=cond, _b=bump, _rt=rec_t, _jt=j_t, _rf=rec_f, _jf=j_f,
             _l=line):
        value = _c(env)
        if value is True:
            _b()
            _rt()
            return _jt
        if value is False:
            _b()
            _rf()
            return _jf
        raise InterpreterError("IF condition is not LOGICAL", _l)

    return op_b


def _op_do_test(tslot, bump, rec_t, j_t, rec_f, j_f):
    if bump is None:

        def op(env, _ts=tslot, _rt=rec_t, _jt=j_t, _rf=rec_f, _jf=j_f):
            if env[_ts][0] > 0:
                _rt()
                return _jt
            _rf()
            return _jf

        return op

    def op_b(env, _ts=tslot, _b=bump, _rt=rec_t, _jt=j_t, _rf=rec_f, _jf=j_f):
        _b()
        if env[_ts][0] > 0:
            _rt()
            return _jt
        _rf()
        return _jf

    return op_b


def _op_aif(cond, bump, rec_lt, j_lt, rec_eq, j_eq, rec_gt, j_gt, line):
    def op(env, _c=cond, _b=bump, _l=line):
        value = _c(env)
        if isinstance(value, bool):
            raise InterpreterError("arithmetic IF on a LOGICAL value", _l)
        if _b is not None:
            _b()
        if value < 0:
            rec_lt()
            return j_lt
        if value == 0:
            rec_eq()
            return j_eq
        rec_gt()
        return j_gt

    return op


def _op_cgoto(selector, bump, ways, way_u):
    n_ways = len(ways)

    def op(env, _s=selector, _b=bump, _w=ways, _n=n_ways, _u=way_u):
        k = int(_s(env))
        if 1 <= k <= _n:
            rec, nxt = _w[k - 1]
        else:
            rec, nxt = _u
        if _b is not None:
            _b()
        rec()
        return nxt

    return op


def _op_do_init(act, dbump, rec, nxt):
    if dbump is None:

        def op(env, _a=act, _r=rec, _n=nxt):
            _a(env)
            _r()
            return _n

        return op

    def op_b(env, _a=act, _d=dbump, _r=rec, _n=nxt):
        _d(_a(env))
        _r()
        return _n

    return op_b


# -- path-profiling op tables ---------------------------------------------
#
# Path mode fuses Ball–Larus register updates instead of counter bumps:
# the register lives in a backend box (``_preg_box``), saved/restored
# around ``_invoke`` so each live frame sees its own value, and path
# counts go to a per-procedure sparse dict.  Event order and the
# ops/cycles accounting match :class:`repro.paths.runtime.PathExecutor`
# exactly: +k on an instrumented edge is 1 update, a back-edge flush is
# 2 (one ``2 * cu`` addition), the EXIT flush is 1, a STOP flush is 0.


def _expr_calls(expr, procedures) -> bool:
    """Whether evaluating ``expr`` can invoke a user procedure.

    After symbol checking, a ``FuncCall`` whose name is a declared
    array has been rewritten to ``ArrayRef``, so a name match against
    the procedure table is exact.
    """
    if isinstance(expr, ast.FuncCall):
        if expr.name in procedures:
            return True
        return any(_expr_calls(arg, procedures) for arg in expr.args)
    if isinstance(expr, ast.Binary):
        return _expr_calls(expr.left, procedures) or _expr_calls(
            expr.right, procedures
        )
    if isinstance(expr, ast.Unary):
        return _expr_calls(expr.operand, procedures)
    if isinstance(expr, ast.ArrayRef):
        return any(_expr_calls(i, procedures) for i in expr.indices)
    return False


def _node_may_call(node, procedures) -> bool:
    """Whether executing ``node`` can suspend this frame in a call.

    Such nodes publish a ``(proc, node)`` marker before their action so
    a STOP unwinding through the call records the right partial-path
    position.
    """
    kind = node.kind
    if kind is StmtKind.CALL:
        return True
    if kind is StmtKind.ASSIGN:
        stmt = node.stmt
        if _expr_calls(stmt.value, procedures):
            return True
        target = stmt.target
        if isinstance(target, ast.VarRef):
            return False
        return any(_expr_calls(i, procedures) for i in target.indices)
    if kind in (StmtKind.IF, StmtKind.WHILE_TEST, StmtKind.AIF,
                StmtKind.CGOTO):
        return _expr_calls(node.cond, procedures)
    if kind is StmtKind.PRINT:
        return any(_expr_calls(item, procedures) for item in node.stmt.items)
    if kind is StmtKind.DO_INIT:
        stmt = node.stmt
        if stmt.step is not None and _expr_calls(stmt.step, procedures):
            return True
        return _expr_calls(stmt.start, procedures) or _expr_calls(
            stmt.stop, procedures
        )
    return False


def build_path_ops(tp: ThreadedProc, backend, pplan, counts):
    """Build the op table with a path plan's register updates fused in.

    ``pplan`` is the procedure's :class:`~repro.paths.numbering.
    ProcPathPlan`; ``counts`` is the backend-owned sparse dict the
    flushes write (merged into the executor after each run).
    """
    procedures = backend.checked.unit.procedures
    ops = []
    for node_id, spec in zip(tp.node_ids, tp.specs):
        ops.append(
            _build_path_op(
                tp, backend, node_id, spec, pplan, counts, procedures
            )
        )
    return ops


def _path_edge_rec(tp, ehit, pplan, key, backend, counts):
    edge_hits = tp.edge_hits
    preg_box = backend._preg_box
    ops_box = backend._ops_box
    ccost_box = backend._ccost_box
    cupd_box = backend._cupd_box
    flush = pplan.flushes.get(key)
    if flush is not None:
        bump_add, reset = flush

        def rec_flush(_h=edge_hits, _e=ehit, _c=counts, _p=preg_box,
                      _b=bump_add, _r=reset, _o=ops_box, _cc=ccost_box,
                      _cu=cupd_box):
            _h[_e] += 1
            k = _p[0] + _b
            _c[k] = _c.get(k, 0.0) + 1.0
            _p[0] = _r
            _o[0] += 2
            _cc[0] += 2 * _cu[0]

        return rec_flush
    inc = pplan.increments.get(key, 0)
    if inc:

        def rec_inc(_h=edge_hits, _e=ehit, _p=preg_box, _k=inc, _o=ops_box,
                    _cc=ccost_box, _cu=cupd_box):
            _h[_e] += 1
            _p[0] += _k
            _o[0] += 1
            _cc[0] += _cu[0]

        return rec_inc

    def rec(_h=edge_hits, _e=ehit):
        _h[_e] += 1

    return rec


def _op_path_exit(backend, counts):
    def op(env, _c=counts, _p=backend._preg_box, _o=backend._ops_box,
           _cc=backend._ccost_box, _cu=backend._cupd_box):
        k = _p[0]
        _c[k] = _c.get(k, 0.0) + 1.0
        _o[0] += 1
        _cc[0] += _cu[0]
        return -1

    return op


def _op_path_stop(backend, counts, tp, node_id, pplan):
    # Settling the halted frame costs 0 updates either way (the run is
    # over — the reference settles it in finalize_run without charging
    # the run).  A STOP node with no real out-edge is a DAG sink whose
    # register is a complete path id; the usual STOP (with a pseudo-ish
    # U edge to EXIT) leaves a partial-path prefix, pushed onto the
    # call save-stack so it unwinds innermost-first with the suspended
    # frames.
    if node_id in pplan.stop_sinks:

        def op_flush(env, _c=counts, _p=backend._preg_box):
            k = _p[0]
            _c[k] = _c.get(k, 0.0) + 1.0
            raise _ProgramHalt()

        return op_flush

    mark = (tp.name, node_id)

    def op(env, _s=backend._path_stack, _m=mark, _p=backend._preg_box):
        _s.append((_m, _p[0]))
        raise _ProgramHalt()

    return op


def _build_path_op(tp, backend, node_id, spec, pplan, counts, procedures):
    def rec_for(label):
        entry = spec.succ.get(label)
        if entry is None:
            raise LoweringError(
                f"{tp.name}: node {node_id} has no {label!r} successor"
            )
        ehit, nxt = entry
        return (
            _path_edge_rec(
                tp, ehit, pplan, (node_id, label), backend, counts
            ),
            nxt,
        )

    kind = spec.kind
    if kind is StmtKind.EXIT:
        return _op_path_exit(backend, counts)
    if kind is StmtKind.STOP:
        return _op_path_stop(backend, counts, tp, node_id, pplan)

    act = spec.act
    if act is not None and _node_may_call(tp.cfg.nodes[node_id], procedures):
        mark = (tp.name, node_id)

        def marked(env, _a=act, _m=mark, _bx=backend._pmark_box):
            _bx[0] = _m
            return _a(env)

        act = marked

    if kind in (StmtKind.IF, StmtKind.WHILE_TEST):
        rec_t, j_t = rec_for(LABEL_TRUE)
        rec_f, j_f = rec_for(LABEL_FALSE)
        return _op_if(act, None, rec_t, j_t, rec_f, j_f, spec.line)
    if kind is StmtKind.DO_TEST:
        rec_t, j_t = rec_for(LABEL_TRUE)
        rec_f, j_f = rec_for(LABEL_FALSE)
        return _op_do_test(spec.tslot, None, rec_t, j_t, rec_f, j_f)
    if kind is StmtKind.AIF:
        rec_lt, j_lt = rec_for("LT")
        rec_eq, j_eq = rec_for("EQ")
        rec_gt, j_gt = rec_for("GT")
        return _op_aif(
            act, None, rec_lt, j_lt, rec_eq, j_eq, rec_gt, j_gt, spec.line
        )
    if kind is StmtKind.CGOTO:
        ways = [rec_for(f"C{k}") for k in range(1, spec.nways + 1)]
        way_u = rec_for(LABEL_UNCOND)
        return _op_cgoto(act, None, tuple(ways), way_u)
    if kind is StmtKind.DO_INIT:
        rec, nxt = rec_for(LABEL_UNCOND)
        return _op_do_init(act, None, rec, nxt)
    rec, nxt = rec_for(LABEL_UNCOND)
    return _op_step(act, None, rec, nxt)
