"""Shared lowering prep: the static shape of one procedure.

Both compiled backends — the threaded closures of
:mod:`repro.fastexec` and the source emitter of :mod:`repro.codegen` —
agree on one static description of a procedure before they diverge:
which variables exist and in what order (the reference interpreter's
env insertion order), which hidden trip counters its DO loops need,
the dense numbering of CFG nodes and real (non-pseudo) edges, and the
FUNCTION result variable.  :func:`build_shape` derives that once from
the checked program; anything it cannot express raises
:class:`LoweringError` so the pipeline can fall back to the reference
interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.graph import ControlFlowGraph, is_pseudo_label
from repro.fastexec.exprs import LoweringError
from repro.lang import ast


@dataclass
class ProcShape:
    """The backend-independent static layout of one procedure."""

    name: str
    index: int
    proc: ast.Procedure
    cfg: ControlFlowGraph
    #: Variable name -> dense slot, params first (binding order) then
    #: the remaining symbol-table variables in declaration order — the
    #: same order the reference interpreter populates its env dict.
    layout: dict[str, int] = field(default_factory=dict)
    names: list[str] = field(default_factory=list)
    #: Hidden DO trip counters, slots appended after the variables.
    trip_slots: dict[str, int] = field(default_factory=dict)
    env_size: int = 0
    #: (slot, type) for every non-param scalar local.
    init_cells: tuple = ()
    #: (slot, name, type, dims) for every non-param array local.
    init_arrays: tuple = ()
    #: Result variable slot for FUNCTIONs, None for the rest.
    ret_slot: int | None = None
    #: CFG node ids in insertion order and their dense indices.
    node_ids: list[int] = field(default_factory=list)
    dense: dict[int, int] = field(default_factory=dict)
    entry_idx: int = 0
    #: Real (non-pseudo) edges in CFG order and their dense indices;
    #: a duplicated (src, label) keeps the *last* index, matching the
    #: reference interpreter's dict-built dispatch table.
    edge_keys: list[tuple[int, str]] = field(default_factory=list)
    edge_index: dict[tuple[int, str], int] = field(default_factory=dict)


def build_shape(
    checked, name: str, cfg: ControlFlowGraph, index: int
) -> ProcShape:
    """Derive one procedure's :class:`ProcShape` (raises LoweringError)."""
    unit = checked.unit
    proc = unit.procedures.get(name)
    if proc is None:
        if unit.main.name != name:
            raise LoweringError(f"no procedure named {name}")
        proc = unit.main
    table = checked.tables[name]

    shape = ProcShape(name=name, index=index, proc=proc, cfg=cfg)

    layout: dict[str, int] = {}
    for param in proc.params:
        if param not in layout:
            layout[param] = len(layout)
    for vname in table.variables:
        if vname not in layout:
            layout[vname] = len(layout)
    shape.layout = layout
    shape.names = list(layout)

    trip_slots: dict[str, int] = {}
    for node in cfg.nodes.values():
        tv = node.trip_var
        if tv is not None and tv not in trip_slots:
            trip_slots[tv] = len(layout) + len(trip_slots)
    shape.trip_slots = trip_slots
    shape.env_size = len(layout) + len(trip_slots)

    init_cells = []
    init_arrays = []
    for vname, info in table.variables.items():
        if info.is_param:
            continue
        if info.is_array:
            init_arrays.append((layout[vname], vname, info.type, info.dims))
        else:
            init_cells.append((layout[vname], info.type))
    shape.init_cells = tuple(init_cells)
    shape.init_arrays = tuple(init_arrays)

    if proc.kind is ast.ProcKind.FUNCTION:
        ret_slot = layout.get(proc.name)
        if ret_slot is None:
            raise LoweringError(f"{name}: FUNCTION has no result variable slot")
        shape.ret_slot = ret_slot
    else:
        shape.ret_slot = None

    shape.node_ids = list(cfg.nodes)
    shape.dense = {nid: i for i, nid in enumerate(shape.node_ids)}
    if cfg.entry not in shape.dense:
        raise LoweringError(f"{name}: entry node missing from CFG")
    shape.entry_idx = shape.dense[cfg.entry]

    shape.edge_keys = [
        (edge.src, edge.label)
        for edge in cfg.edges
        if not is_pseudo_label(edge.label)
    ]
    shape.edge_index = {key: i for i, key in enumerate(shape.edge_keys)}
    return shape
