"""The control-flow-graph data structure (Definition 1 of the paper).

A :class:`ControlFlowGraph` is a labelled multigraph: between one pair
of nodes there may be several edges with different labels (e.g. an IF
whose two branches reach the same join).  Each node carries a *type*
used by the interval/ECFG machinery (START, STOP, HEADER, PREHEADER,
POSTEXIT, OTHER) and a *kind* describing the statement it executes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import CFGError
from repro.lang import ast

#: Conventional edge labels.  T/F are branch outcomes, U is an
#: unconditional edge, Cn are computed-GOTO ways, Z* are the pseudo
#: edges inserted by the ECFG construction (never taken at run time).
LABEL_TRUE = "T"
LABEL_FALSE = "F"
LABEL_UNCOND = "U"
PSEUDO_PREFIX = "Z"


def is_pseudo_label(label: str) -> bool:
    """True for the Z-labelled pseudo edges of the ECFG construction."""
    return label.startswith(PSEUDO_PREFIX)


class NodeType(enum.Enum):
    """The node-type mapping T_c of Definition 1."""

    START = "START"
    STOP = "STOP"
    HEADER = "HEADER"
    PREHEADER = "PREHEADER"
    POSTEXIT = "POSTEXIT"
    OTHER = "OTHER"


class StmtKind(enum.Enum):
    """What a CFG node does when executed (interpreter dispatch key)."""

    ENTRY = "entry"  # procedure entry marker (n_first when body empty)
    EXIT = "exit"  # unique synthetic last node of a procedure
    ASSIGN = "assign"
    IF = "if"  # two-way branch on a condition
    AIF = "aif"  # arithmetic IF: three-way branch on sign
    CGOTO = "cgoto"  # computed GOTO, n-way branch + fallthrough
    CALL = "call"
    PRINT = "print"
    NOOP = "noop"  # CONTINUE and labelled GOTO placeholders
    STOP = "stop"  # program halt
    DO_INIT = "do_init"  # var := start; trip := iteration count
    DO_TEST = "do_test"  # loop header: trip > 0 ?
    DO_INCR = "do_incr"  # var += step; trip -= 1
    WHILE_TEST = "while_test"  # DO WHILE header
    # Synthetic node types used by the ECFG construction.
    START = "start"
    STOP_NODE = "stop_node"
    PREHEADER = "preheader"
    POSTEXIT = "postexit"
    # Synthetic per-loop node used only while acyclifying the ECFG for
    # control dependence computation (never part of the FCDG).
    ITER_END = "iter_end"


@dataclass(frozen=True)
class CFGEdge:
    """One labelled control flow edge (u, v, l)."""

    src: int
    dst: int
    label: str

    @property
    def is_pseudo(self) -> bool:
        return is_pseudo_label(self.label)


@dataclass
class CFGNode:
    """One node of the control flow graph.

    ``stmt`` points back at the originating AST statement (shared by
    the three nodes a DO loop lowers to); ``cond`` holds the branch
    condition for IF/WHILE nodes; ``trip_var`` names the hidden
    iteration counter for DO nodes.
    """

    id: int
    kind: StmtKind
    type: NodeType = NodeType.OTHER
    stmt: ast.Stmt | None = None
    cond: ast.Expr | None = None
    trip_var: str | None = None
    line: int | None = None
    text: str = ""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CFGNode({self.id}, {self.kind.value}, {self.text!r})"


@dataclass
class ControlFlowGraph:
    """A labelled control-flow multigraph for one procedure.

    Nodes are keyed by small integers (1..N, matching the paper's
    convention that nodes are numbered from 1).  ``entry`` is n_first
    and ``exit`` the unique synthetic last node.
    """

    name: str = ""
    nodes: dict[int, CFGNode] = field(default_factory=dict)
    edges: list[CFGEdge] = field(default_factory=list)
    entry: int = 0
    exit: int = 0
    _succ: dict[int, list[CFGEdge]] = field(default_factory=dict, repr=False)
    _pred: dict[int, list[CFGEdge]] = field(default_factory=dict, repr=False)
    _next_id: int = 1
    #: ``(line, text)`` of statements dropped by :meth:`prune_unreachable`
    #: — kept so the checker can still report them (REP302).
    pruned: list[tuple[int | None, str]] = field(default_factory=list)

    # -- construction --------------------------------------------------------

    def add_node(
        self,
        kind: StmtKind,
        *,
        type: NodeType = NodeType.OTHER,
        stmt: ast.Stmt | None = None,
        cond: ast.Expr | None = None,
        trip_var: str | None = None,
        line: int | None = None,
        text: str = "",
    ) -> CFGNode:
        """Create and register a new node with the next free id."""
        node = CFGNode(
            id=self._next_id,
            kind=kind,
            type=type,
            stmt=stmt,
            cond=cond,
            trip_var=trip_var,
            line=line,
            text=text,
        )
        self._next_id += 1
        self.nodes[node.id] = node
        self._succ[node.id] = []
        self._pred[node.id] = []
        return node

    def add_edge(self, src: int, dst: int, label: str) -> CFGEdge:
        """Add a labelled edge; parallel edges must differ in label."""
        if src not in self.nodes or dst not in self.nodes:
            raise CFGError(f"edge ({src}, {dst}, {label}) references unknown node")
        for existing in self._succ[src]:
            if existing.label == label:
                raise CFGError(
                    f"node {src} already has an out-edge labelled {label!r}"
                )
        edge = CFGEdge(src, dst, label)
        self.edges.append(edge)
        self._succ[src].append(edge)
        self._pred[dst].append(edge)
        return edge

    def remove_edge(self, edge: CFGEdge) -> None:
        self.edges.remove(edge)
        self._succ[edge.src].remove(edge)
        self._pred[edge.dst].remove(edge)

    def remove_node(self, node_id: int) -> None:
        """Remove a node and all incident edges."""
        for edge in list(self._succ[node_id]) + list(self._pred[node_id]):
            if edge in self.edges:
                self.remove_edge(edge)
        del self._succ[node_id]
        del self._pred[node_id]
        del self.nodes[node_id]

    # -- queries -------------------------------------------------------------

    def out_edges(self, node_id: int) -> list[CFGEdge]:
        return list(self._succ[node_id])

    def in_edges(self, node_id: int) -> list[CFGEdge]:
        return list(self._pred[node_id])

    def successors(self, node_id: int) -> list[int]:
        return [e.dst for e in self._succ[node_id]]

    def predecessors(self, node_id: int) -> list[int]:
        return [e.src for e in self._pred[node_id]]

    def out_labels(self, node_id: int) -> list[str]:
        """All labels on real (non-pseudo) out-edges of a node."""
        # ``e.label.startswith`` rather than the ``is_pseudo`` property:
        # this is the hottest query in plan building and verification.
        return [
            e.label
            for e in self._succ[node_id]
            if not e.label.startswith(PSEUDO_PREFIX)
        ]

    def edge_to(self, src: int, label: str) -> CFGEdge:
        """The unique out-edge of ``src`` with the given label."""
        for edge in self._succ[src]:
            if edge.label == label:
                return edge
        raise CFGError(f"node {src} has no out-edge labelled {label!r}")

    def node_ids(self) -> list[int]:
        return list(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[CFGNode]:
        return iter(self.nodes.values())

    # -- structure maintenance ----------------------------------------------

    def reachable_from_entry(self) -> set[int]:
        """Node ids reachable from the entry node."""
        seen: set[int] = set()
        stack = [self.entry]
        succ = self._succ
        push = stack.append
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            for edge in succ[node]:
                if edge.dst not in seen:
                    push(edge.dst)
        return seen

    def prune_unreachable(self) -> list[int]:
        """Drop nodes unreachable from entry; returns removed ids.

        The exit node is always kept (it is the target of RETURN edges
        and the ECFG STOP attachment point).
        """
        reachable = self.reachable_from_entry()
        removed = [
            node_id
            for node_id in list(self.nodes)
            if node_id not in reachable and node_id != self.exit
        ]
        for node_id in removed:
            node = self.nodes[node_id]
            if node.stmt is not None or node.cond is not None:
                self.pruned.append((node.line, node.text))
            self.remove_node(node_id)
        return removed

    def validate(self) -> None:
        """Check well-formedness; raises CFGError on violations."""
        if self.entry not in self.nodes:
            raise CFGError("entry node missing")
        if self.exit not in self.nodes:
            raise CFGError("exit node missing")
        if self._succ[self.exit]:
            raise CFGError("exit node must have no successors")
        for node_id in self.nodes:
            if node_id != self.exit and not self._succ[node_id]:
                raise CFGError(f"non-exit node {node_id} has no successors")
        reachable = self.reachable_from_entry()
        missing = set(self.nodes) - reachable
        if missing:
            raise CFGError(f"unreachable nodes present: {sorted(missing)}")

    def copy(self) -> "ControlFlowGraph":
        """A structural copy sharing node payloads (stmt/cond refs)."""
        clone = ControlFlowGraph(name=self.name, entry=self.entry, exit=self.exit)
        clone._next_id = self._next_id
        clone.pruned = list(self.pruned)
        for node_id, node in self.nodes.items():
            clone.nodes[node_id] = CFGNode(
                id=node.id,
                kind=node.kind,
                type=node.type,
                stmt=node.stmt,
                cond=node.cond,
                trip_var=node.trip_var,
                line=node.line,
                text=node.text,
            )
            clone._succ[node_id] = []
            clone._pred[node_id] = []
        for edge in self.edges:
            new_edge = CFGEdge(edge.src, edge.dst, edge.label)
            clone.edges.append(new_edge)
            clone._succ[edge.src].append(new_edge)
            clone._pred[edge.dst].append(new_edge)
        return clone
