"""Reducibility testing and node splitting.

A CFG is reducible iff removing every edge ``(u, v)`` whose target
dominates its source (the natural-loop back edges) leaves an acyclic
graph.  ``split_nodes`` applies the standard node-splitting
transformation to make an irreducible graph reducible: it repeatedly
clones a multi-predecessor node inside an irreducible region, once per
incoming edge, until the test passes.
"""

from __future__ import annotations

from repro.errors import CFGError, IrreducibleError
from repro.cfg.dfs import depth_first_search
from repro.cfg.dominance import dominates, dominator_tree
from repro.cfg.graph import CFGEdge, ControlFlowGraph

#: Safety bound on node-splitting growth: node splitting can be
#: exponential in the worst case, so refuse to grow a graph beyond
#: this multiple of its original size.
_MAX_GROWTH = 16


def back_edges(cfg: ControlFlowGraph) -> list[CFGEdge]:
    """Edges (u, v) with v dominating u — the natural-loop back edges."""
    idom = dominator_tree(cfg)
    return [
        edge
        for edge in cfg.edges
        if edge.src in idom
        and edge.dst in idom
        and dominates(idom, edge.dst, edge.src, cfg.entry)
    ]


def forward_cycle(cfg: ControlFlowGraph) -> list[int] | None:
    """A cycle avoiding the natural back edges, or None when acyclic.

    The graph is reducible exactly when this returns None.
    """
    removed = {id(edge) for edge in back_edges(cfg)}
    color: dict[int, int] = {}  # 0 white (absent), 1 gray, 2 black
    parent: dict[int, int] = {}

    for start in cfg.nodes:
        if color.get(start):
            continue
        stack: list[tuple[int, list[int], int]] = [
            (start, _forward_successors(cfg, start, removed), 0)
        ]
        color[start] = 1
        while stack:
            node, succs, index = stack.pop()
            advanced = False
            while index < len(succs):
                nxt = succs[index]
                index += 1
                state = color.get(nxt, 0)
                if state == 0:
                    parent[nxt] = node
                    color[nxt] = 1
                    stack.append((node, succs, index))
                    stack.append((nxt, _forward_successors(cfg, nxt, removed), 0))
                    advanced = True
                    break
                if state == 1:
                    # Found a cycle: reconstruct it from the parent chain.
                    cycle = [node]
                    cursor = node
                    while cursor != nxt:
                        cursor = parent[cursor]
                        cycle.append(cursor)
                    cycle.reverse()
                    return cycle
            if not advanced and index >= len(succs):
                color[node] = 2
    return None


def _forward_successors(
    cfg: ControlFlowGraph, node: int, removed: set[int]
) -> list[int]:
    return [e.dst for e in cfg.out_edges(node) if id(e) not in removed]


def is_reducible(cfg: ControlFlowGraph) -> bool:
    """True when the CFG is reducible.

    When every node is reachable this uses the single-DFS test: the
    graph is reducible iff every retreating edge's target dominates
    its source.  (Removing the retreating edges of any DFS leaves a
    DAG, so a forward cycle must contain a retreating non-back edge;
    conversely such an edge plus its spanning-tree path *is* a forward
    cycle, because tree edges are never back edges.)  With unreachable
    nodes retreating edges are undefined, so fall back to the explicit
    cycle search.
    """
    dfs = depth_first_search(cfg, cfg.entry)
    if len(dfs.preorder) != len(cfg.nodes):
        return forward_cycle(cfg) is None
    if not dfs.back_edges:
        return True
    idom = dominator_tree(cfg, dfs=dfs)
    return all(
        dominates(idom, edge.dst, edge.src, cfg.entry)
        for edge in dfs.back_edges
    )


def split_nodes(cfg: ControlFlowGraph, max_growth: int = _MAX_GROWTH) -> int:
    """Make ``cfg`` reducible in place via node splitting.

    Returns the number of nodes that were cloned.  Raises
    IrreducibleError when the graph would grow beyond
    ``max_growth × original size`` (pathological irreducibility).
    """
    original_size = len(cfg)
    splits = 0
    while True:
        cycle = forward_cycle(cfg)
        if cycle is None:
            return splits
        if len(cfg) > max_growth * original_size:
            raise IrreducibleError(
                f"node splitting exceeded growth bound on {cfg.name or 'cfg'}"
            )
        victim = _pick_split_victim(cfg, cycle)
        _split_one(cfg, victim)
        splits += 1


def _pick_split_victim(cfg: ControlFlowGraph, cycle: list[int]) -> int:
    """Choose the cycle node with ≥2 preds and the fewest incident edges."""
    candidates = [n for n in cycle if len(cfg.in_edges(n)) >= 2 and n != cfg.entry]
    if not candidates:
        raise CFGError("irreducible cycle without a splittable node")
    return min(
        candidates, key=lambda n: (len(cfg.in_edges(n)), len(cfg.out_edges(n)), n)
    )


def _split_one(cfg: ControlFlowGraph, node_id: int) -> None:
    """Clone ``node_id`` so each incoming edge gets a private copy.

    The original node keeps its first incoming edge; each remaining
    incoming edge is redirected to a fresh clone that replicates all
    outgoing edges.
    """
    incoming = cfg.in_edges(node_id)
    template = cfg.nodes[node_id]
    for edge in incoming[1:]:
        clone = cfg.add_node(
            template.kind,
            type=template.type,
            stmt=template.stmt,
            cond=template.cond,
            trip_var=template.trip_var,
            line=template.line,
            text=template.text,
        )
        for out_edge in cfg.out_edges(node_id):
            dst = out_edge.dst if out_edge.dst != node_id else clone.id
            cfg.add_edge(clone.id, dst, out_edge.label)
        cfg.remove_edge(edge)
        cfg.add_edge(edge.src, clone.id, edge.label)
