"""Dominators and postdominators.

Implements the iterative algorithm of Cooper, Harvey and Kennedy
("A Simple, Fast Dominance Algorithm") over reverse postorder.  The
same engine computes postdominators by walking the reversed graph from
the exit node.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import AnalysisError
from repro.cfg.dfs import depth_first_search
from repro.cfg.graph import ControlFlowGraph


def _immediate_dominators(
    nodes: list[int],
    rpo_index: dict[int, int],
    preds: Callable[[int], list[int]],
    root: int,
) -> dict[int, int]:
    """Generic CHK iteration; ``nodes`` must be in reverse postorder."""
    idom: dict[int, int] = {root: root}

    def intersect(a: int, b: int) -> int:
        while a != b:
            while rpo_index[a] > rpo_index[b]:
                a = idom[a]
            while rpo_index[b] > rpo_index[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for node in nodes:
            if node == root:
                continue
            candidates = [p for p in preds(node) if p in idom]
            if not candidates:
                continue
            new_idom = candidates[0]
            for pred in candidates[1:]:
                new_idom = intersect(new_idom, pred)
            if idom.get(node) != new_idom:
                idom[node] = new_idom
                changed = True
    return idom


def dominator_tree(cfg: ControlFlowGraph, dfs=None) -> dict[int, int]:
    """Immediate dominators keyed by node; the entry maps to itself.

    Only nodes reachable from the entry appear in the result.  Pass a
    precomputed entry-rooted ``DFSResult`` as ``dfs`` to reuse its
    traversal instead of running a fresh one.
    """
    if dfs is None:
        dfs = depth_first_search(cfg, cfg.entry)
    order = dfs.reverse_postorder()
    rpo_index = {node: i for i, node in enumerate(order)}
    return _immediate_dominators(order, rpo_index, cfg.predecessors, cfg.entry)


def postdominator_tree(cfg: ControlFlowGraph) -> dict[int, int]:
    """Immediate postdominators keyed by node; exit maps to itself.

    Raises AnalysisError when some node cannot reach the exit (the
    paper assumes terminating programs, and control dependence is
    undefined otherwise).
    """
    # DFS over the reversed graph from the exit.
    visited: set[int] = set()
    postorder: list[int] = []
    stack: list[tuple[int, list[int], int]] = [
        (cfg.exit, cfg.predecessors(cfg.exit), 0)
    ]
    visited.add(cfg.exit)
    while stack:
        node, preds, index = stack.pop()
        advanced = False
        while index < len(preds):
            nxt = preds[index]
            index += 1
            if nxt not in visited:
                visited.add(nxt)
                stack.append((node, preds, index))
                stack.append((nxt, cfg.predecessors(nxt), 0))
                advanced = True
                break
        if not advanced and index >= len(preds):
            postorder.append(node)
    unreachable = set(cfg.nodes) - visited
    if unreachable:
        raise AnalysisError(
            "nodes cannot reach the exit (nonterminating control flow): "
            f"{sorted(unreachable)}"
        )
    order = list(reversed(postorder))
    rpo_index = {node: i for i, node in enumerate(order)}
    return _immediate_dominators(order, rpo_index, cfg.successors, cfg.exit)


def dominance_frontier(
    cfg: ControlFlowGraph, idom: dict[int, int]
) -> dict[int, set[int]]:
    """Dominance frontiers (Cytron et al.) for the given idom tree."""
    frontier: dict[int, set[int]] = {node: set() for node in idom}
    for node in idom:
        preds = [p for p in cfg.predecessors(node) if p in idom]
        if len(preds) < 2:
            continue
        for pred in preds:
            runner = pred
            while runner != idom[node]:
                frontier[runner].add(node)
                runner = idom[runner]
    return frontier


def dominates(idom: dict[int, int], a: int, b: int, root: int) -> bool:
    """True when ``a`` dominates ``b`` under the given idom map."""
    node = b
    while True:
        if node == a:
            return True
        if node == root or node not in idom:
            return False
        parent = idom[node]
        if parent == node:
            return node == a
        node = parent


def dominator_depths(idom: dict[int, int], root: int) -> dict[int, int]:
    """Depth of every node in the dominator tree (root depth 0)."""
    depths: dict[int, int] = {root: 0}

    def depth(node: int) -> int:
        if node in depths:
            return depths[node]
        chain = []
        cursor = node
        while cursor not in depths:
            chain.append(cursor)
            parent = idom[cursor]
            if parent == cursor:
                raise AnalysisError(f"node {cursor} is a non-root idom fixpoint")
            cursor = parent
        base = depths[cursor]
        for i, item in enumerate(reversed(chain), start=1):
            depths[item] = base + i
        return depths[node]

    for node in idom:
        depth(node)
    return depths
