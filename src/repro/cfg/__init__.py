"""Control flow graphs: data structure, builder, and graph analyses.

This package implements Definition 1 of the paper — a labelled
control-flow multigraph with a node-type mapping — plus the standard
analyses the framework needs: depth-first search, dominators and
postdominators, reducibility testing and node splitting.
"""

from repro.cfg.graph import (
    CFGEdge,
    CFGNode,
    ControlFlowGraph,
    NodeType,
    StmtKind,
)
from repro.cfg.builder import build_cfg, build_program_cfgs
from repro.cfg.dfs import DFSResult, depth_first_search
from repro.cfg.dominance import dominator_tree, postdominator_tree
from repro.cfg.reducibility import is_reducible, split_nodes

__all__ = [
    "CFGEdge",
    "CFGNode",
    "ControlFlowGraph",
    "NodeType",
    "StmtKind",
    "build_cfg",
    "build_program_cfgs",
    "DFSResult",
    "depth_first_search",
    "dominator_tree",
    "postdominator_tree",
    "is_reducible",
    "split_nodes",
]
