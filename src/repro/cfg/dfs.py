"""Depth-first search over control flow graphs.

Provides the depth-first spanning tree, preorder/postorder numbering
and reverse postorder that the dominator and interval analyses build
on.  Edge classification follows the dragon book: *tree*, *back*
(destination is a spanning-tree ancestor of the source, including
self-loops), *forward* (descendant) and *cross*.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.graph import CFGEdge, ControlFlowGraph


@dataclass
class DFSResult:
    """Outcome of one depth-first traversal from ``root``."""

    root: int
    preorder: dict[int, int] = field(default_factory=dict)
    postorder: dict[int, int] = field(default_factory=dict)
    parent: dict[int, int | None] = field(default_factory=dict)
    tree_edges: list[CFGEdge] = field(default_factory=list)
    back_edges: list[CFGEdge] = field(default_factory=list)
    forward_edges: list[CFGEdge] = field(default_factory=list)
    cross_edges: list[CFGEdge] = field(default_factory=list)

    def reverse_postorder(self) -> list[int]:
        """Visited nodes sorted by decreasing postorder number."""
        return sorted(self.postorder, key=lambda n: -self.postorder[n])

    def is_ancestor(self, a: int, b: int) -> bool:
        """True when ``a`` is an ancestor of ``b`` in the spanning tree
        (every node is an ancestor of itself)."""
        return (
            self.preorder[a] <= self.preorder[b]
            and self.postorder[a] >= self.postorder[b]
        )


def depth_first_search(cfg: ControlFlowGraph, root: int | None = None) -> DFSResult:
    """Iterative DFS from ``root`` (default: the CFG entry).

    Edges are explored in insertion order, so the traversal — and the
    resulting spanning tree — is deterministic.
    """
    start = cfg.entry if root is None else root
    result = DFSResult(root=start)
    pre_counter = 0
    post_counter = 0
    result.parent[start] = None
    # Stack holds (node, iterator over out-edges); emulate recursion.
    result.preorder[start] = pre_counter
    pre_counter += 1
    stack: list[tuple[int, list[CFGEdge], int]] = [(start, cfg.out_edges(start), 0)]
    while stack:
        node, edges, index = stack.pop()
        advanced = False
        while index < len(edges):
            edge = edges[index]
            index += 1
            target = edge.dst
            if target not in result.preorder:
                result.parent[target] = node
                result.tree_edges.append(edge)
                result.preorder[target] = pre_counter
                pre_counter += 1
                stack.append((node, edges, index))
                stack.append((target, cfg.out_edges(target), 0))
                advanced = True
                break
            if target not in result.postorder:
                # Target is on the current DFS stack: a back edge.
                result.back_edges.append(edge)
            elif result.preorder[target] > result.preorder[node]:
                result.forward_edges.append(edge)
            else:
                result.cross_edges.append(edge)
        if not advanced and index >= len(edges):
            result.postorder[node] = post_counter
            post_counter += 1
    return result
