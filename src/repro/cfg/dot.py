"""Graphviz (DOT) export for CFGs, ECFGs and FCDGs."""

from __future__ import annotations

from repro.cfg.graph import ControlFlowGraph, NodeType

_TYPE_SHAPES = {
    NodeType.START: "doubleoctagon",
    NodeType.STOP: "doubleoctagon",
    NodeType.HEADER: "house",
    NodeType.PREHEADER: "invhouse",
    NodeType.POSTEXIT: "invtriangle",
    NodeType.OTHER: "box",
}


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def cfg_to_dot(cfg: ControlFlowGraph, name: str | None = None) -> str:
    """The CFG as a DOT digraph; pseudo edges are dashed."""
    lines = [f'digraph "{_escape(name or cfg.name or "cfg")}" {{']
    lines.append("  node [fontsize=10];")
    for node in cfg:
        label = f"{node.id}: {node.text}" if node.text else str(node.id)
        shape = _TYPE_SHAPES[node.type]
        lines.append(
            f'  n{node.id} [label="{_escape(label)}", shape={shape}];'
        )
    for edge in cfg.edges:
        style = ", style=dashed" if edge.is_pseudo else ""
        lines.append(
            f'  n{edge.src} -> n{edge.dst} [label="{_escape(edge.label)}"{style}];'
        )
    lines.append("}")
    return "\n".join(lines)


def fcdg_to_dot(fcdg, name: str | None = None, analysis=None) -> str:
    """The forward control dependence graph as a DOT digraph.

    With ``analysis`` (a :class:`ProcedureAnalysis` for the same
    procedure), nodes carry their Figure-3 ``TIME/VAR`` annotations and
    edges their ``FREQ`` values — a graphical rendering of the paper's
    Figure 3.
    """
    graph = fcdg.ecfg.graph
    lines = [f'digraph "{_escape(name or graph.name or "fcdg")}" {{']
    lines.append("  node [fontsize=10];")
    for node_id in fcdg.topological_order():
        node = graph.nodes[node_id]
        label = _escape(
            f"{node.id}: {node.text}" if node.text else str(node.id)
        )
        if analysis is not None:
            time = analysis.times.get(node_id, 0.0)
            var = analysis.variances.var.get(node_id, 0.0)
            label += f"\\nTIME={time:g} VAR={var:g}"
        shape = _TYPE_SHAPES[node.type]
        lines.append(f'  n{node.id} [label="{label}", shape={shape}];')
    for edge in fcdg.edges:
        style = ", style=dashed" if edge.label.startswith("Z") else ""
        text = edge.label
        if analysis is not None:
            frequency = analysis.freqs.freq.get((edge.src, edge.label))
            if frequency is not None:
                text += f" ({frequency:g})"
        lines.append(
            f'  n{edge.src} -> n{edge.dst} [label="{_escape(text)}"{style}];'
        )
    lines.append("}")
    return "\n".join(lines)
