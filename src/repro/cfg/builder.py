"""Lowering minifort procedures to statement-level control flow graphs.

One CFG node is created per executable statement, matching the paper's
Figure 1.  Plain ``GOTO`` and ``RETURN`` statements compile to edges
rather than nodes; a labelled GOTO/RETURN gets a NOOP placeholder node
so the label has a target.  DO loops lower to three nodes (DO_INIT,
DO_TEST — the loop header — and DO_INCR), following the Fortran-77
trip-count semantics.
"""

from __future__ import annotations

from repro.errors import CFGError
from repro.lang import ast
from repro.lang.symbols import CheckedProgram
from repro.lang.unparse import stmt_text, unparse_expr
from repro.cfg.graph import (
    LABEL_FALSE,
    LABEL_TRUE,
    LABEL_UNCOND,
    ControlFlowGraph,
    StmtKind,
)

#: A dangling out-edge waiting for its destination: (src node id, label).
_Pending = tuple[int, str]


class _Builder:
    """Single-procedure CFG construction state."""

    def __init__(self, proc: ast.Procedure):
        self.proc = proc
        self.cfg = ControlFlowGraph(name=proc.name)
        self.pending: list[_Pending] = []
        self.label_nodes: dict[int, int] = {}
        self.deferred: list[tuple[int, str, int]] = []
        self.exit_pending: list[_Pending] = []
        self._trip_counter = 0

    # -- helpers -------------------------------------------------------------

    def _fresh_trip_var(self) -> str:
        self._trip_counter += 1
        return f"__TRIP{self._trip_counter}"

    def _place(self, kind: StmtKind, **fields) -> int:
        """Create a node and wire all pending edges into it."""
        node = self.cfg.add_node(kind, **fields)
        for src, label in self.pending:
            self.cfg.add_edge(src, node.id, label)
        self.pending = []
        return node.id

    def _register_label(self, stmt: ast.Stmt, node_id: int) -> None:
        if stmt.label is not None:
            self.label_nodes[stmt.label] = node_id

    # -- driver --------------------------------------------------------------

    def build(self) -> ControlFlowGraph:
        entry = self.cfg.add_node(StmtKind.ENTRY, text="ENTRY")
        self.cfg.entry = entry.id
        self.pending = [(entry.id, LABEL_UNCOND)]
        self._build_body(self.proc.body)
        exit_node = self.cfg.add_node(StmtKind.EXIT, text="EXIT")
        self.cfg.exit = exit_node.id
        for src, label in self.pending + self.exit_pending:
            self.cfg.add_edge(src, exit_node.id, label)
        self.pending = []
        self._resolve_deferred()
        self.cfg.prune_unreachable()
        return self.cfg

    def _resolve_deferred(self) -> None:
        for src, label, target in self.deferred:
            dest = self.label_nodes.get(target)
            if dest is None:
                raise CFGError(
                    f"{self.proc.name}: GOTO target label {target} has no node"
                )
            if src in self.cfg.nodes:
                self.cfg.add_edge(src, dest, label)

    def _build_body(self, stmts: list[ast.Stmt]) -> None:
        for stmt in stmts:
            self._build_stmt(stmt)

    # -- statement lowering ----------------------------------------------

    def _build_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, (ast.Declaration, ast.ParameterStmt)):
            if stmt.label is not None:
                node = self._place(StmtKind.NOOP, line=stmt.line, text="CONTINUE")
                self._register_label(stmt, node)
                self.pending = [(node, LABEL_UNCOND)]
            return
        if isinstance(stmt, ast.Assign):
            self._simple_node(stmt, StmtKind.ASSIGN)
        elif isinstance(stmt, ast.CallStmt):
            self._simple_node(stmt, StmtKind.CALL)
        elif isinstance(stmt, ast.PrintStmt):
            self._simple_node(stmt, StmtKind.PRINT)
        elif isinstance(stmt, ast.ContinueStmt):
            self._simple_node(stmt, StmtKind.NOOP)
        elif isinstance(stmt, ast.StopStmt):
            node = self._place(StmtKind.STOP, stmt=stmt, line=stmt.line, text="STOP")
            self._register_label(stmt, node)
            self.exit_pending.append((node, LABEL_UNCOND))
        elif isinstance(stmt, ast.Goto):
            self._build_goto(stmt)
        elif isinstance(stmt, ast.ReturnStmt):
            self._build_return(stmt)
        elif isinstance(stmt, ast.ComputedGoto):
            self._build_computed_goto(stmt)
        elif isinstance(stmt, ast.ArithmeticIf):
            self._build_arithmetic_if(stmt)
        elif isinstance(stmt, ast.LogicalIf):
            self._build_logical_if(stmt)
        elif isinstance(stmt, ast.IfBlock):
            self._build_if_block(stmt)
        elif isinstance(stmt, ast.DoLoop):
            self._build_do_loop(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self._build_do_while(stmt)
        else:  # pragma: no cover - new statement kinds must be handled
            raise CFGError(f"cannot lower statement {type(stmt).__name__}")

    def _simple_node(self, stmt: ast.Stmt, kind: StmtKind) -> None:
        node = self._place(kind, stmt=stmt, line=stmt.line, text=stmt_text(stmt))
        self._register_label(stmt, node)
        self.pending = [(node, LABEL_UNCOND)]

    def _build_goto(self, stmt: ast.Goto) -> None:
        if stmt.label is not None:
            node = self._place(StmtKind.NOOP, line=stmt.line, text="CONTINUE")
            self._register_label(stmt, node)
            self.deferred.append((node, LABEL_UNCOND, stmt.target))
        else:
            for src, label in self.pending:
                self.deferred.append((src, label, stmt.target))
        self.pending = []

    def _build_return(self, stmt: ast.ReturnStmt) -> None:
        if stmt.label is not None:
            node = self._place(StmtKind.NOOP, line=stmt.line, text="CONTINUE")
            self._register_label(stmt, node)
            self.exit_pending.append((node, LABEL_UNCOND))
        else:
            self.exit_pending.extend(self.pending)
        self.pending = []

    def _build_computed_goto(self, stmt: ast.ComputedGoto) -> None:
        node = self._place(
            StmtKind.CGOTO,
            stmt=stmt,
            cond=stmt.selector,
            line=stmt.line,
            text=stmt_text(stmt),
        )
        self._register_label(stmt, node)
        for i, target in enumerate(stmt.targets, start=1):
            self.deferred.append((node, f"C{i}", target))
        # Selector out of 1..n falls through to the next statement.
        self.pending = [(node, LABEL_UNCOND)]

    def _build_arithmetic_if(self, stmt: ast.ArithmeticIf) -> None:
        node = self._place(
            StmtKind.AIF,
            stmt=stmt,
            cond=stmt.expr,
            line=stmt.line,
            text=stmt_text(stmt),
        )
        self._register_label(stmt, node)
        # Three-way branch on sign; duplicate targets share a node but
        # keep distinct labels (the CFG is a multigraph).
        for label, target in zip(("LT", "EQ", "GT"), stmt.targets):
            self.deferred.append((node, label, target))
        self.pending = []

    def _build_logical_if(self, stmt: ast.LogicalIf) -> None:
        node = self._place(
            StmtKind.IF,
            stmt=stmt,
            cond=stmt.cond,
            line=stmt.line,
            text=f"IF ({unparse_expr(stmt.cond)})",
        )
        self._register_label(stmt, node)
        inner = stmt.stmt
        join: list[_Pending] = [(node, LABEL_FALSE)]
        if isinstance(inner, ast.Goto):
            self.deferred.append((node, LABEL_TRUE, inner.target))
        elif isinstance(inner, ast.ReturnStmt):
            self.exit_pending.append((node, LABEL_TRUE))
        else:
            self.pending = [(node, LABEL_TRUE)]
            self._build_stmt(inner)
            join.extend(self.pending)
        self.pending = join

    def _build_if_block(self, stmt: ast.IfBlock) -> None:
        join: list[_Pending] = []
        first = True
        arm_node = 0
        for cond, body in stmt.arms:
            arm_node = self._place(
                StmtKind.IF,
                stmt=stmt,
                cond=cond,
                line=cond.line,
                text=f"IF ({unparse_expr(cond)})",
            )
            if first:
                self._register_label(stmt, arm_node)
                first = False
            self.pending = [(arm_node, LABEL_TRUE)]
            self._build_body(body)
            join.extend(self.pending)
            self.pending = [(arm_node, LABEL_FALSE)]
        if stmt.else_body:
            self._build_body(stmt.else_body)
        join.extend(self.pending)
        self.pending = join

    def _build_do_loop(self, stmt: ast.DoLoop) -> None:
        trip_var = self._fresh_trip_var()
        init = self._place(
            StmtKind.DO_INIT,
            stmt=stmt,
            trip_var=trip_var,
            line=stmt.line,
            text=stmt_text(stmt),
        )
        self._register_label(stmt, init)
        test = self.cfg.add_node(
            StmtKind.DO_TEST,
            stmt=stmt,
            trip_var=trip_var,
            line=stmt.line,
            text=f"DO-TEST {stmt.var}",
        )
        self.cfg.add_edge(init, test.id, LABEL_UNCOND)
        self.pending = [(test.id, LABEL_TRUE)]
        self._build_body(stmt.body)
        if self.pending:
            incr = self._place(
                StmtKind.DO_INCR,
                stmt=stmt,
                trip_var=trip_var,
                line=stmt.line,
                text=f"DO-INCR {stmt.var}",
            )
            self.cfg.add_edge(incr, test.id, LABEL_UNCOND)
        self.pending = [(test.id, LABEL_FALSE)]

    def _build_do_while(self, stmt: ast.DoWhile) -> None:
        test = self._place(
            StmtKind.WHILE_TEST,
            stmt=stmt,
            cond=stmt.cond,
            line=stmt.line,
            text=f"DO WHILE ({unparse_expr(stmt.cond)})",
        )
        self._register_label(stmt, test)
        self.pending = [(test, LABEL_TRUE)]
        self._build_body(stmt.body)
        for src, label in self.pending:
            self.cfg.add_edge(src, test, label)
        self.pending = [(test, LABEL_FALSE)]


def build_cfg(proc: ast.Procedure) -> ControlFlowGraph:
    """Build the statement-level CFG of one procedure."""
    return _Builder(proc).build()


def build_program_cfgs(checked: CheckedProgram) -> dict[str, ControlFlowGraph]:
    """Build CFGs for every procedure of a checked program."""
    return {
        name: build_cfg(proc)
        for name, proc in checked.unit.procedures.items()
    }
