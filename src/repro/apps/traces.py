"""Frequency-driven trace selection and branch layout.

Two of the optimizations the paper's introduction cites as consumers
of execution-frequency information:

* **Trace scheduling** [FERN84] — pick *traces* (likely acyclic paths)
  by Fisher's mutual-most-likely heuristic, seeded at the
  highest-frequency unvisited node and grown along the most frequent
  CFG edges, never crossing a loop back edge;
* **Branch layout** [MH86] — for every two-way branch, make the more
  frequent arm the fall-through and estimate the cycles saved given a
  taken-branch penalty.

Both consume the edge frequencies derived in
:mod:`repro.analysis.edge_freq` — the same numbers the paper's
framework produces, exercised the way a compiler back end would.

Path mode (:mod:`repro.paths`) strengthens the first consumer:
Fisher's heuristic *guesses* a hot path from edge frequencies, which
can splice together branch arms that never co-occur, while a path
spectrum records which whole acyclic paths actually ran.
:func:`hot_paths` ranks the observed paths and :func:`trace_from_path`
turns one into the same :class:`Trace` shape the heuristic produces,
so a back end can schedule *observed* traces and fall back to
frequency-guessed ones only where the spectrum is cold.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.edge_freq import edge_frequencies
from repro.analysis.interprocedural import ProcedureAnalysis
from repro.cfg.graph import CFGEdge, ControlFlowGraph, StmtKind

#: Node kinds excluded from traces (no machine code of their own).
_SYNTHETIC = frozenset({StmtKind.ENTRY, StmtKind.EXIT, StmtKind.NOOP})


@dataclass
class Trace:
    """One selected trace: a loop-free path of CFG nodes."""

    nodes: list[int]
    #: expected executions of the seed node, per invocation.
    seed_frequency: float
    #: Σ NODE_FREQ over trace members (a share-of-work measure).
    weight: float

    def __len__(self) -> int:
        return len(self.nodes)


def select_traces(
    proc: ProcedureAnalysis, *, min_frequency: float = 1e-9
) -> list[Trace]:
    """Fisher-style trace selection over the analyzed CFG.

    Returns traces in selection order (hottest first); every
    non-synthetic node with frequency above ``min_frequency`` belongs
    to exactly one trace.
    """
    cfg = proc.cfg
    node_freq = proc.freqs.node_freq
    counts = edge_frequencies(proc)
    back_edges = {
        (edge.src, edge.dst)
        for header, edges in proc.ecfg.intervals.loop_back_edges.items()
        for edge in edges
    }

    def crosses_back_edge(edge: CFGEdge) -> bool:
        return (edge.src, edge.dst) in back_edges

    candidates = [
        node
        for node in cfg.nodes
        if cfg.nodes[node].kind not in _SYNTHETIC
        and node_freq.get(node, 0.0) > min_frequency
    ]
    unvisited = set(candidates)
    traces: list[Trace] = []

    def best_successor(node: int) -> int | None:
        viable = [
            e
            for e in cfg.out_edges(node)
            if e.dst in unvisited
            and not crosses_back_edge(e)
            and counts[e] > min_frequency
        ]
        if not viable:
            return None
        best = max(viable, key=lambda e: counts[e])
        # mutual-most-likely: the target's hottest incoming edge must
        # be this one, or the trace would tear another hot path apart.
        incoming = max(
            cfg.in_edges(best.dst), key=lambda e: counts[e]
        )
        if incoming.src != node:
            return None
        return best.dst

    def best_predecessor(node: int) -> int | None:
        viable = [
            e
            for e in cfg.in_edges(node)
            if e.src in unvisited
            and not crosses_back_edge(e)
            and counts[e] > min_frequency
        ]
        if not viable:
            return None
        best = max(viable, key=lambda e: counts[e])
        outgoing = max(cfg.out_edges(best.src), key=lambda e: counts[e])
        if outgoing.dst != node:
            return None
        return best.src

    for seed in sorted(
        candidates, key=lambda n: (-node_freq.get(n, 0.0), n)
    ):
        if seed not in unvisited:
            continue
        unvisited.discard(seed)
        trace_nodes = [seed]
        cursor = seed
        while True:
            nxt = best_successor(cursor)
            if nxt is None:
                break
            trace_nodes.append(nxt)
            unvisited.discard(nxt)
            cursor = nxt
        cursor = seed
        while True:
            prev = best_predecessor(cursor)
            if prev is None:
                break
            trace_nodes.insert(0, prev)
            unvisited.discard(prev)
            cursor = prev
        traces.append(
            Trace(
                nodes=trace_nodes,
                seed_frequency=node_freq.get(seed, 0.0),
                weight=sum(node_freq.get(n, 0.0) for n in trace_nodes),
            )
        )
    return traces


@dataclass
class BranchAdvice:
    """Layout recommendation for one two-way branch."""

    node: int
    text: str
    fallthrough_label: str
    taken_count: float
    not_taken_count: float
    #: cycles saved per invocation vs the worse layout.
    saving: float

    @property
    def flipped(self) -> bool:
        """True when the recommended fall-through is the F arm's
        opposite — i.e. the source order should be inverted."""
        return self.fallthrough_label == "T"


def branch_layout_advice(
    proc: ProcedureAnalysis, *, taken_penalty: float = 2.0
) -> list[BranchAdvice]:
    """Per-branch fall-through recommendations, hottest saving first.

    A taken branch costs ``taken_penalty`` extra cycles; laying out
    the more frequent arm as the fall-through saves
    ``penalty × |count(T) − count(F)|`` versus the worse layout.
    """
    cfg = proc.cfg
    counts = edge_frequencies(proc)
    advice: list[BranchAdvice] = []
    for node in cfg.nodes:
        if cfg.nodes[node].kind is not StmtKind.IF:
            continue
        by_label = {e.label: counts[e] for e in cfg.out_edges(node)}
        if set(by_label) != {"T", "F"}:
            continue
        hot = "T" if by_label["T"] >= by_label["F"] else "F"
        cold = "F" if hot == "T" else "T"
        advice.append(
            BranchAdvice(
                node=node,
                text=cfg.nodes[node].text,
                fallthrough_label=hot,
                taken_count=by_label[cold],
                not_taken_count=by_label[hot],
                saving=taken_penalty * (by_label[hot] - by_label[cold]),
            )
        )
    advice.sort(key=lambda a: -a.saving)
    return advice


# ---------------------------------------------------------------------------
# Observed hot paths (Ball–Larus path spectra)
# ---------------------------------------------------------------------------


@dataclass
class HotPath:
    """One observed acyclic path, ranked by its executed count."""

    proc: str
    path_id: int
    #: times this exact path ran, summed over the profiled runs.
    count: float
    #: this path's share of all recorded paths (program-wide).
    fraction: float
    #: real CFG nodes in execution order.
    nodes: tuple[int, ...]
    #: real CFG edges traversed, including a terminating back edge.
    edges: tuple[tuple[int, str], ...]
    #: "exit" | "backedge" | "stop" — how the path ended.
    end: str


def hot_paths(
    plan,
    path_counts: dict[str, dict[int, float]],
    *,
    k: int = 10,
    min_count: float = 0.0,
) -> list[HotPath]:
    """The top-``k`` observed paths of a recorded spectrum.

    ``plan`` is the :class:`repro.paths.ProgramPathPlan` the spectrum
    was recorded against and ``path_counts`` the per-procedure
    ``{path_id: count}`` tables (:attr:`PathExecutor.path_counts`, or
    the service's accumulated spectrum).  Ties break deterministically
    by procedure name, then path id.
    """
    flat = [
        (count, proc, path_id)
        for proc, table in path_counts.items()
        for path_id, count in table.items()
        if count > min_count
    ]
    total = sum(count for count, _, _ in flat)
    flat.sort(key=lambda item: (-item[0], item[1], item[2]))
    out: list[HotPath] = []
    for count, proc, path_id in flat[:k]:
        decoded = plan.plans[proc].decode(path_id)
        out.append(
            HotPath(
                proc=proc,
                path_id=path_id,
                count=count,
                fraction=count / total if total else 0.0,
                nodes=decoded.nodes,
                edges=decoded.edges,
                end=decoded.end,
            )
        )
    return out


def trace_from_path(cfg: ControlFlowGraph, path: HotPath) -> Trace:
    """An observed path in :class:`Trace` clothing.

    Synthetic nodes are dropped exactly as :func:`select_traces` drops
    them; every surviving node executed ``count`` times along this
    path, so the trace weighs ``count × len(nodes)``.
    """
    nodes = [
        node
        for node in path.nodes
        if cfg.nodes[node].kind not in _SYNTHETIC
    ]
    return Trace(
        nodes=nodes,
        seed_frequency=path.count,
        weight=path.count * len(nodes),
    )
