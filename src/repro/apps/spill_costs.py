"""Frequency-weighted spill costs for register allocation [Wal86].

The third consumer the paper's introduction names: "register
allocation [Wal86]" used link-time profile estimates to decide which
variables deserve registers.  Given an analyzed program, this module
computes, for every scalar variable of a procedure,

    spill_cost(v) = Σ over nodes u:  NODE_FREQ(u) × (reads_u(v) × load
                                     + writes_u(v) × store)

— the memory traffic avoided per invocation by keeping ``v`` in a
register — and ranks variables accordingly.  Loop nesting falls out of
NODE_FREQ automatically: a variable touched inside a hot loop outranks
one touched more often in the source but executed rarely.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.interprocedural import ProgramAnalysis
from repro.cfg.graph import StmtKind
from repro.costs.model import MachineModel
from repro.lang import ast


@dataclass
class SpillCost:
    """Register-worthiness of one scalar variable."""

    name: str
    reads: float  # expected dynamic reads per invocation
    writes: float  # expected dynamic writes per invocation
    cost: float  # cycles of memory traffic saved by a register

    @property
    def accesses(self) -> float:
        return self.reads + self.writes


class _AccessCounter:
    """Static per-node scalar read/write counts for one procedure."""

    def __init__(self, table):
        self.table = table

    def _is_scalar(self, name: str) -> bool:
        if name in self.table.constants:
            return False  # constants are immediates, not memory
        info = self.table.lookup(name)
        return info is None or not info.is_array

    def _expr_reads(self, expr: ast.Expr | None, reads: dict[str, int]):
        if expr is None:
            return
        for node in ast.walk_expr(expr):
            if isinstance(node, ast.VarRef) and self._is_scalar(node.name):
                reads[node.name] = reads.get(node.name, 0) + 1

    def node_accesses(
        self, cfg_node
    ) -> tuple[dict[str, int], dict[str, int]]:
        reads: dict[str, int] = {}
        writes: dict[str, int] = {}
        stmt = cfg_node.stmt
        kind = cfg_node.kind
        if kind is StmtKind.ASSIGN:
            assert isinstance(stmt, ast.Assign)
            self._expr_reads(stmt.value, reads)
            if isinstance(stmt.target, ast.VarRef):
                writes[stmt.target.name] = writes.get(stmt.target.name, 0) + 1
            else:
                for index in stmt.target.indices:
                    self._expr_reads(index, reads)
        elif kind in (
            StmtKind.IF,
            StmtKind.WHILE_TEST,
            StmtKind.CGOTO,
            StmtKind.AIF,
        ):
            self._expr_reads(cfg_node.cond, reads)
        elif kind is StmtKind.DO_INIT:
            assert isinstance(stmt, ast.DoLoop)
            self._expr_reads(stmt.start, reads)
            self._expr_reads(stmt.stop, reads)
            self._expr_reads(stmt.step, reads)
            writes[stmt.var] = writes.get(stmt.var, 0) + 1
        elif kind is StmtKind.DO_INCR:
            assert isinstance(stmt, ast.DoLoop)
            reads[stmt.var] = reads.get(stmt.var, 0) + 1
            writes[stmt.var] = writes.get(stmt.var, 0) + 1
        elif kind is StmtKind.CALL:
            assert isinstance(stmt, ast.CallStmt)
            for arg in stmt.args:
                if isinstance(arg, ast.VarRef) and self._is_scalar(arg.name):
                    # by-reference scalar: read now, possibly written.
                    reads[arg.name] = reads.get(arg.name, 0) + 1
                    writes[arg.name] = writes.get(arg.name, 0) + 1
                else:
                    self._expr_reads(arg, reads)
        elif kind is StmtKind.PRINT:
            assert isinstance(stmt, ast.PrintStmt)
            for item in stmt.items:
                self._expr_reads(item, reads)
        return reads, writes


def spill_costs(
    analysis: ProgramAnalysis, proc_name: str, model: MachineModel
) -> list[SpillCost]:
    """Scalar variables of ``proc_name`` ranked by frequency-weighted
    memory-traffic cost, hottest first."""
    proc = analysis.procedures[proc_name]
    counter = _AccessCounter(analysis.checked.tables[proc_name])
    totals: dict[str, SpillCost] = {}
    for node in proc.cfg:
        frequency = proc.freqs.node_freq.get(node.id, 0.0)
        if frequency <= 0:
            continue
        reads, writes = counter.node_accesses(node)
        for name, count in reads.items():
            entry = totals.setdefault(name, SpillCost(name, 0.0, 0.0, 0.0))
            entry.reads += frequency * count
        for name, count in writes.items():
            entry = totals.setdefault(name, SpillCost(name, 0.0, 0.0, 0.0))
            entry.writes += frequency * count
    for entry in totals.values():
        entry.cost = entry.reads * model.load + entry.writes * model.store
    return sorted(totals.values(), key=lambda e: (-e.cost, e.name))


def register_allocation_advice(
    analysis: ProgramAnalysis,
    proc_name: str,
    model: MachineModel,
    n_registers: int,
) -> tuple[list[str], float]:
    """Greedy allocation: the top-``n_registers`` variables by spill
    cost, and the cycles saved per invocation by that choice."""
    ranked = spill_costs(analysis, proc_name, model)
    chosen = ranked[:n_registers]
    return [c.name for c in chosen], sum(c.cost for c in chosen)
