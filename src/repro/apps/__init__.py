"""Applications of the execution-time/variance estimates."""
