"""Task partitioning from TIME/VAR estimates (PTRAN's primary use).

"Currently, the primary use of execution time information in PTRAN is
in automatically partitioning the input program into tasks for
parallel execution."  This module implements a simplified
macro-dataflow partitioner in that spirit [Sar87, Sar89]:

* every loop is a candidate parallel task set — profitable when the
  Kruskal-Weiss makespan estimate (with the variance-aware chunk
  size) beats the sequential time plus spawn overheads;
* every call site is a candidate asynchronous task — profitable when
  the callee's average TIME dwarfs the spawn overhead;
* nested candidates are resolved outermost-first (a loop already
  executed inside a parallel loop is not spawned again);
* the result carries an Amdahl-style whole-program speedup estimate.

The numbers come straight from the paper's framework: per-iteration
means and variances via :func:`repro.apps.chunking.loop_iteration_stats`
and callee TIMEs via rule 2.  This is a planning heuristic, not a
scheduler — its value here is demonstrating the decision procedure the
paper says the estimates enable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.analysis.interprocedural import ProgramAnalysis
from repro.apps.chunking import (
    estimate_makespan,
    loop_iteration_stats,
    optimal_chunk_size,
)
from repro.cfg.graph import StmtKind
from repro.errors import AnalysisError


@dataclass
class LoopTask:
    """One loop considered for chunked parallel execution."""

    proc: str
    header: int
    text: str
    entries: float  # loop entries per program run
    iterations: float  # average iterations per entry
    iter_mean: float
    iter_std: float
    chunk: int
    sequential_time: float  # per entry
    parallel_time: float  # per entry, estimated makespan
    profitable: bool

    @property
    def saving_per_run(self) -> float:
        if not self.profitable:
            return 0.0
        return self.entries * (self.sequential_time - self.parallel_time)


@dataclass
class CallTask:
    """One call site considered for asynchronous spawning."""

    proc: str
    node: int
    text: str
    callee: str
    calls_per_run: float
    callee_time: float
    profitable: bool


@dataclass
class Partition:
    """The partitioner's full decision record."""

    n_processors: int
    spawn_overhead: float
    loops: list[LoopTask] = field(default_factory=list)
    calls: list[CallTask] = field(default_factory=list)
    sequential_time: float = 0.0
    parallel_time: float = 0.0

    @property
    def chosen_loops(self) -> list[LoopTask]:
        return [t for t in self.loops if t.profitable]

    @property
    def estimated_speedup(self) -> float:
        if self.parallel_time <= 0:
            return 1.0
        return self.sequential_time / self.parallel_time


def partition_program(
    analysis: ProgramAnalysis,
    *,
    n_processors: int = 4,
    spawn_overhead: float = 200.0,
    call_spawn_factor: float = 10.0,
) -> Partition:
    """Decide which loops/calls to parallelize; see module docstring.

    ``spawn_overhead`` is the per-chunk scheduling cost (cycles);
    a call is marked task-worthy when the callee's TIME exceeds
    ``call_spawn_factor × spawn_overhead``.
    """
    result = Partition(
        n_processors=n_processors, spawn_overhead=spawn_overhead
    )
    runs = max(
        1.0,
        analysis.procedures[
            analysis.checked.unit.main.name
        ].freqs.invocations,
    )

    for name, proc in sorted(analysis.procedures.items()):
        invocations = proc.freqs.invocations / runs
        # -- loops, outermost-first within the procedure ---------------
        claimed: set[int] = set()
        for header in proc.ecfg.intervals.loop_headers:  # by depth
            preheader = proc.ecfg.preheader_of[header]
            entries = (
                proc.freqs.node_freq.get(preheader, 0.0) * invocations
            )
            if entries <= 0:
                continue
            iterations = proc.freqs.loop_frequency(preheader)
            if iterations <= 1:
                continue
            try:
                mean, var = loop_iteration_stats(proc, header)
            except AnalysisError:
                continue
            n_iter = max(1, round(iterations))
            chunk = optimal_chunk_size(
                n_iter, n_processors, mean, math.sqrt(var), spawn_overhead
            )
            sequential = proc.times[preheader]
            parallel = estimate_makespan(
                n_iter,
                n_processors,
                mean,
                math.sqrt(var),
                spawn_overhead,
                chunk,
            )
            enclosing_chosen = any(
                header in proc.ecfg.intervals.members.get(outer, set())
                for outer in claimed
            )
            profitable = parallel < sequential and not enclosing_chosen
            if profitable:
                claimed.add(header)
            result.loops.append(
                LoopTask(
                    proc=name,
                    header=header,
                    text=proc.cfg.nodes[header].text,
                    entries=entries,
                    iterations=iterations,
                    iter_mean=mean,
                    iter_std=math.sqrt(var),
                    chunk=chunk,
                    sequential_time=sequential,
                    parallel_time=parallel,
                    profitable=profitable,
                )
            )
        # -- call sites -----------------------------------------------------
        for node in proc.cfg:
            if node.kind is not StmtKind.CALL:
                continue
            callee = node.stmt.name
            callee_time = analysis.procedures[callee].time
            calls_per_run = (
                proc.freqs.node_freq.get(node.id, 0.0) * invocations
            )
            if calls_per_run <= 0:
                continue
            result.calls.append(
                CallTask(
                    proc=name,
                    node=node.id,
                    text=node.text,
                    callee=callee,
                    calls_per_run=calls_per_run,
                    callee_time=callee_time,
                    profitable=callee_time
                    > call_spawn_factor * spawn_overhead,
                )
            )

    result.sequential_time = analysis.total_time
    saving = sum(t.saving_per_run for t in result.loops)
    result.parallel_time = max(
        result.sequential_time - saving,
        result.sequential_time / n_processors,
    )
    return result
