"""Variance-driven chunk sizing for parallel loops (Kruskal-Weiss).

Section 5 motivates variance estimation with the chunk-size problem
[KW85]: executing N independent iterations on P processors by handing
out *chunks* of k iterations costs scheduling overhead per chunk, but
large chunks suffer load imbalance when iteration times vary.  With
zero variance the best chunk is ~N/P (one chunk per processor); as
variance grows, smaller chunks win.

This module provides

* :func:`estimate_makespan` — the Kruskal-Weiss style closed-form
  estimate ``T(k) = (N·μ + ceil(N/k)·h) / P + σ·sqrt(2·k·ln P)``;
* :func:`optimal_chunk_size` — minimizes the estimate over k;
* :func:`loop_iteration_stats` — extracts a loop's per-iteration mean
  and variance from an analyzed procedure (the compile-time inputs
  the paper's framework supplies);
* :func:`simulate_chunked_loop` — a discrete-event self-scheduling
  simulation validating the choice.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.errors import AnalysisError
from repro.analysis.interprocedural import ProcedureAnalysis


def estimate_makespan(
    n_iterations: int,
    n_processors: int,
    mean: float,
    std_dev: float,
    overhead: float,
    chunk: int,
) -> float:
    """Expected completion time of a self-scheduled chunked loop.

    The work term ``(N·μ + m·h)/P`` (m chunks of overhead h) plus the
    Kruskal-Weiss imbalance term ``σ·sqrt(2·k·ln P)`` for the final
    straggler chunk.
    """
    if chunk < 1:
        raise ValueError("chunk size must be >= 1")
    n_chunks = math.ceil(n_iterations / chunk)
    work = (n_iterations * mean + n_chunks * overhead) / n_processors
    imbalance = 0.0
    if n_processors > 1 and std_dev > 0:
        imbalance = std_dev * math.sqrt(2.0 * chunk * math.log(n_processors))
    return work + imbalance


def optimal_chunk_size(
    n_iterations: int,
    n_processors: int,
    mean: float,
    std_dev: float,
    overhead: float,
) -> int:
    """The chunk size minimizing :func:`estimate_makespan`.

    With zero variance this returns ~ceil(N/P) (fewest chunks); with
    large variance it shrinks toward 1.
    """
    best_k = 1
    best_t = float("inf")
    max_chunk = max(1, math.ceil(n_iterations / n_processors))
    for k in range(1, max_chunk + 1):
        t = estimate_makespan(
            n_iterations, n_processors, mean, std_dev, overhead, k
        )
        if t < best_t - 1e-12:
            best_t = t
            best_k = k
    return best_k


def loop_iteration_stats(
    proc: ProcedureAnalysis, header: int
) -> tuple[float, float]:
    """(mean, variance) of one iteration of the loop headed by ``header``.

    Derived from the preheader's TIME/VAR and loop frequency:
    ``TIME(ph) = F × Σ TIME(body)`` and, with VAR(FREQ) = 0,
    ``VAR(ph) = F² × Σ VAR(body)``.
    """
    ecfg = proc.ecfg
    preheader = ecfg.preheader_of.get(header)
    if preheader is None:
        raise AnalysisError(f"node {header} is not a loop header")
    frequency = proc.freqs.loop_frequency(preheader)
    if frequency <= 0:
        raise AnalysisError(f"loop at {header} never executed in the profile")
    mean = proc.times[preheader] / frequency
    variance = proc.variances.var[preheader] / (frequency * frequency)
    return mean, variance


def chunk_advice(
    analysis,
    *,
    n_processors: int = 8,
    overhead: float = 10.0,
) -> list[dict]:
    """Chunk-size advice for every profiled loop of an analysis.

    Walks each procedure's loops (every header with a preheader in
    the ECFG), extracts per-iteration mean/variance via
    :func:`loop_iteration_stats`, and answers the Kruskal-Weiss
    question — what chunk size, and what does it buy over naive
    N/P chunking.  Loops the profile never entered are skipped (their
    statistics are undefined).  The iteration count is the loop's
    average trip count from the profile, rounded to at least 1.
    """
    advice = []
    for name in sorted(analysis.procedures):
        proc = analysis.procedures[name]
        for header, preheader in sorted(proc.ecfg.preheader_of.items()):
            try:
                mean, variance = loop_iteration_stats(proc, header)
            except AnalysisError:
                continue
            trips = proc.freqs.loop_frequency(preheader)
            n_iterations = max(1, round(trips))
            std_dev = math.sqrt(max(0.0, variance))
            best = optimal_chunk_size(
                n_iterations, n_processors, mean, std_dev, overhead
            )
            naive = max(1, math.ceil(n_iterations / n_processors))
            advice.append(
                {
                    "proc": name,
                    "header": header,
                    "iterations": n_iterations,
                    "iteration_mean": mean,
                    "iteration_std_dev": std_dev,
                    "chunk": best,
                    "makespan": estimate_makespan(
                        n_iterations, n_processors, mean, std_dev,
                        overhead, best,
                    ),
                    "naive_chunk": naive,
                    "naive_makespan": estimate_makespan(
                        n_iterations, n_processors, mean, std_dev,
                        overhead, naive,
                    ),
                }
            )
    return advice


@dataclass
class SimulationResult:
    """Outcome of one simulated chunked execution."""

    makespan: float
    n_chunks: int
    per_worker_busy: list[float]

    @property
    def imbalance(self) -> float:
        """Max worker busy time minus mean busy time."""
        mean = sum(self.per_worker_busy) / len(self.per_worker_busy)
        return max(self.per_worker_busy) - mean


def simulate_chunked_loop(
    n_iterations: int,
    n_processors: int,
    mean: float,
    std_dev: float,
    overhead: float,
    chunk: int,
    *,
    seed: int = 0,
) -> SimulationResult:
    """Self-scheduled execution with gamma-distributed iteration times.

    Workers repeatedly grab the next chunk; each chunk costs
    ``overhead`` plus the sum of its iteration times.  Gamma keeps
    iteration times positive while matching the requested mean and
    variance (degenerating to a constant when the variance is 0).
    """
    if chunk < 1:
        raise ValueError("chunk size must be >= 1")
    rng = random.Random(seed)
    if std_dev > 0:
        shape = (mean / std_dev) ** 2
        scale = std_dev * std_dev / mean

        def draw() -> float:
            return rng.gammavariate(shape, scale)

    else:

        def draw() -> float:
            return mean

    finish = [0.0] * n_processors
    remaining = n_iterations
    n_chunks = 0
    while remaining > 0:
        worker = min(range(n_processors), key=lambda w: finish[w])
        size = min(chunk, remaining)
        remaining -= size
        n_chunks += 1
        finish[worker] += overhead + sum(draw() for _ in range(size))
    return SimulationResult(
        makespan=max(finish),
        n_chunks=n_chunks,
        per_worker_busy=finish,
    )
