"""Interval structure (loop nesting) of a reducible CFG.

Implements the ``HDR`` / ``HDR_PARENT`` / ``HDR_LCA`` mappings of
Section 2 of the paper: intervals are the natural loops of the
reducible control flow graph, plus one outermost interval containing
the whole procedure, headed by the entry node.
"""

from repro.intervals.analysis import IntervalStructure, compute_intervals

__all__ = ["IntervalStructure", "compute_intervals"]
