"""Natural-loop interval analysis.

For a reducible CFG the Tarjan intervals coincide with the natural
loops: every back edge ``(u, h)`` (target dominates source) defines a
loop with header ``h``; back edges sharing a header define one loop.
The paper's outermost interval — the one containing ``n_first`` — is
modelled as a pseudo-loop headed by the CFG entry that contains every
node.

The resulting :class:`IntervalStructure` exposes the paper's mappings:

* ``HDR(n)``        — header of the innermost interval containing n;
* ``HDR_PARENT(h)`` — header of the immediately enclosing interval
  (0 for the outermost interval, matching the paper's convention);
* ``HDR_LCA(h1, h2)`` — least common ancestor in the header tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AnalysisError, IrreducibleError
from repro.cfg.graph import CFGEdge, ControlFlowGraph
from repro.cfg.reducibility import back_edges, is_reducible


@dataclass
class IntervalStructure:
    """The interval (loop-nesting) structure of one CFG."""

    cfg: ControlFlowGraph
    #: Innermost interval header for every node (HDR).  The entry node
    #: heads the outermost interval and maps to itself.
    hdr: dict[int, int] = field(default_factory=dict)
    #: Immediate enclosing interval header for every header
    #: (HDR_PARENT); the outermost header maps to 0.
    hdr_parent: dict[int, int] = field(default_factory=dict)
    #: Members of each interval, including subinterval nodes and the
    #: header itself.
    members: dict[int, set[int]] = field(default_factory=dict)
    #: Back edges grouped by header.
    loop_back_edges: dict[int, list[CFGEdge]] = field(default_factory=dict)
    _depth: dict[int, int] = field(default_factory=dict, repr=False)

    @property
    def root(self) -> int:
        """Header of the outermost interval (the CFG entry)."""
        return self.cfg.entry

    @property
    def headers(self) -> list[int]:
        """All interval headers, outermost first (by depth, then id)."""
        return sorted(self.hdr_parent, key=lambda h: (self._depth[h], h))

    @property
    def loop_headers(self) -> list[int]:
        """Headers of real loops (the outermost pseudo-interval excluded)."""
        return [h for h in self.headers if h != self.root]

    def hdr_of(self, node: int) -> int:
        """HDR(n): the header of the innermost interval containing n.

        Following the paper, a header node belongs to its own interval:
        ``hdr_of(h) == h`` for every header ``h``.
        """
        return self.hdr[node]

    def parent_of(self, header: int) -> int:
        """HDR_PARENT(h); 0 for the outermost interval."""
        return self.hdr_parent[header]

    def depth_of(self, header: int) -> int:
        """Nesting depth of an interval (outermost = 0)."""
        return self._depth[header]

    def lca(self, h1: int, h2: int) -> int:
        """HDR_LCA(h1, h2) in the header tree."""
        if h1 not in self._depth or h2 not in self._depth:
            raise AnalysisError(f"lca: {h1} or {h2} is not an interval header")
        a, b = h1, h2
        while self._depth[a] > self._depth[b]:
            a = self.hdr_parent[a]
        while self._depth[b] > self._depth[a]:
            b = self.hdr_parent[b]
        while a != b:
            a = self.hdr_parent[a]
            b = self.hdr_parent[b]
        return a

    def contains(self, header: int, node: int) -> bool:
        """True when ``node`` is inside the interval headed by ``header``
        (directly or in a nested subinterval)."""
        return node in self.members[header]

    def enclosing_headers(self, node: int) -> list[int]:
        """Headers of all intervals containing ``node``, innermost first."""
        chain = []
        header = self.hdr[node]
        while header != 0:
            chain.append(header)
            header = self.hdr_parent[header]
        return chain

    def exit_edges(self, header: int) -> list[CFGEdge]:
        """Real edges leaving the interval headed by ``header``."""
        body = self.members[header]
        return [
            edge
            for edge in self.cfg.edges
            if edge.src in body and edge.dst not in body and not edge.is_pseudo
        ]

    def entry_edges(self, header: int) -> list[CFGEdge]:
        """Real edges entering the interval from outside (to the header)."""
        body = self.members[header]
        return [
            edge
            for edge in self.cfg.edges
            if edge.dst == header and edge.src not in body and not edge.is_pseudo
        ]


def _natural_loop(
    cfg: ControlFlowGraph, header: int, sources: list[int]
) -> set[int]:
    """Nodes of the natural loop of ``header`` with back-edge sources."""
    loop = {header}
    stack = [s for s in sources if s != header]
    while stack:
        node = stack.pop()
        if node in loop:
            continue
        loop.add(node)
        stack.extend(p for p in cfg.predecessors(node) if p not in loop)
    return loop


def compute_intervals(cfg: ControlFlowGraph) -> IntervalStructure:
    """Compute the interval structure of a reducible CFG.

    Raises IrreducibleError when the graph is irreducible — callers
    should run :func:`repro.cfg.split_nodes` first.
    """
    if not is_reducible(cfg):
        raise IrreducibleError(
            f"{cfg.name or 'cfg'} is irreducible; apply node splitting first"
        )
    structure = IntervalStructure(cfg=cfg)

    grouped: dict[int, list[CFGEdge]] = {}
    for edge in back_edges(cfg):
        grouped.setdefault(edge.dst, []).append(edge)

    loops: dict[int, set[int]] = {
        header: _natural_loop(cfg, header, [e.src for e in edges])
        for header, edges in grouped.items()
    }
    # The outermost pseudo-interval spans the whole procedure.
    root = cfg.entry
    if root in loops:
        raise AnalysisError("the CFG entry node may not be a loop header")
    loops[root] = set(cfg.nodes)
    grouped.setdefault(root, [])

    # Nesting: parent of header h = header of the smallest other loop
    # that contains h.  Reducibility guarantees loops nest properly.
    by_size = sorted(loops, key=lambda h: len(loops[h]))
    for header in loops:
        parent = 0
        best_size = None
        for other in by_size:
            if other == header:
                continue
            if header in loops[other]:
                if best_size is None or len(loops[other]) < best_size:
                    parent = other
                    best_size = len(loops[other])
                    break  # by_size is sorted: first hit is smallest
        structure.hdr_parent[header] = parent

    # Depths from the parent chains.
    def depth(header: int) -> int:
        if header in structure._depth:
            return structure._depth[header]
        parent = structure.hdr_parent[header]
        value = 0 if parent == 0 else depth(parent) + 1
        structure._depth[header] = value
        return value

    for header in loops:
        depth(header)

    # HDR(n): innermost (deepest) loop containing n.
    for node in cfg.nodes:
        best = root
        for header, body in loops.items():
            if node in body and structure._depth[header] > structure._depth[best]:
                best = header
        structure.hdr[node] = best
    # A header belongs to its own interval.
    for header in loops:
        structure.hdr[header] = header

    structure.members = loops
    structure.loop_back_edges = grouped
    return structure
