"""Batch profiling: cached static analysis over a (program × run) matrix.

The paper's point is that optimized counter placement makes profiling
cheap enough to run routinely; this package makes *running it
routinely* cheap too.  See :mod:`repro.batch.cache` for the
content-hash artifact cache, :mod:`repro.batch.engine` for the
serial/pooled execution engine and :mod:`repro.batch.aggregate` for
the Definition-3 aggregation of merged profiles.

The convenience entry point is :func:`repro.pipeline.profile_batch`;
the CLI exposes the same engine as ``repro batch``.
"""

from repro.batch.aggregate import canonical_json, merge_profiles, summarize_item
from repro.batch.cache import ArtifactCache, CachedArtifacts, CacheStats, source_key
from repro.batch.engine import (
    BatchError,
    BatchItem,
    BatchOptions,
    BatchReport,
    BatchResult,
    run_batch,
)

__all__ = [
    "ArtifactCache",
    "CachedArtifacts",
    "CacheStats",
    "source_key",
    "BatchError",
    "BatchItem",
    "BatchOptions",
    "BatchReport",
    "BatchResult",
    "run_batch",
    "canonical_json",
    "merge_profiles",
    "summarize_item",
]
