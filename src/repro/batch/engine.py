"""The batch-profiling engine.

Fans a (program × run-configuration) matrix out over a process pool
(or a serial loop — same code path, same results), with all static
artifacts served by an :class:`~repro.batch.cache.ArtifactCache`:

* **deterministic ordering** — results come back in item order no
  matter which worker finished first, and the canonical aggregate
  JSON is byte-identical between serial and pooled execution;
* **error isolation** — a program that fails to parse, profile or
  analyze yields a structured :class:`BatchError` record tagged with
  the failing stage; the rest of the batch is unaffected;
* **shared artifacts** — within a process the in-memory cache tier
  serves repeats; across worker processes and batch invocations the
  on-disk tier does (workers re-hydrate pickled artifacts instead of
  re-deriving CFG/ECFG/FCDG/plans).

The pool is a ``concurrent.futures.ProcessPoolExecutor``; tasks are
whole items (one program with all its runs) so a cached compilation is
amortized across that item's runs even when the cache is memory-only.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.batch.aggregate import canonical_json, summarize_item
from repro.batch.cache import ArtifactCache
from repro.costs.model import MachineModel
from repro.obs import metrics, span
from repro.pipeline import profile_program

#: Run-spec keys accepted by :func:`repro.pipeline.run_program`.
_RUN_SPEC_KEYS = {"seed", "inputs"}


@dataclass(frozen=True)
class BatchItem:
    """One program to profile, with its run configurations."""

    id: str
    source: str
    #: keyword dicts for ``run_program`` (``seed=...``, ``inputs=...``).
    runs: tuple[dict, ...] = ({"seed": 0},)


@dataclass(frozen=True)
class BatchOptions:
    """Per-batch knobs, shipped verbatim to worker processes."""

    plan: str = "smart"
    model: MachineModel | None = None
    loop_variance: str = "zero"
    max_steps: int = 10_000_000
    #: Run the artifact verifier on every item before profiling.
    verify: bool = False
    #: Execution engine per ``run_program``: auto/threaded/reference.
    backend: str = "auto"
    #: ``"counters"`` (Definition-3 counter placement) or ``"paths"``
    #: (Ball–Larus path profiling + reconstruction).
    profile_mode: str = "counters"


@dataclass(frozen=True)
class BatchError:
    """A structured per-item failure record."""

    stage: str  # "compile" | "verify" | "profile" | "analyze" | "cancelled"
    type: str  # exception class name
    message: str

    def as_dict(self) -> dict:
        return {"stage": self.stage, "type": self.type, "message": self.message}


@dataclass
class BatchResult:
    """The outcome of one batch item (success or isolated failure)."""

    index: int
    item_id: str
    ok: bool
    runs: int
    cache_tier: str | None = None
    profile: object | None = None  # ProgramProfile on success
    summary: dict | None = None
    counters: int = 0
    counter_updates: int = 0
    base_cost: float = 0.0
    counter_cost: float = 0.0
    error: BatchError | None = None


@dataclass
class BatchReport:
    """Ordered results plus batch-level accounting."""

    results: list[BatchResult]
    mode: str
    jobs: int
    plan: str
    cache_stats: dict[str, int] = field(default_factory=dict)
    elapsed: float = 0.0

    @property
    def ok(self) -> list[BatchResult]:
        return [r for r in self.results if r.ok]

    @property
    def failures(self) -> list[BatchResult]:
        return [r for r in self.results if not r.ok]

    def aggregate(self) -> dict:
        """The batch's aggregate summary, free of timing/cache noise.

        Execution mode, worker count and cache temperature must not
        leak in: this dictionary (and its canonical JSON) is the
        payload that serial and pooled execution reproduce
        byte-for-byte.
        """
        items = []
        for result in self.results:
            record: dict = {
                "id": result.item_id,
                "ok": result.ok,
                "runs": result.runs,
            }
            if result.ok:
                record["counters"] = result.counters
                record["counter_updates"] = result.counter_updates
                record["summary"] = result.summary
            else:
                assert result.error is not None
                record["error"] = result.error.as_dict()
            items.append(record)
        totals = {
            "programs": len(self.results),
            "ok": len(self.ok),
            "failed": len(self.failures),
            "runs": sum(r.runs for r in self.results),
            "counter_updates": sum(r.counter_updates for r in self.ok),
            "time_sum": sum(
                r.summary["time"]
                for r in self.ok
                if r.summary and "time" in r.summary
            ),
        }
        return {"plan": self.plan, "items": items, "totals": totals}

    def aggregate_json(self) -> str:
        return canonical_json(self.aggregate())


# ---------------------------------------------------------------------------
# One item, start to finish (runs in the caller or in a worker)
# ---------------------------------------------------------------------------


def _profile_one(
    index: int, item: BatchItem, cache: ArtifactCache, options: BatchOptions
) -> BatchResult:
    with span("batch.item", attrs={"id": item.id}) as item_span:
        result = _profile_one_inner(index, item, cache, options, item_span)
    metrics.counter(
        "repro_batch_items_total",
        "Batch items processed, by outcome (ok or failing stage).",
        labels=("status",),
    ).inc(status="ok" if result.ok else result.error.stage)
    return result


def _profile_one_inner(
    index: int,
    item: BatchItem,
    cache: ArtifactCache,
    options: BatchOptions,
    item_span,
) -> BatchResult:
    result = BatchResult(
        index=index, item_id=item.id, ok=False, runs=len(item.runs)
    )
    plan_kind = "paths" if options.profile_mode == "paths" else options.plan
    try:
        program, plan, tier = cache.artifacts(item.source, plan_kind)
    except Exception as exc:
        result.error = BatchError("compile", type(exc).__name__, str(exc))
        return result
    result.cache_tier = tier
    item_span.set_attr(cache_tier=tier)
    if options.verify:
        from repro.checker import verify_program

        report = verify_program(program, plan, program_id=item.id)
        if report.errors:
            # Quarantine: the item fails with the verifier's verdict,
            # the rest of the batch proceeds with trusted artifacts.
            result.error = BatchError(
                "verify",
                "VerificationError",
                "; ".join(d.render() for d in report.errors[:5]),
            )
            return result
    try:
        profile, stats = profile_program(
            program,
            runs=[dict(spec) for spec in item.runs],
            plan=plan,
            model=options.model,
            record_loop_moments=options.loop_variance == "profiled",
            max_steps=options.max_steps,
            backend=options.backend,
            mode=options.profile_mode,
        )
    except Exception as exc:
        result.error = BatchError("profile", type(exc).__name__, str(exc))
        return result
    result.profile = profile
    result.counters = stats.counters
    result.counter_updates = stats.counter_updates
    result.base_cost = stats.base_cost
    result.counter_cost = stats.counter_cost
    try:
        if options.plan == "smart":
            with span("batch.analyze"):
                result.summary = summarize_item(
                    program,
                    profile,
                    options.model,
                    loop_variance=options.loop_variance,
                )
        else:
            # Naive plans measure basic blocks, not control conditions;
            # the Definition-3 pass does not apply.  Report raw block
            # execution counts instead.
            result.summary = {
                "runs": profile.runs,
                "procedures": {
                    name: {
                        "block_counts": {
                            str(leader): count
                            for leader, count in sorted(
                                proc.block_counts.items()
                            )
                        }
                    }
                    for name, proc in sorted(profile.procedures.items())
                },
            }
    except Exception as exc:
        result.error = BatchError("analyze", type(exc).__name__, str(exc))
        return result
    result.ok = True
    return result


# ---------------------------------------------------------------------------
# Worker-process plumbing
# ---------------------------------------------------------------------------

_WORKER: dict = {}


def _worker_init(cache_path, options: BatchOptions) -> None:
    _WORKER["cache"] = ArtifactCache(cache_path)
    _WORKER["options"] = options


def _worker_run(payload: tuple[int, BatchItem]):
    index, item = payload
    cache: ArtifactCache = _WORKER["cache"]
    before = cache.stats.as_dict()
    result = _profile_one(index, item, cache, _WORKER["options"])
    after = cache.stats.as_dict()
    delta = {key: after[key] - before[key] for key in after}
    return result, delta


# ---------------------------------------------------------------------------
# The engine entry point
# ---------------------------------------------------------------------------


def _cancelled(index: int, item: BatchItem) -> BatchResult:
    return BatchResult(
        index=index,
        item_id=item.id,
        ok=False,
        runs=len(item.runs),
        error=BatchError(
            "cancelled", "BatchCancelled", "batch abandoned before this item"
        ),
    )


def run_batch(
    items: list[BatchItem],
    *,
    plan: str = "smart",
    model: MachineModel | None = None,
    mode: str = "auto",
    jobs: int | None = None,
    cache: ArtifactCache | str | os.PathLike | None = None,
    loop_variance: str = "zero",
    max_steps: int = 10_000_000,
    verify: bool = False,
    backend: str = "auto",
    profile_mode: str = "counters",
    should_stop=None,
) -> BatchReport:
    """Profile every item; never let one bad program sink the batch.

    ``mode`` is ``"serial"``, ``"process"`` or ``"auto"`` (process
    pool when more than one job is available and the batch has more
    than one item).  ``cache`` is an :class:`ArtifactCache`, a cache
    directory, or ``None`` for an ephemeral in-memory cache.
    ``profile_mode`` selects counter (``"counters"``) or Ball–Larus
    path (``"paths"``) profiling; path mode derives each item's path
    plan through the same artifact cache under plan kind ``"paths"``.
    ``should_stop`` is an optional zero-argument callable polled
    between items (serial mode only): once it returns true, every
    not-yet-started item fails with stage ``"cancelled"`` instead of
    running — how a draining profiling service abandons the tail of
    an in-flight flush without losing finished results.
    """
    if mode not in ("auto", "serial", "process"):
        raise ValueError(f"unknown batch mode {mode!r}")
    if profile_mode not in ("counters", "paths"):
        raise ValueError(f"unknown profile mode {profile_mode!r}")
    if profile_mode == "paths" and plan != "smart":
        # Path reconstruction mirrors the smart plan's Definition-3
        # targets; a naive block plan has nothing to reconstruct onto.
        raise ValueError("profile_mode='paths' requires plan='smart'")
    if isinstance(cache, ArtifactCache):
        cache_obj = cache
    else:
        cache_obj = ArtifactCache(cache)
    options = BatchOptions(
        plan=plan,
        model=model,
        loop_variance=loop_variance,
        max_steps=max_steps,
        verify=verify,
        backend=backend,
        profile_mode=profile_mode,
    )
    jobs = jobs if jobs is not None else (os.cpu_count() or 1)
    jobs = max(1, jobs)
    if mode == "auto":
        mode = "process" if jobs > 1 and len(items) > 1 else "serial"

    started = time.perf_counter()
    with span("batch", attrs={"mode": mode, "items": len(items)}):
        if mode == "serial":
            results = []
            for index, item in enumerate(items):
                if should_stop is not None and should_stop():
                    results.append(_cancelled(index, item))
                else:
                    results.append(
                        _profile_one(index, item, cache_obj, options)
                    )
            cache_stats = cache_obj.stats.as_dict()
        else:
            payloads = list(enumerate(items))
            cache_stats = {key: 0 for key in cache_obj.stats.as_dict()}
            with span("batch.pool", attrs={"jobs": jobs}):
                with ProcessPoolExecutor(
                    max_workers=min(jobs, max(1, len(items))),
                    initializer=_worker_init,
                    initargs=(cache_obj.path, options),
                ) as pool:
                    results = []
                    # ``map`` preserves submission order: deterministic
                    # results.
                    for result, delta in pool.map(
                        _worker_run, payloads, chunksize=1
                    ):
                        results.append(result)
                        for key, value in delta.items():
                            cache_stats[key] += value
    elapsed = time.perf_counter() - started
    metrics.counter(
        "repro_batches_total", "Batch engine invocations.", labels=("mode",)
    ).inc(mode=mode)
    metrics.histogram(
        "repro_batch_seconds", "run_batch wall time in seconds."
    ).observe(elapsed)
    return BatchReport(
        results=results,
        mode=mode,
        jobs=1 if mode == "serial" else jobs,
        plan=plan,
        cache_stats=cache_stats,
        elapsed=elapsed,
    )
