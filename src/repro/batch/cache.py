"""Content-addressed cache of static profiling artifacts.

Everything the paper derives *statically* from a program — CFGs, the
extended CFGs, the forward control dependence graphs and the counter
placement plans — depends only on the source text, never on run
inputs.  The batch engine therefore keys all of it by a content hash
of the source and reuses it across runs, batch invocations and worker
processes:

* an **in-memory tier** (per process) makes repeated profiling of the
  same program within one batch free after the first task;
* an optional **on-disk tier** (shared between processes and
  invocations) persists pickled artifacts under
  ``<dir>/<hh>/<hash>.pkl``, written atomically so concurrent workers
  never observe partial entries.

Cache keys mix in a format version and the package version, so stale
entries from older layouts are simply misses.  A corrupted or
unreadable disk entry is counted, deleted and recompiled — it can
never poison a batch.  Entries that *unpickle* but fail the artifact
verifier (:mod:`repro.checker`) get the same treatment: a disk hit is
only trusted after its structural and plan invariants re-check clean.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

import repro
from repro.codegen import codegen_backend_for
from repro.fastexec import LoweringError, backend_for
from repro.obs import metrics
from repro.paths import path_program_plan
from repro.pipeline import (
    CompiledProgram,
    compile_source,
    naive_program_plan,
    smart_program_plan,
)
from repro.profiling import ProgramPlan

#: Bump when the pickled artifact layout changes incompatibly.
#: 2: programs carry their threaded-backend shell (``_threaded``).
#: 3: programs also carry their codegen-backend shell (``_codegen``),
#:    including the emitted base source and its fingerprint.
#: 4: entries may carry Ball–Larus path plans (plan kind ``"paths"``).
CACHE_FORMAT = 4

_PLAN_BUILDERS = {
    "smart": smart_program_plan,
    "naive": naive_program_plan,
    "paths": path_program_plan,
}


def source_key(source: str) -> str:
    """The content hash a source text is cached under."""
    material = f"{CACHE_FORMAT}\x00{repro.__version__}\x00{source}"
    return hashlib.sha256(material.encode()).hexdigest()


@dataclass
class CachedArtifacts:
    """One program's static artifacts: the compilation plus its plans."""

    program: CompiledProgram
    plans: dict[str, ProgramPlan] = field(default_factory=dict)


def _compile_entry(source: str) -> CachedArtifacts:
    """Compile a source and attach both fast-backend shells.

    The threaded backend pickles as a thin shell sharing the program's
    checked AST and CFGs via the pickle memo (closures re-lower lazily
    per process).  The codegen backend additionally ships its emitted
    base source plus a fingerprint, so a disk hit in another process
    skips straight to ``compile()`` of the cached text; a program the
    emitter cannot lower simply caches without a pre-emitted source.
    """
    program = compile_source(source)
    backend_for(program)
    codegen = codegen_backend_for(program)
    try:
        codegen.ensure_lowered()
    except LoweringError:
        pass  # auto-selection will step down to threaded/reference
    return CachedArtifacts(program=program)


@dataclass
class CacheStats:
    """Accounting for one cache instance (monotonic counters)."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    plan_builds: int = 0
    corrupt_entries: int = 0
    #: Disk entries that unpickled but failed artifact verification.
    invalid_entries: int = 0

    @property
    def lookups(self) -> int:
        return self.memory_hits + self.disk_hits + self.misses

    def as_dict(self) -> dict[str, int]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "plan_builds": self.plan_builds,
            "corrupt_entries": self.corrupt_entries,
            "invalid_entries": self.invalid_entries,
        }


class ArtifactCache:
    """Two-tier (memory + optional disk) static-artifact cache.

    With ``path=None`` the cache is memory-only: still useful inside
    one process, invisible to others.  ``max_memory_entries`` bounds
    the in-memory tier (least-recently-used eviction, so a long-lived
    profiling service keeps its hot programs resident while cold ones
    fall back to the disk tier); the disk tier is unbounded.
    ``verify_loads`` (default on) runs the artifact verifier on every
    disk hit; an entry with broken invariants is evicted and the
    program recompiled, exactly like a corrupt pickle.
    """

    def __init__(
        self,
        path: str | Path | None = None,
        *,
        max_memory_entries: int = 256,
        verify_loads: bool = True,
    ):
        self.path = Path(path) if path is not None else None
        self.max_memory_entries = max_memory_entries
        self.verify_loads = verify_loads
        self.stats = CacheStats()
        self._memory: dict[str, CachedArtifacts] = {}

    # -- public ----------------------------------------------------------

    def artifacts(
        self, source: str, plan_kind: str = "smart"
    ) -> tuple[CompiledProgram, ProgramPlan, str]:
        """The compiled program and requested plan for ``source``.

        Returns ``(program, plan, tier)`` where ``tier`` names where
        the compilation came from: ``"memory"``, ``"disk"`` or
        ``"compiled"`` (a miss).  Compilation errors propagate to the
        caller — they are per-program failures, not cache failures.
        """
        if plan_kind not in _PLAN_BUILDERS:
            raise ValueError(f"unknown plan kind {plan_kind!r}")
        key = source_key(source)
        entry, tier = self._lookup(key)
        if entry is None:
            entry = _compile_entry(source)
            tier = "compiled"
            self.stats.misses += 1
            self._remember(key, entry)
        if plan_kind not in entry.plans:
            entry.plans[plan_kind] = _PLAN_BUILDERS[plan_kind](entry.program)
            self.stats.plan_builds += 1
            self._store(key, entry)
        return entry.program, entry.plans[plan_kind], tier

    def compiled(self, source: str) -> tuple[CompiledProgram, str]:
        """The compiled program alone (no counter plan needed)."""
        key = source_key(source)
        entry, tier = self._lookup(key)
        if entry is None:
            entry = _compile_entry(source)
            tier = "compiled"
            self.stats.misses += 1
            self._remember(key, entry)
            self._store(key, entry)
        return entry.program, tier

    def clear_memory(self) -> None:
        """Drop the in-memory tier (the disk tier survives)."""
        self._memory.clear()

    # -- tiers -----------------------------------------------------------

    def _lookup(self, key: str) -> tuple[CachedArtifacts | None, str]:
        lookups = metrics.counter(
            "repro_cache_lookups_total",
            "Artifact cache lookups by serving tier.",
            labels=("tier",),
        )
        entry = self._memory.pop(key, None)
        if entry is not None:
            # Re-insert at the most-recently-used end: the insertion
            # order of ``_memory`` is the LRU order ``_remember``
            # evicts from.
            self._memory[key] = entry
            self.stats.memory_hits += 1
            lookups.inc(tier="memory")
            return entry, "memory"
        entry = self._load_disk(key)
        if entry is not None:
            self.stats.disk_hits += 1
            lookups.inc(tier="disk")
            self._remember(key, entry)
            return entry, "disk"
        lookups.inc(tier="miss")
        return None, "compiled"

    def _remember(self, key: str, entry: CachedArtifacts) -> None:
        while len(self._memory) >= self.max_memory_entries:
            self._memory.pop(next(iter(self._memory)))
            metrics.counter(
                "repro_cache_evictions_total",
                "In-memory cache entries evicted (LRU).",
            ).inc()
        self._memory[key] = entry

    def _disk_path(self, key: str) -> Path:
        assert self.path is not None
        return self.path / key[:2] / f"{key}.pkl"

    def _load_disk(self, key: str) -> CachedArtifacts | None:
        if self.path is None:
            return None
        file = self._disk_path(key)
        try:
            blob = file.read_bytes()
        except OSError:
            return None
        try:
            entry = pickle.loads(blob)
            if not isinstance(entry, CachedArtifacts):
                raise TypeError(f"unexpected cache payload {type(entry)!r}")
        except Exception:
            # Truncated write, foreign file, stale class layout, ...:
            # recover by dropping the entry and recompiling.
            self.stats.corrupt_entries += 1
            metrics.counter(
                "repro_cache_bad_entries_total",
                "Disk entries dropped as corrupt or invalid.",
                labels=("reason",),
            ).inc(reason="corrupt")
            try:
                file.unlink()
            except OSError:
                pass
            return None
        if self.verify_loads and not self._verify_entry(entry):
            self.stats.invalid_entries += 1
            metrics.counter(
                "repro_cache_bad_entries_total",
                "Disk entries dropped as corrupt or invalid.",
                labels=("reason",),
            ).inc(reason="invalid")
            try:
                file.unlink()
            except OSError:
                pass
            return None
        return entry

    @staticmethod
    def _verify_entry(entry: CachedArtifacts) -> bool:
        """True when a re-hydrated entry's invariants all check out."""
        from repro.checker import verify_program

        return not verify_program(entry.program, entry.plans).errors

    def _store(self, key: str, entry: CachedArtifacts) -> None:
        if self.path is None:
            return
        file = self._disk_path(key)
        file.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=file.parent, prefix=f".{key[:8]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(entry, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, file)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1
