"""Aggregation of per-run profiles into batch summaries.

Per-run ``ProgramProfile``s accumulate by summing raw ``TOTAL_FREQ``
material (the paper's recommendation: only ratios matter).  From the
merged counts, one Definition-3 top-down pass per procedure yields the
relative ``FREQ`` / ``NODE_FREQ`` values, and the TIME/VAR analysis
turns them into average-time and variance summaries.

Summaries are plain JSON-shaped dictionaries with a *canonical* byte
encoding (:func:`canonical_json`): keys sorted, floats rendered by
``repr``.  Serial and pooled batch execution must produce identical
bytes — the batch tests and the throughput benchmark assert it.
"""

from __future__ import annotations

import json

from repro.analysis.interprocedural import LoopVarianceSpec
from repro.costs.model import MachineModel, SCALAR_MACHINE
from repro.pipeline import CompiledProgram, analyze
from repro.profiling import ProgramProfile


def merge_profiles(profiles: list[ProgramProfile]) -> ProgramProfile:
    """Sum several runs' raw counts into one accumulated profile."""
    total = ProgramProfile()
    for profile in profiles:
        total.merge(profile)
    return total


def summarize_item(
    program: CompiledProgram,
    profile: ProgramProfile,
    model: MachineModel | None = None,
    *,
    loop_variance: LoopVarianceSpec = "zero",
) -> dict:
    """One program's aggregate frequency/variance summary.

    Runs the Definition-3 top-down pass (inside ``analyze``) over the
    merged profile and extracts, per procedure: invocations, TIME,
    VAR, STD_DEV and the ``NODE_FREQ`` map (keyed by ECFG node id).
    """
    analysis = analyze(
        program, profile, model or SCALAR_MACHINE, loop_variance=loop_variance
    )
    procedures = {}
    for name in sorted(analysis.procedures):
        proc = analysis.procedures[name]
        procedures[name] = {
            "invocations": proc.freqs.invocations,
            "time": proc.time,
            "var": proc.var,
            "std_dev": proc.std_dev,
            "node_freq": {
                str(node): freq
                for node, freq in sorted(proc.freqs.node_freq.items())
            },
            "total_freq": {
                f"{node}:{label}": total
                for (node, label), total in sorted(
                    proc.freqs.total_freq.items()
                )
            },
        }
    return {
        "runs": profile.runs,
        "time": analysis.total_time,
        "var": analysis.total_var,
        "std_dev": analysis.total_std_dev,
        "procedures": procedures,
    }


def canonical_json(payload: dict) -> str:
    """A deterministic JSON encoding (stable across processes)."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=True
    )
